"""Timer-based comparator detectors.

Everything the paper argues *against* — and what mainstream systems actually
ship — lives here, implemented as sans-I/O cores hosted by
:class:`repro.sim.node.TimedDriver` (simulator) or the asyncio runtime:

* :class:`~repro.baselines.heartbeat.HeartbeatDetector` — the classical
  all-to-all heartbeat with a fixed (optionally adaptive) timeout Θ.
* :class:`~repro.baselines.gossip.GossipHeartbeatDetector` — the Friedman-
  Tcharny MANET detector the follow-up report benchmarks against: heartbeat
  *vectors* flooded to neighbors with max-merge, per-entry timers.
* :class:`~repro.baselines.phi_accrual.PhiAccrualDetector` — the Hayashibara
  accrual detector used by modern OSS systems (Akka, Cassandra), which
  adapts a statistical timeout instead of fixing one.

All three remain fundamentally *timer-based*: their correctness depends on
an eventual bound on message delay holding, and the F2 experiment shows how
they misfire under heavy-tailed delays while the time-free detector does
not.
"""

from .gossip import GossipHeartbeat, GossipHeartbeatDetector
from .heartbeat import Heartbeat, HeartbeatDetector
from .phi_accrual import PhiAccrualDetector

__all__ = [
    "GossipHeartbeat",
    "GossipHeartbeatDetector",
    "Heartbeat",
    "HeartbeatDetector",
    "PhiAccrualDetector",
]
