"""All-to-all heartbeat failure detection with timeouts.

The classical implementation style the paper contrasts with: every Δ
(``period``) each process broadcasts ``I am alive``; each process arms a
timer of Θ (``timeout``) per peer and suspects a peer whose timer expires.
Detection time is therefore bounded by construction inside ``[Θ - Δ, Θ]`` —
flat, and entirely determined by the chosen timeout rather than by actual
network conditions.

The optional *adaptive* mode implements the textbook ◇P adaptation: every
time a suspicion is revealed to be false (a heartbeat arrives from a
suspected peer) the peer's timeout grows by ``timeout_increment``, so in
any run with eventually-bounded delays the detector stops making mistakes.
Under genuinely unbounded (heavy-tailed) delays no increment schedule
saves it — which experiment F2 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.effects import Broadcast, Effect
from ..core.messages import register_message
from ..errors import ConfigurationError
from ..ids import ProcessId, validate_membership

__all__ = ["Heartbeat", "HeartbeatDetector"]


@register_message("hb.beat")
@dataclass(frozen=True, slots=True)
class Heartbeat:
    """``I am alive`` — sequence numbers detect reordered stale beats."""

    sender: ProcessId
    seq: int


class HeartbeatDetector:
    """Sans-I/O heartbeat detector core (host with a timed driver)."""

    def __init__(
        self,
        process_id: ProcessId,
        membership: frozenset[ProcessId],
        *,
        period: float = 1.0,
        timeout: float = 2.0,
        adaptive: bool = False,
        timeout_increment: float = 0.5,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if timeout_increment < 0:
            raise ConfigurationError(
                f"timeout_increment must be >= 0, got {timeout_increment}"
            )
        members = validate_membership(membership, process_id=process_id)
        self._pid = process_id
        self._peers = members - {process_id}
        self.period = period
        self.adaptive = adaptive
        self.timeout_increment = timeout_increment
        self._timeouts: dict[ProcessId, float] = {p: timeout for p in self._peers}
        self._deadlines: dict[ProcessId, float] = {}
        self._last_seq: dict[ProcessId, int] = {}
        self._suspected: set[ProcessId] = set()
        self._seq = 0
        self._next_beat: float | None = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._pid

    @property
    def name(self) -> str:
        return "heartbeat(adaptive)" if self.adaptive else "heartbeat"

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(self._suspected)

    def timeout_of(self, peer: ProcessId) -> float:
        """Current per-peer timeout (grows in adaptive mode)."""
        return self._timeouts[peer]

    # -- core interface ----------------------------------------------------
    def start(self, now: float) -> list[Effect]:
        self._started = True
        self._deadlines = {p: now + self._timeouts[p] for p in self._peers}
        return self._emit_beat(now)

    def on_message(self, now: float, sender: ProcessId, message: object) -> list[Effect]:
        if not isinstance(message, Heartbeat) or sender not in self._peers:
            return []
        if message.seq <= self._last_seq.get(sender, -1):
            return []  # stale, reordered beat
        self._last_seq[sender] = message.seq
        if sender in self._suspected:
            self._suspected.discard(sender)
            if self.adaptive:
                # A false suspicion: the timeout was too aggressive.
                self._timeouts[sender] += self.timeout_increment
        self._deadlines[sender] = now + self._timeouts[sender]
        return []

    def on_wakeup(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        if self._next_beat is not None and now >= self._next_beat:
            effects.extend(self._emit_beat(now))
        for peer in sorted(self._peers, key=repr):
            if peer in self._suspected:
                continue
            deadline = self._deadlines.get(peer)
            if deadline is not None and now >= deadline:
                self._suspected.add(peer)
        return effects

    def next_wakeup(self) -> float | None:
        if not self._started:
            return None
        candidates = [
            deadline
            for peer, deadline in self._deadlines.items()
            if peer not in self._suspected
        ]
        if self._next_beat is not None:
            candidates.append(self._next_beat)
        return min(candidates, default=None)

    # ------------------------------------------------------------------
    def _emit_beat(self, now: float) -> list[Effect]:
        self._seq += 1
        self._next_beat = now + self.period
        return [Broadcast(Heartbeat(sender=self._pid, seq=self._seq))]
