"""The Friedman-Tcharny gossip heartbeat detector (baseline for MANETs).

Re-implemented from its description in the follow-up report's evaluation
(Section 6): every Δ time units a node increments its own entry of a
heartbeat *vector* and broadcasts the vector to its 1-hop neighbors; on
reception, vectors are merged entry-wise with ``max``.  A node arms a timer
of Θ per peer whenever it learns a *new* (higher) heartbeat for that peer,
and suspects the peer when the timer expires.  Vectors flood through the
network, so the detector works on partially-connected topologies, but the
detection rule is still a timeout: detection time sits in ``[Θ - Δ, Θ]``
regardless of topology density — the flat curve of the report's Figure 2.

The system's composition (the id space of the vector) is assumed known, as
in the original algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.effects import Broadcast, Effect
from ..core.messages import register_message
from ..errors import ConfigurationError
from ..ids import ProcessId, validate_membership

__all__ = ["GossipHeartbeat", "GossipHeartbeatDetector"]


@register_message("hb.gossip")
@dataclass(frozen=True, slots=True)
class GossipHeartbeat:
    """A full heartbeat vector: highest heartbeat known per process."""

    sender: ProcessId
    vector: tuple[tuple[ProcessId, int], ...]


class GossipHeartbeatDetector:
    """Sans-I/O Friedman-Tcharny core (host with a timed driver)."""

    def __init__(
        self,
        process_id: ProcessId,
        membership: frozenset[ProcessId],
        *,
        period: float = 1.0,
        timeout: float = 2.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        if timeout <= period:
            raise ConfigurationError(
                f"timeout must exceed period (Θ > Δ), got Θ={timeout}, Δ={period}"
            )
        members = validate_membership(membership, process_id=process_id)
        self._pid = process_id
        self._peers = members - {process_id}
        self.period = period
        self.timeout = timeout
        self._vector: dict[ProcessId, int] = {pid: 0 for pid in members}
        self._deadlines: dict[ProcessId, float] = {}
        self._suspected: set[ProcessId] = set()
        self._next_beat: float | None = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._pid

    @property
    def name(self) -> str:
        return "gossip-heartbeat"

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(self._suspected)

    def heartbeat_vector(self) -> dict[ProcessId, int]:
        return dict(self._vector)

    # -- core interface ----------------------------------------------------
    def start(self, now: float) -> list[Effect]:
        self._started = True
        self._deadlines = {p: now + self.timeout for p in self._peers}
        return self._emit_beat(now)

    def on_message(self, now: float, sender: ProcessId, message: object) -> list[Effect]:
        if not isinstance(message, GossipHeartbeat):
            return []
        for pid, beat in message.vector:
            if pid not in self._vector or pid == self._pid:
                continue
            if beat > self._vector[pid]:
                # New information about pid (possibly relayed multi-hop):
                # refresh its timer and clear any suspicion.
                self._vector[pid] = beat
                self._deadlines[pid] = now + self.timeout
                self._suspected.discard(pid)
        return []

    def on_wakeup(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        if self._next_beat is not None and now >= self._next_beat:
            effects.extend(self._emit_beat(now))
        for peer in sorted(self._peers, key=repr):
            if peer in self._suspected:
                continue
            deadline = self._deadlines.get(peer)
            if deadline is not None and now >= deadline:
                self._suspected.add(peer)
        return effects

    def next_wakeup(self) -> float | None:
        if not self._started:
            return None
        candidates = [
            deadline
            for peer, deadline in self._deadlines.items()
            if peer not in self._suspected
        ]
        if self._next_beat is not None:
            candidates.append(self._next_beat)
        return min(candidates, default=None)

    # ------------------------------------------------------------------
    def _emit_beat(self, now: float) -> list[Effect]:
        self._vector[self._pid] += 1
        self._next_beat = now + self.period
        vector = tuple(sorted(self._vector.items(), key=lambda kv: repr(kv[0])))
        return [Broadcast(GossipHeartbeat(sender=self._pid, vector=vector))]
