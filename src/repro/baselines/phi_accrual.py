"""The phi-accrual failure detector (Hayashibara et al., SRDS 2004).

What modern OSS stacks (Akka, Cassandra) actually deploy: instead of a fixed
timeout, each monitor keeps a sliding window of heartbeat inter-arrival
times and outputs a *suspicion level*::

    phi(t_now) = -log10( P_later(t_now - t_last) )

where ``P_later`` is the probability (under a normal fit of the window) that
a heartbeat arrives later than the elapsed silence.  The peer is suspected
when ``phi`` crosses a threshold (8 suspects after odds of 10^-8).

It adapts beautifully to *stationary* delay distributions — and still
misfires under heavy tails or regime shifts, because it remains a bet on the
past predicting future delays.  It is the strongest timer-based comparator
in the F2 experiment.
"""

from __future__ import annotations

import math
from collections import deque

from ..core.effects import Broadcast, Effect
from ..errors import ConfigurationError
from ..ids import ProcessId, validate_membership
from .heartbeat import Heartbeat

__all__ = ["PhiAccrualDetector"]


class PhiAccrualDetector:
    """Sans-I/O accrual detector core (host with a timed driver).

    Emits plain :class:`~repro.baselines.heartbeat.Heartbeat` messages every
    ``period`` and monitors peers' beats with the phi estimator.
    """

    def __init__(
        self,
        process_id: ProcessId,
        membership: frozenset[ProcessId],
        *,
        period: float = 1.0,
        threshold: float = 8.0,
        window_size: int = 100,
        min_std: float = 0.05,
        eval_fraction: float = 0.25,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if window_size < 2:
            raise ConfigurationError(f"window_size must be >= 2, got {window_size}")
        if min_std <= 0:
            raise ConfigurationError(f"min_std must be > 0, got {min_std}")
        if not 0 < eval_fraction <= 1:
            raise ConfigurationError(f"eval_fraction must be in (0, 1], got {eval_fraction}")
        members = validate_membership(membership, process_id=process_id)
        self._pid = process_id
        self._peers = members - {process_id}
        self.period = period
        self.threshold = threshold
        self.min_std = min_std
        self._eval_interval = period * eval_fraction
        self._windows: dict[ProcessId, deque[float]] = {
            p: deque(maxlen=window_size) for p in self._peers
        }
        self._last_arrival: dict[ProcessId, float] = {}
        self._last_seq: dict[ProcessId, int] = {}
        self._suspected: set[ProcessId] = set()
        self._seq = 0
        self._next_beat: float | None = None
        self._next_eval: float | None = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._pid

    @property
    def name(self) -> str:
        return f"phi-accrual(t={self.threshold})"

    def suspects(self) -> frozenset[ProcessId]:
        return frozenset(self._suspected)

    # -- the accrual estimator ---------------------------------------------
    def phi(self, peer: ProcessId, now: float) -> float:
        """Current suspicion level of ``peer`` (0 when no beat seen yet)."""
        last = self._last_arrival.get(peer)
        if last is None:
            return 0.0
        elapsed = now - last
        mean, std = self._interval_estimate(peer)
        p_later = _normal_tail(elapsed, mean, max(std, self.min_std))
        if p_later <= 0.0:
            return math.inf
        return -math.log10(p_later)

    def _interval_estimate(self, peer: ProcessId) -> tuple[float, float]:
        window = self._windows[peer]
        if len(window) < 2:
            # Bootstrap: assume the configured period with generous spread,
            # mirroring Akka's first-heartbeat estimate.
            return self.period, self.period / 2.0
        mean = sum(window) / len(window)
        variance = sum((x - mean) ** 2 for x in window) / (len(window) - 1)
        return mean, math.sqrt(variance)

    # -- core interface ----------------------------------------------------
    def start(self, now: float) -> list[Effect]:
        self._started = True
        self._next_eval = now + self._eval_interval
        return self._emit_beat(now)

    def on_message(self, now: float, sender: ProcessId, message: object) -> list[Effect]:
        if not isinstance(message, Heartbeat) or sender not in self._peers:
            return []
        if message.seq <= self._last_seq.get(sender, -1):
            return []
        self._last_seq[sender] = message.seq
        last = self._last_arrival.get(sender)
        if last is not None:
            self._windows[sender].append(now - last)
        self._last_arrival[sender] = now
        self._suspected.discard(sender)
        return []

    def on_wakeup(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        if self._next_beat is not None and now >= self._next_beat:
            effects.extend(self._emit_beat(now))
        if self._next_eval is not None and now >= self._next_eval:
            self._evaluate(now)
            self._next_eval = now + self._eval_interval
        return effects

    def next_wakeup(self) -> float | None:
        if not self._started:
            return None
        candidates = [t for t in (self._next_beat, self._next_eval) if t is not None]
        return min(candidates, default=None)

    # ------------------------------------------------------------------
    def _evaluate(self, now: float) -> None:
        for peer in self._peers:
            if peer in self._suspected:
                continue
            if self.phi(peer, now) >= self.threshold:
                self._suspected.add(peer)

    def _emit_beat(self, now: float) -> list[Effect]:
        self._seq += 1
        self._next_beat = now + self.period
        return [Broadcast(Heartbeat(sender=self._pid, seq=self._seq))]


def _normal_tail(x: float, mean: float, std: float) -> float:
    """``P(X > x)`` for a normal ``X`` — the accrual ``P_later``."""
    z = (x - mean) / std
    return 0.5 * math.erfc(z / math.sqrt(2.0))
