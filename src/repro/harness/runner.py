"""Grid evaluation: sequential or process-pool, cached, deterministic.

The runner enumerates a spec's cells, derives every cell's seed, resolves
cache hits, evaluates the misses (inline, or on a
``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1``), and
returns outcomes **in cell order** — completion order never leaks into
results, so a grid run is reproducible regardless of worker count.

Every cell value is normalised through a JSON round-trip before it is
reported or cached, so a cold run and a cache-served run hand *identical*
values to ``tabulate`` and to the artifact writer (tuples become lists in
both, not just in the cached one).
"""

from __future__ import annotations

import json
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .cache import ResultCache, cache_key
from .spec import ScenarioSpec, canonical_json, cell_seed

__all__ = ["CellOutcome", "GridResult", "run_grid", "run_cells", "evaluate_cell"]


@dataclass(frozen=True)
class CellOutcome:
    """One evaluated grid cell."""

    coords: dict[str, Any]
    seed: int
    value: Any
    cached: bool


@dataclass
class GridResult:
    """All outcomes of one grid run, in cell order."""

    spec: ScenarioSpec
    params: Any
    outcomes: list[CellOutcome] = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        return [outcome.value for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def tables(self) -> list[Any]:
        result = self.spec.tabulate(self.params, self.values)
        return result if isinstance(result, list) else [result]


def _normalise(value: Any) -> Any:
    """JSON round-trip so computed and cached values are indistinguishable."""
    return json.loads(canonical_json(value))


def _evaluate(run_cell, params, coords, seed):
    """Top-level worker entry point (must be picklable by name)."""
    return run_cell(params, coords, seed)


def evaluate_cell(
    spec: ScenarioSpec,
    params: Any,
    coords: Mapping[str, Any],
    seed: int,
    *,
    cache: ResultCache | None = None,
    key: str | None = None,
) -> tuple[Any, bool]:
    """Resolve one cell through the cache: ``(normalised value, was_hit)``.

    The single-cell form of what :func:`run_grid` does per grid — shared
    with the distributed worker loop (:mod:`repro.harness.grid`), whose
    unit of scheduling is one leased cell, not one grid.  A fresh result
    is written through to ``cache`` before returning, so on a shared
    cache the value is visible to every other worker (and to whichever
    worker later assembles the artifact).
    """
    if cache is not None:
        if key is None:
            key = cache_key(spec.exp_id, params, coords, seed)
        cached = cache.get(key)
        if cached is not None:
            return cached, True
    value = _normalise(spec.run_cell(params, dict(coords), seed))
    if cache is not None:
        cache.put(key, value)
    return value, False


def run_grid(
    spec: ScenarioSpec,
    params: Any | None = None,
    *,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> GridResult:
    """Evaluate every cell of ``spec`` under ``params``.

    ``workers <= 1`` evaluates inline (no subprocesses); larger values fan
    misses out to a process pool.  ``cache`` short-circuits cells whose
    content hash is already stored and records fresh results.
    """
    if params is None:
        params = spec.params_cls()
    cells = spec.grid(params)
    return GridResult(
        spec=spec,
        params=params,
        outcomes=_evaluate_cells(spec, params, cells, workers, cache),
    )


def run_cells(
    spec: ScenarioSpec,
    params: Any,
    cells: Sequence[Mapping[str, Any]],
    *,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> list[Any]:
    """Evaluate an explicit subset of cells; returns their values in order.

    Lets an experiment expose sub-grids (one table of several) without
    duplicating runner logic.
    """
    outcomes = _evaluate_cells(spec, params, [dict(c) for c in cells], workers, cache)
    return [outcome.value for outcome in outcomes]


def _evaluate_cells(
    spec: ScenarioSpec,
    params: Any,
    cells: list[dict[str, Any]],
    workers: int,
    cache: ResultCache | None,
) -> list[CellOutcome]:
    seeds = [cell_seed(spec.exp_id, coords, params.seed) for coords in cells]
    keys = [
        cache_key(spec.exp_id, params, coords, seed) if cache is not None else None
        for coords, seed in zip(cells, seeds)
    ]
    values: list[Any] = [None] * len(cells)
    hit: list[bool] = [False] * len(cells)
    misses: list[int] = []
    for index, key in enumerate(keys):
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                values[index] = cached
                hit[index] = True
                continue
        misses.append(index)

    if misses:
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures: list[tuple[int, Future]] = [
                    (
                        index,
                        pool.submit(
                            _evaluate, spec.run_cell, params, cells[index], seeds[index]
                        ),
                    )
                    for index in misses
                ]
                # Collect in submission (= cell) order; the pool may finish
                # them in any order without affecting results.
                for index, future in futures:
                    values[index] = _normalise(future.result())
        else:
            for index in misses:
                values[index] = _normalise(
                    spec.run_cell(params, cells[index], seeds[index])
                )
        if cache is not None:
            for index in misses:
                cache.put(keys[index], values[index])

    return [
        CellOutcome(
            coords=coords, seed=seeds[index], value=values[index], cached=hit[index]
        )
        for index, coords in enumerate(cells)
    ]
