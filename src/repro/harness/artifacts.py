"""Machine-readable grid artifacts (``BENCH_<ID>.json``).

One artifact per experiment run: the full parameter set, every cell (its
coordinates, derived seed, and value) and the rendered report tables.
Serialisation is canonical — sorted keys, fixed indentation, no
timestamps or host information — so re-running the same grid with the
same seed writes byte-identical files, which is both the cache-correctness
check and what makes artifacts diffable across CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .runner import GridResult
from .spec import params_to_dict

__all__ = [
    "ARTIFACT_SCHEMA",
    "artifact_name",
    "artifact_header",
    "artifact_tables",
    "artifact_payload",
    "write_artifact",
]

ARTIFACT_SCHEMA = "repro-bench/1"


def artifact_name(exp_id: str) -> str:
    return f"BENCH_{exp_id.upper()}.json"


def artifact_header(exp_id: str, title: str, params: Any) -> dict[str, Any]:
    """The non-cell, non-table part of an artifact payload.

    Shared with the streaming writer — both renderings must agree on the
    payload shape or streamed artifacts stop being byte-identical.
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "experiment": exp_id,
        "title": title,
        "params": params_to_dict(params),
    }


def artifact_tables(tables: list[Any]) -> list[dict[str, Any]]:
    """Report tables in their canonical artifact form (shared rendering)."""
    return [
        {
            "title": table.title,
            "headers": list(table.headers),
            "rows": [list(row) for row in table.rows],
            "notes": list(table.notes),
        }
        for table in tables
    ]


def artifact_payload(result: GridResult) -> dict[str, Any]:
    """The artifact as a plain dict (JSON-serialisable)."""
    return {
        **artifact_header(result.spec.exp_id, result.spec.title, result.params),
        "cells": [
            {"coords": outcome.coords, "seed": outcome.seed, "value": outcome.value}
            for outcome in result.outcomes
        ],
        "tables": artifact_tables(result.tables()),
    }


def write_artifact(out_dir: str | Path, result: GridResult) -> Path:
    """Write the canonical artifact; returns its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / artifact_name(result.spec.exp_id)
    rendered = json.dumps(artifact_payload(result), sort_keys=True, indent=2)
    path.write_text(rendered + "\n", encoding="utf-8")
    return path
