"""Streaming grid evaluation: bounded-memory artifact runs for huge grids.

:func:`repro.harness.runner.run_grid` holds every cell outcome in memory
until the grid completes — fine for the paper's grids, prohibitive for the
QoS-style all-detector comparison sweeps (thousands of cells at n >= 60).
This module evaluates a grid in bounded **windows** and folds completed
cells straight into the on-disk artifact:

* :func:`stream_outcomes` yields outcomes *in cell order* while keeping at
  most ``window`` un-consumed outcomes (and in-flight futures) resident;
* :func:`run_grid_streaming` spills each outcome to a JSONL side file the
  moment it is produced, then tabulates from a lazy, disk-backed value
  sequence and writes the final artifact **byte-identical** to
  :func:`repro.harness.artifacts.write_artifact`'s rendering — streaming
  changes memory, never bytes.

Caching, seeding and normalisation are shared with the non-streaming
runner, so a streamed run and a classic run of the same grid are fully
interchangeable (including cache hits across the two).
"""

from __future__ import annotations

import json
import textwrap
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..errors import ConfigurationError
from .artifacts import artifact_header, artifact_name, artifact_tables
from .cache import ResultCache, cache_key
from .runner import CellOutcome, _evaluate, _normalise
from .spec import ScenarioSpec, cell_seed

__all__ = [
    "DEFAULT_WINDOW",
    "StreamStats",
    "StreamedGridRun",
    "SpilledValues",
    "stream_outcomes",
    "run_grid_streaming",
    "write_artifact_streaming",
]

#: default cap on resident (un-spilled) outcomes during a streaming run
DEFAULT_WINDOW = 512


@dataclass
class StreamStats:
    """Observability for a streaming run (filled in as cells complete)."""

    cells: int = 0
    cache_hits: int = 0
    #: largest number of outcomes resident at any point — bounded by the
    #: window size, recorded so tests and operators can verify the cap held
    peak_resident: int = 0


@dataclass
class StreamedGridRun:
    """Result of :func:`run_grid_streaming` (tables + run accounting)."""

    path: Path
    stats: StreamStats
    tables: list[Any] = field(default_factory=list)


def stream_outcomes(
    spec: ScenarioSpec,
    params: Any | None = None,
    *,
    workers: int = 0,
    cache: ResultCache | None = None,
    window: int = DEFAULT_WINDOW,
    stats: StreamStats | None = None,
) -> Iterator[CellOutcome]:
    """Evaluate a grid window-by-window, yielding outcomes in cell order.

    At most ``window`` outcomes (and, with ``workers > 1``, in-flight
    futures) exist at once; one process pool is reused across windows.
    Results are identical to :func:`~repro.harness.runner.run_grid` —
    per-cell seeds and cache keys do not depend on the window size.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if params is None:
        params = spec.params_cls()
    cells = spec.grid(params)
    seeds = [cell_seed(spec.exp_id, coords, params.seed) for coords in cells]
    pool = ProcessPoolExecutor(max_workers=workers) if workers > 1 else None
    try:
        for start in range(0, len(cells), window):
            chunk = list(range(start, min(start + window, len(cells))))
            keys = {
                index: cache_key(spec.exp_id, params, cells[index], seeds[index])
                for index in chunk
                if cache is not None
            }
            values: dict[int, Any] = {}
            hit: set[int] = set()
            misses: list[int] = []
            for index in chunk:
                if cache is not None:
                    cached = cache.get(keys[index])
                    if cached is not None:
                        values[index] = cached
                        hit.add(index)
                        continue
                misses.append(index)
            if misses and pool is not None:
                futures = [
                    (
                        index,
                        pool.submit(
                            _evaluate, spec.run_cell, params, cells[index], seeds[index]
                        ),
                    )
                    for index in misses
                ]
                for index, future in futures:
                    values[index] = _normalise(future.result())
            else:
                for index in misses:
                    values[index] = _normalise(
                        spec.run_cell(params, cells[index], seeds[index])
                    )
            if cache is not None:
                for index in misses:
                    cache.put(keys[index], values[index])
            if stats is not None:
                stats.cells += len(chunk)
                stats.cache_hits += len(hit)
                stats.peak_resident = max(stats.peak_resident, len(values))
            for index in chunk:
                yield CellOutcome(
                    coords=cells[index],
                    seed=seeds[index],
                    value=values.pop(index),
                    cached=index in hit,
                )
    finally:
        if pool is not None:
            pool.shutdown()


class SpilledValues(Sequence):
    """Lazy, disk-backed view of the spilled cell values, in cell order.

    Quacks like the ``values`` list ``tabulate`` receives from the classic
    runner — iteration streams the spill file, random access seeks a
    persistent handle, and slicing returns another lazy view over the
    sliced offsets (f2's tabulate slices its values in half) — while
    holding only one parsed value at a time.
    """

    def __init__(self, path: Path, offsets: list[int]) -> None:
        self._path = path
        self._offsets = offsets
        self._fh = None  # persistent random-access handle, opened lazily

    def __len__(self) -> int:
        return len(self._offsets)

    def __iter__(self) -> Iterator[Any]:
        # A dedicated handle per pass: iteration must not disturb the
        # random-access handle's position, and nested iteration must work.
        with self._path.open("r", encoding="utf-8") as fh:
            for offset in self._offsets:
                fh.seek(offset)
                yield json.loads(fh.readline())["value"]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return SpilledValues(
                self._path, self._offsets[index]
            )  # lazy sub-view: no values materialise
        offsets = self._offsets
        if index < 0:
            index += len(offsets)
        if not 0 <= index < len(offsets):
            raise IndexError(index)
        if self._fh is None:
            self._fh = self._path.open("r", encoding="utf-8")
        self._fh.seek(offsets[index])
        return json.loads(self._fh.readline())["value"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def run_grid_streaming(
    spec: ScenarioSpec,
    params: Any | None = None,
    out_dir: str | Path = "results",
    *,
    workers: int = 0,
    cache: ResultCache | None = None,
    window: int = DEFAULT_WINDOW,
) -> StreamedGridRun:
    """Evaluate ``spec`` and write its artifact with bounded memory.

    Cells are spilled to ``<artifact>.cells.spill`` as they complete (at
    most ``window`` outcomes resident), tabulation reads values back
    through a lazy sequence, and the final artifact is rendered streaming —
    byte-identical to the classic writer.  The spill file is removed on
    success.
    """
    if params is None:
        params = spec.params_cls()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / artifact_name(spec.exp_id)
    spill = out / (artifact_name(spec.exp_id) + ".cells.spill")
    stats = StreamStats()
    offsets: list[int] = []
    values = SpilledValues(spill, offsets)
    try:
        with spill.open("w", encoding="utf-8") as fh:
            for outcome in stream_outcomes(
                spec, params, workers=workers, cache=cache, window=window, stats=stats
            ):
                record = {
                    "coords": outcome.coords,
                    "seed": outcome.seed,
                    "value": outcome.value,
                }
                offsets.append(fh.tell())
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        tables = spec.tabulate(params, values)
        tables = tables if isinstance(tables, list) else [tables]
        write_artifact_streaming(path, spec, params, spill, tables)
    finally:
        values.close()
        spill.unlink(missing_ok=True)
    return StreamedGridRun(path=path, stats=stats, tables=tables)


def write_artifact_streaming(
    path: Path,
    spec: ScenarioSpec,
    params: Any,
    spill: Path,
    tables: list[Any],
) -> None:
    """Render the canonical artifact without materialising the cell list.

    Shared with the distributed assembler (:mod:`repro.harness.grid`),
    which tabulates from the shared cache once a run's ledger shows every
    cell done — same spill format (one ``{"coords","seed","value"}`` JSON
    object per line), same byte-identical rendering.

    Byte-identity with ``json.dumps(payload, sort_keys=True, indent=2)``
    relies on ``"cells"`` sorting first among the payload keys: the cell
    array is streamed from the spill file, then the rest of the payload is
    rendered normally and spliced in after it.
    """
    rest = {
        **artifact_header(spec.exp_id, spec.title, params),
        "tables": artifact_tables(tables),
    }
    if min(rest) <= "cells":
        raise ConfigurationError(
            "streaming artifact writer requires 'cells' to sort first among "
            f"payload keys; found {sorted(k for k in rest if k <= 'cells')}"
        )
    rendered_rest = json.dumps(rest, sort_keys=True, indent=2)
    with path.open("w", encoding="utf-8") as fh:
        with spill.open("r", encoding="utf-8") as cells_fh:
            first = True
            for line in cells_fh:
                fh.write('{\n  "cells": [\n' if first else ",\n")
                first = False
                block = json.dumps(json.loads(line), sort_keys=True, indent=2)
                fh.write(textwrap.indent(block, "    "))
            # json.dumps renders an empty list inline ("cells": []).
            fh.write('{\n  "cells": [],\n' if first else "\n  ],\n")
        # rendered_rest == "{\n  <body>\n}"; strip its opening brace/newline
        # so the body continues the object we already started.
        fh.write(rendered_rest[2:])
        fh.write("\n")


#: backwards-compatible aliases (pre-distributed-runner private names)
_SpilledValues = SpilledValues
_write_artifact_streaming = write_artifact_streaming
