"""``python -m repro`` — the unified experiment harness CLI.

Examples::

    python -m repro experiments      # (`list` is an alias)
    python -m repro detectors
    python -m repro protocols
    python -m repro run t1 --workers 2 --out results/
    python -m repro run t1 e2 f3 --full --workers 8 --out results/ --markdown
    python -m repro run t1 --detector heartbeat --detector phi
    python -m repro run t1 -p sizes=[8] -p trials=1
    python -m repro run q1 --dry-run
    python -m repro run t1 --dry-run --worker-id 2/4      # preview a shard split
    python -m repro run t1 --workers-dir /shared/run1 --worker-id 2/4
    python -m repro run t1 --workers-dir /shared/run1 --steal
    python -m repro grid status --workers-dir /shared/run1
    python -m repro grid reap --workers-dir /shared/run1
    python -m repro bench --events 200000 --out results/
    python -m repro cache info --dir results/.cache --verify
    python -m repro cache prune --dir results/.cache --max-age-days 30 --max-size-mb 512

``run`` evaluates each named grid (all of them with no names given),
prints its tables, and writes one ``BENCH_<ID>.json`` artifact per
experiment under ``--out``.  ``--detector KEY`` (repeatable) sweeps the
grid over any :mod:`repro.detectors` registry keys instead of the
experiment's default detector set; ``-p field=value`` overrides any
params field (value parsed as JSON, bare strings allowed).  Results are
cached by content hash under ``<out>/.cache`` (override with
``--cache-dir``, disable with ``--no-cache``): re-running an unchanged
grid is served entirely from cache and rewrites byte-identical artifacts.
``--dry-run`` prints each grid's cell list (coordinates + derived seeds)
without executing anything; combined with ``--worker-id k/N`` it prints
the static shard assignment instead (cells per worker, this worker's
cells and seeds) so a split can be sanity-checked before launching hosts.

``--workers-dir SHARED`` joins (or starts) a **distributed** run of one
experiment: grid cells become leases in a shared-directory ledger, every
worker writes results through the shared cache under ``SHARED/cache``,
and whichever worker sees the last cell complete assembles the artifact
— byte-identical to a single-host run.  Pick a scheduling mode per
worker: ``--worker-id k/N`` (static shard) or ``--steal`` (claim any
available cell; survivors drain dead workers' expired leases).  ``repro
grid status``/``reap`` observe and unstick a run; see
``docs/distributed.md`` for the protocol and failure model.

``experiments`` mirrors ``detectors`` for the experiment registry: every
registered experiment with its axes and default/full grid sizes.

``bench`` runs the engine microbenchmarks into the same artifact format
(``BENCH_MICRO.json``); ``cache prune`` applies age/size caps to a result
cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..errors import ConfigurationError
from .artifacts import write_artifact
from .cache import ResultCache
from .registry import all_specs
from .runner import run_grid
from .spec import cell_seed, with_detectors, with_overrides

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiment grids in parallel, with caching.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate experiment grids")
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiment ids (see `repro experiments`); default: all",
    )
    run.add_argument("--workers", type=int, default=1, help="process-pool size")
    run.add_argument("--out", default="results", help="artifact directory")
    run.add_argument("--full", action="store_true", help="paper-scale parameters")
    run.add_argument(
        "--preset",
        default=None,
        help=(
            "named parameter preset (a no-arg classmethod on the experiment's "
            "params class, e.g. 'full' or 'large_n')"
        ),
    )
    run.add_argument("--seed", type=int, default=None, help="override the base seed")
    run.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="KEY",
        help="sweep these registry detector(s) instead of the experiment's default "
        "(repeatable; see `repro detectors`)",
    )
    run.add_argument(
        "-p",
        "--param",
        action="append",
        default=None,
        metavar="FIELD=VALUE",
        help="override a params field (VALUE parsed as JSON; repeatable)",
    )
    run.add_argument(
        "--dry-run",
        action="store_true",
        help="print each grid's cell list (coords + seeds) without executing",
    )
    run.add_argument("--no-cache", action="store_true", help="always recompute")
    run.add_argument("--cache-dir", default=None, help="cache directory (default: OUT/.cache)")
    run.add_argument(
        "--stream",
        action="store_true",
        help="bounded-memory evaluation: fold cells into the artifact as they "
        "complete instead of holding the whole grid in memory",
    )
    run.add_argument(
        "--max-resident",
        type=int,
        default=None,
        metavar="N",
        help="with --stream: cap on resident (not-yet-written) cell outcomes "
        "(default: 512)",
    )
    run.add_argument("--markdown", action="store_true", help="markdown tables")
    run.add_argument("--quiet", action="store_true", help="no tables, just a summary line")
    run.add_argument(
        "--workers-dir",
        default=None,
        metavar="SHARED",
        help="distributed mode: shared ledger directory all workers can reach "
        "(one experiment per run directory)",
    )
    run.add_argument(
        "--worker-id",
        default=None,
        metavar="K/N",
        help="static shard: this worker claims cells with index %% N == K-1 "
        "(with --dry-run: just print the assignment)",
    )
    run.add_argument(
        "--steal",
        action="store_true",
        help="work stealing: claim any available cell, including dead "
        "workers' expired leases",
    )
    run.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="lease lifetime without a heartbeat (default: 60); cells of a "
        "worker dead this long are reclaimed",
    )
    run.add_argument(
        "--worker-name",
        default=None,
        help="lease owner label (default: <hostname>-<pid>)",
    )
    run.add_argument(
        "--ledger-backend",
        choices=["auto", "sqlite", "file"],
        default="auto",
        help="lease ledger backend (auto: sqlite if it locks, else claim files)",
    )

    commands.add_parser(
        "experiments", help="list registered experiments (axes + grid sizes)"
    )
    commands.add_parser("list", help="alias of `experiments`")
    commands.add_parser("detectors", help="list registered detector families")
    commands.add_parser("protocols", help="list registered consensus protocols")

    bench = commands.add_parser(
        "bench", help="run engine microbenchmarks into BENCH_MICRO.json"
    )
    bench.add_argument("--events", type=int, default=200_000, help="events per workload")
    bench.add_argument(
        "--only", default="", help="comma-separated workload names (default: all)"
    )
    bench.add_argument("--out", default="results", help="artifact directory")
    bench.add_argument(
        "--mem",
        action="store_true",
        help="also measure each workload's peak memory (tracemalloc second "
        "pass; the trace workload additionally reports its object-backend "
        "baseline and ratio)",
    )
    bench.add_argument("--quiet", action="store_true", help="no table, just a summary line")
    bench.add_argument(
        "--check",
        action="store_true",
        help="regression gate: fail (exit 1) if any workload's kev/s drops "
        "below its committed floor",
    )
    bench.add_argument(
        "--floors",
        default=None,
        metavar="PATH",
        help="floors file for --check (default: benchmarks/bench_floors.json)",
    )

    cache = commands.add_parser("cache", help="inspect / prune the result cache")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("info", "entry count and total size"),
        ("prune", "evict entries by age and/or total size"),
    ):
        sub = cache_commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--dir", default="results/.cache", help="cache directory (default: results/.cache)"
        )
        if name == "info":
            sub.add_argument(
                "--verify",
                action="store_true",
                help="parse every entry and report corrupt ones (shared-cache "
                "health check; slower)",
            )
        if name == "prune":
            sub.add_argument(
                "--max-age-days", type=float, default=None, help="drop entries older than this"
            )
            sub.add_argument(
                "--max-size-mb",
                type=float,
                default=None,
                help="then drop oldest entries until the cache fits",
            )

    grid = commands.add_parser(
        "grid", help="observe / unstick a distributed run (--workers-dir)"
    )
    grid_commands = grid.add_subparsers(dest="grid_command", required=True)
    for name, help_text in (
        ("status", "cells done/leased/pending per worker"),
        ("reap", "reset expired leases to pending immediately"),
    ):
        sub = grid_commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--workers-dir", required=True, metavar="SHARED",
            help="the run's shared ledger directory",
        )
        sub.add_argument(
            "--ledger-backend",
            choices=["auto", "sqlite", "file"],
            default="auto",
            help="lease ledger backend (default: whatever the run uses)",
        )
    return parser


def _cmd_experiments() -> int:
    from ..experiments.api import all_experiments

    rows = []
    for exp_id, spec in all_experiments().items():
        axes = "×".join(spec.axis_names())
        extra = ",".join(name for name in spec.presets() if name != "full") or "-"
        rows.append(
            (exp_id, axes, spec.grid_size(), spec.grid_size(full=True), extra, spec.title)
        )
    width = max(len(row[1]) for row in rows)
    pwidth = max(len("presets"), max(len(row[4]) for row in rows))
    print(f"{'id':<4} {'axes':<{width}} {'cells':>5} {'full':>5} {'presets':<{pwidth}}  title")
    for exp_id, axes, default, full, extra, title in rows:
        print(f"{exp_id:<4} {axes:<{width}} {default:>5} {full:>5} {extra:<{pwidth}}  {title}")
    return 0


def _cmd_detectors() -> int:
    from ..detectors import DetectorMode, all_detectors

    for key, spec in all_detectors().items():
        mode = "query" if spec.mode is DetectorMode.QUERY else "timed"
        print(f"{key:<20} {spec.fd_class.value:<3} {mode:<6} {spec.summary}")
    return 0


def _cmd_protocols() -> int:
    from ..consensus import all_protocols

    for key, spec in all_protocols().items():
        params = ",".join(sorted(spec.param_names())) or "-"
        print(f"{key:<10} {spec.oracle:<8} {params:<16} {spec.summary}")
    return 0


def _parse_param_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        field, sep, raw = pair.partition("=")
        if not sep or not field:
            raise ConfigurationError(f"-p expects FIELD=VALUE, got {pair!r}")
        try:
            overrides[field] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[field] = raw  # bare string, e.g. -p detector=phi
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    specs = all_specs()
    wanted = [exp.lower() for exp in args.experiments] or list(specs)
    unknown = sorted(set(wanted) - set(specs))
    if unknown:
        print(f"unknown experiment ids: {unknown}; choose from {sorted(specs)}", file=sys.stderr)
        return 2
    distributed = args.workers_dir is not None
    if distributed:
        if args.steal == (args.worker_id is not None):
            print("--workers-dir needs exactly one mode: --worker-id K/N or --steal",
                  file=sys.stderr)
            return 2
        if args.no_cache:
            print("--workers-dir requires the shared cache (it carries results "
                  "between workers); drop --no-cache", file=sys.stderr)
            return 2
        if args.stream:
            print("--stream is implied by --workers-dir (assembly always "
                  "streams); drop the flag", file=sys.stderr)
            return 2
        if len(wanted) != 1:
            print("--workers-dir runs exactly one experiment per run directory; "
                  f"got {wanted}", file=sys.stderr)
            return 2
    elif args.steal or (args.worker_id is not None and not args.dry_run):
        print("--steal/--worker-id need --workers-dir (or --dry-run to preview "
              "a shard)", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache_dir = args.cache_dir
        elif distributed:
            # The data plane of a distributed run: must be shared, so it
            # defaults into the shared workers dir, not the local --out.
            cache_dir = f"{args.workers_dir}/cache"
        else:
            cache_dir = f"{args.out}/.cache"
        cache = ResultCache(cache_dir)
    # Resolve every grid's params up front: a bad --detector/-p combination
    # on the last experiment must fail in milliseconds, not after earlier
    # grids already burned compute and wrote artifacts.
    prepared: list[tuple[str, object]] = []
    for exp_id in wanted:
        spec = specs[exp_id]
        overrides = {} if args.seed is None else {"seed": args.seed}
        params = spec.make_params(full=args.full, preset=args.preset, **overrides)
        try:
            if args.param:
                params = with_overrides(params, _parse_param_overrides(args.param))
            if args.detector:
                params = with_detectors(params, args.detector)
        except ConfigurationError as exc:
            print(f"{exp_id}: {exc}", file=sys.stderr)
            return 2
        prepared.append((exp_id, params))
    if args.max_resident is not None and not args.stream:
        print("--max-resident requires --stream", file=sys.stderr)
        return 2
    if args.dry_run:
        shard = None
        if args.worker_id is not None:
            from .grid import parse_worker_id

            try:
                shard = parse_worker_id(args.worker_id)
            except ConfigurationError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        for exp_id, params in prepared:
            spec = specs[exp_id]
            cells = spec.grid(params)
            if shard is not None:
                from .grid import shard_indices

                k, n = shard
                per_worker = [len(shard_indices(len(cells), i, n)) for i in range(1, n + 1)]
                split = ", ".join(f"{i + 1}/{n}:{c}" for i, c in enumerate(per_worker))
                indices = shard_indices(len(cells), k, n)
                print(
                    f"{exp_id}: {len(cells)} cells; shard {k}/{n} claims "
                    f"{len(indices)} (split {split}) (nothing executed)"
                )
            else:
                indices = range(len(cells))
                print(f"{exp_id}: {len(cells)} cells (nothing executed)")
            for index in indices:
                coords = cells[index]
                seed = cell_seed(spec.exp_id, coords, params.seed)
                print(f"  [{index:>3}] {json.dumps(coords, sort_keys=True)} seed={seed}")
        return 0
    if distributed:
        return _run_distributed(args, specs, prepared, cache)
    for exp_id, params in prepared:
        spec = specs[exp_id]
        started = time.perf_counter()
        corrupt_before = cache.corrupt if cache is not None else 0
        try:
            # Misconfiguration can also surface while the grid wires up its
            # detectors (e.g. a family with a required param like partial's
            # `d` swept onto an experiment that cannot supply it).
            if args.stream:
                from .streaming import DEFAULT_WINDOW, run_grid_streaming

                streamed = run_grid_streaming(
                    spec,
                    params,
                    args.out,
                    workers=args.workers,
                    cache=cache,
                    window=(
                        args.max_resident
                        if args.max_resident is not None
                        else DEFAULT_WINDOW
                    ),
                )
                tables, path = streamed.tables, streamed.path
                cells_run, hits = streamed.stats.cells, streamed.stats.cache_hits
                detail = f", peak resident {streamed.stats.peak_resident}"
            else:
                result = run_grid(spec, params, workers=args.workers, cache=cache)
                tables, path = result.tables(), write_artifact(args.out, result)
                cells_run, hits = len(result.outcomes), result.cache_hits
                detail = ""
        except ConfigurationError as exc:
            print(f"{exp_id}: {exc}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        corrupt = (cache.corrupt - corrupt_before) if cache is not None else 0
        if corrupt:
            # A corrupt entry was recomputed, not served — but on a shared
            # cache it means torn writes or rot, so say it loudly.
            detail = f", {corrupt} corrupt cache entr{'y' if corrupt == 1 else 'ies'} recomputed{detail}"
        if not args.quiet:
            for table in tables:
                print(table.render_markdown() if args.markdown else table.render())
                print()
        print(
            f"[{exp_id}: {cells_run} cells "
            f"({hits} cached) in {elapsed:.1f}s{detail} -> {path}]"
        )
    return 0


def _run_distributed(args, specs, prepared, cache) -> int:
    """One worker's share of a distributed run (``--workers-dir``)."""
    from .grid import parse_worker_id, run_grid_worker

    [(exp_id, params)] = prepared
    spec = specs[exp_id]
    try:
        shard = parse_worker_id(args.worker_id) if args.worker_id else None
        started = time.perf_counter()
        report = run_grid_worker(
            spec,
            params,
            args.workers_dir,
            args.out,
            cache=cache,
            worker=args.worker_name,
            shard=shard,
            steal=args.steal,
            ttl=args.lease_ttl,
            backend=args.ledger_backend,
        )
    except ConfigurationError as exc:
        print(f"{exp_id}: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    counts = report.counts
    summary = (
        f"[{exp_id} worker {report.worker}: {report.completed} cells "
        f"({report.ran} ran, {report.cached} cached) in {elapsed:.1f}s; "
        f"grid {counts.done}/{counts.total} done"
    )
    if cache is not None and cache.corrupt:
        summary += f"; {cache.corrupt} corrupt cache entries recomputed"
    if report.artifact is not None:
        if not args.quiet:
            for table in report.tables:
                print(table.render_markdown() if args.markdown else table.render())
                print()
        print(f"{summary} -> {report.artifact}]")
    else:
        print(
            f"{summary}; artifact pending "
            f"(`repro grid status --workers-dir {args.workers_dir}`)]"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .microbench import (
        DEFAULT_FLOORS_PATH,
        check_floors,
        load_floors,
        microbench_table,
        run_microbench,
        write_microbench_artifact,
    )

    only = [w for w in args.only.split(",") if w]
    started = time.perf_counter()
    try:
        floors = None
        if args.check:
            # Resolve floors before burning bench time on a bad path.
            floors = load_floors(args.floors or DEFAULT_FLOORS_PATH)
            if only:
                floors = {name: floors[name] for name in only if name in floors}
        payload = run_microbench(events=args.events, only=only, mem=args.mem)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    path = write_microbench_artifact(args.out, payload)
    if not args.quiet:
        print(microbench_table(payload).render())
        print()
    print(f"[micro: {len(payload['cells'])} workloads in {elapsed:.1f}s -> {path}]")
    if floors is not None:
        failures = check_floors(payload, floors)
        if failures:
            for line in failures:
                print(f"bench check FAIL {line}", file=sys.stderr)
            return 1
        print(f"bench check OK: {len(floors)} workload floor(s) held")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    if args.cache_command == "info":
        stats = cache.stats(verify=args.verify)
        line = f"{args.dir}: {stats.entries} entries, {stats.total_bytes / 1e6:.1f} MB"
        if args.verify:
            line += f", {stats.corrupt} corrupt"
        print(line)
        return 1 if args.verify and stats.corrupt else 0
    try:
        report = cache.prune(
            max_age_seconds=(
                None if args.max_age_days is None else args.max_age_days * 86_400.0
            ),
            max_total_bytes=(
                None if args.max_size_mb is None else int(args.max_size_mb * 1_000_000)
            ),
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"pruned {report.removed} entries ({report.freed_bytes / 1e6:.1f} MB); "
        f"kept {report.kept} ({report.kept_bytes / 1e6:.1f} MB)"
    )
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .grid import grid_reap, grid_status

    try:
        if args.grid_command == "status":
            print(grid_status(args.workers_dir, args.ledger_backend).render())
        else:
            reclaimed = grid_reap(args.workers_dir, args.ledger_backend)
            print(f"reaped {reclaimed} expired lease(s) back to pending")
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command in ("experiments", "list"):
        return _cmd_experiments()
    if args.command == "detectors":
        return _cmd_detectors()
    if args.command == "protocols":
        return _cmd_protocols()
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "grid":
        return _cmd_grid(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
