"""``python -m repro`` — the unified experiment harness CLI.

Examples::

    python -m repro list
    python -m repro run t1 --workers 2 --out results/
    python -m repro run t1 e2 f3 --full --workers 8 --out results/ --markdown

``run`` evaluates each named grid (all of them with no names given),
prints its tables, and writes one ``BENCH_<ID>.json`` artifact per
experiment under ``--out``.  Results are cached by content hash under
``<out>/.cache`` (override with ``--cache-dir``, disable with
``--no-cache``): re-running an unchanged grid is served entirely from
cache and rewrites byte-identical artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time

from .artifacts import write_artifact
from .cache import ResultCache
from .registry import all_specs
from .runner import run_grid

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiment grids in parallel, with caching.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate experiment grids")
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiment ids (t1..t4, f1..f3, e1, e2, a1, a2); default: all",
    )
    run.add_argument("--workers", type=int, default=1, help="process-pool size")
    run.add_argument("--out", default="results", help="artifact directory")
    run.add_argument("--full", action="store_true", help="paper-scale parameters")
    run.add_argument("--seed", type=int, default=None, help="override the base seed")
    run.add_argument("--no-cache", action="store_true", help="always recompute")
    run.add_argument("--cache-dir", default=None, help="cache directory (default: OUT/.cache)")
    run.add_argument("--markdown", action="store_true", help="markdown tables")
    run.add_argument("--quiet", action="store_true", help="no tables, just a summary line")

    commands.add_parser("list", help="list experiment grids")
    return parser


def _cmd_list() -> int:
    for exp_id, spec in all_specs().items():
        params = spec.params_cls()
        print(f"{exp_id:<4} {len(spec.cells(params)):>3} cells  {spec.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    specs = all_specs()
    wanted = [exp.lower() for exp in args.experiments] or list(specs)
    unknown = sorted(set(wanted) - set(specs))
    if unknown:
        print(f"unknown experiment ids: {unknown}; choose from {sorted(specs)}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir is not None else f"{args.out}/.cache"
        cache = ResultCache(cache_dir)
    for exp_id in wanted:
        spec = specs[exp_id]
        overrides = {} if args.seed is None else {"seed": args.seed}
        params = spec.make_params(full=args.full, **overrides)
        started = time.perf_counter()
        result = run_grid(spec, params, workers=args.workers, cache=cache)
        elapsed = time.perf_counter() - started
        path = write_artifact(args.out, result)
        if not args.quiet:
            for table in result.tables():
                print(table.render_markdown() if args.markdown else table.render())
                print()
        print(
            f"[{exp_id}: {len(result.outcomes)} cells "
            f"({result.cache_hits} cached) in {elapsed:.1f}s -> {path}]"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
