"""Parallel experiment orchestration.

Every experiment in :mod:`repro.experiments` is a *grid*: a declarative
list of cells (parameter coordinates), one pure function that evaluates a
single cell, and one function that folds cell results into report tables.
:class:`~repro.harness.spec.ScenarioSpec` captures that triple; the
:mod:`~repro.harness.runner` evaluates whole grids — sequentially or on a
process pool — with deterministic per-cell seeding, deterministic result
ordering, and content-hash result caching; :mod:`~repro.harness.artifacts`
writes the machine-readable ``BENCH_<ID>.json`` outputs; and
:mod:`~repro.harness.cli` exposes it all as ``python -m repro run ...``.

Because cells are pure functions of ``(params, coords, seed)``, the same
grid run twice produces byte-identical artifacts — the second run entirely
from cache.
"""

from .artifacts import artifact_name, artifact_payload, write_artifact
from .cache import CacheStats, PruneReport, ResultCache, cache_key
from .grid import (
    GridStatus,
    WorkerReport,
    assemble_artifact,
    ensure_manifest,
    grid_reap,
    grid_status,
    run_grid_worker,
)
from .lease import FileLedger, LeaseLedger, LedgerCounts, SqliteLedger, open_ledger
from .plugins import entry_point_modules, load_plugins, plugin_modules, plugin_sources
from .registry import all_specs, get_spec
from .runner import CellOutcome, GridResult, evaluate_cell, run_cells, run_grid
from .spec import ScenarioSpec, cell_seed, with_detectors, with_overrides
from .streaming import (
    StreamedGridRun,
    StreamStats,
    run_grid_streaming,
    stream_outcomes,
)

__all__ = [
    "CacheStats",
    "CellOutcome",
    "FileLedger",
    "GridResult",
    "GridStatus",
    "LeaseLedger",
    "LedgerCounts",
    "PruneReport",
    "ResultCache",
    "ScenarioSpec",
    "SqliteLedger",
    "StreamStats",
    "StreamedGridRun",
    "WorkerReport",
    "all_specs",
    "artifact_name",
    "artifact_payload",
    "assemble_artifact",
    "cache_key",
    "cell_seed",
    "ensure_manifest",
    "entry_point_modules",
    "evaluate_cell",
    "get_spec",
    "grid_reap",
    "grid_status",
    "load_plugins",
    "open_ledger",
    "plugin_modules",
    "plugin_sources",
    "run_cells",
    "run_grid",
    "run_grid_streaming",
    "run_grid_worker",
    "stream_outcomes",
    "with_detectors",
    "with_overrides",
    "write_artifact",
]
