"""Harness view of the experiment registry, keyed by lower-case id.

Thin delegation to the :mod:`repro.experiments.api` plugin registry —
experiments register themselves (``register_experiment``) and every
consumer (``repro run``/``repro list``/``repro experiments``, ``run_all``,
CI smoke jobs) resolves them from the one registry, in canonical
reporting order.  Before the registry existed this module hard-coded the
eleven experiment modules, which meant a newly added experiment was
silently skipped by ``run_all`` and the CLI unless this tuple was edited;
discovery now lives in one place (``_BUILTIN_MODULES`` + registration,
with a conformance test that refuses undiscovered in-repo modules).

Imports stay lazy (inside the functions) so ``repro.harness`` has no
import cycle with ``repro.experiments`` — experiment modules import the
harness to declare their specs.
"""

from __future__ import annotations

from .spec import ScenarioSpec

__all__ = ["all_specs", "get_spec"]


def all_specs() -> dict[str, ScenarioSpec]:
    """Every registered experiment spec, in canonical reporting order."""
    from ..experiments.api import all_experiments

    return dict(all_experiments())


def get_spec(exp_id: str) -> ScenarioSpec:
    from ..experiments.api import get_experiment

    return get_experiment(exp_id)
