"""Registry of every experiment grid, keyed by lower-case id.

Imports live here (not at harness import time) so ``repro.harness`` has no
import cycle with ``repro.experiments`` — experiment modules import the
harness to declare their specs.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .spec import ScenarioSpec

__all__ = ["all_specs", "get_spec"]


def all_specs() -> dict[str, ScenarioSpec]:
    """Every registered experiment spec, in canonical reporting order."""
    from ..experiments import (
        a1_grace_ablation,
        a2_loss_resilience,
        e1_density,
        e2_mobility,
        f1_detection_cdf,
        f2_delay_variance,
        f3_mp_sensitivity,
        t1_detection_vs_n,
        t2_impact_of_f,
        t3_message_load,
        t4_consensus,
    )

    modules = (
        t1_detection_vs_n,
        t2_impact_of_f,
        t3_message_load,
        t4_consensus,
        f1_detection_cdf,
        f2_delay_variance,
        f3_mp_sensitivity,
        e1_density,
        e2_mobility,
        a1_grace_ablation,
        a2_loss_resilience,
    )
    return {module.SPEC.exp_id: module.SPEC for module in modules}


def get_spec(exp_id: str) -> ScenarioSpec:
    specs = all_specs()
    spec = specs.get(exp_id.lower())
    if spec is None:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; choose from {sorted(specs)}"
        )
    return spec
