"""Distributed grid execution: many hosts, one ledger, one artifact.

A grid run becomes distributable the moment its cells are
location-independent, and the harness made them so long ago: every cell
is a pure function of ``(params, coords, seed)`` with an SHA-256
stable-name seed and a content-hash cache key.  This module adds the
missing piece — a **coordinator-less scheduler** over a shared directory:

1. the first worker to arrive writes the run **manifest** (experiment,
   full params, per-cell coords/seed/cache-key, a grid digest, and the
   loaded plugin list) — atomically, exactly once;
2. every worker validates its own view of the grid against the manifest
   and **refuses to join on any mismatch** (different params, different
   code-derived digest, different ``REPRO_PLUGINS`` set);
3. workers then loop: *claim* a cell lease from the
   :mod:`~repro.harness.lease` ledger → evaluate it → write the value
   through the shared :class:`~repro.harness.cache.ResultCache` → mark
   the lease *done* — heartbeating the lease all the while, so a
   SIGKILLed worker's cells expire and are reclaimed by survivors;
4. any worker that observes every cell done **assembles the artifact**
   from the cache via the streaming tabulation path
   (:func:`~repro.harness.streaming.write_artifact_streaming`), byte
   for byte what a single-host run writes.

Two scheduling modes, per worker:

* **static sharding** (``repro run EXP --workers-dir D --worker-id k/N``)
  — worker *k* claims only cells with ``index % N == k-1`` and keeps
  polling until its shard is complete (so a relaunched worker resumes
  exactly where its dead predecessor's leases expire);
* **work stealing** (``repro run EXP --workers-dir D --steal``) — claim
  any claimable cell, lowest index first; stealers drain dead workers'
  expired leases automatically and a single surviving stealer finishes
  the whole grid.

Because results travel through the content-hash cache and cells are
deterministic, *every* race in this design degrades to duplicated work
with byte-identical results — never to a wrong or lost artifact.  See
``docs/distributed.md`` for the protocol, the failure model, and the
NFS caveats.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Callable

from ..errors import ConfigurationError
from .artifacts import artifact_name
from .cache import CACHE_SCHEMA, ResultCache, cache_key
from .lease import DEFAULT_TTL, LeaseLedger, LedgerCounts, open_ledger
from .plugins import load_plugins, plugin_sources
from .runner import evaluate_cell
from .spec import ScenarioSpec, canonical_json, cell_seed, params_to_dict
from .streaming import SpilledValues, write_artifact_streaming

__all__ = [
    "GRID_SCHEMA",
    "MANIFEST_NAME",
    "GridStatus",
    "WorkerReport",
    "grid_manifest",
    "ensure_manifest",
    "load_manifest",
    "parse_worker_id",
    "shard_indices",
    "run_grid_worker",
    "assemble_artifact",
    "grid_status",
    "grid_reap",
    "default_worker_name",
]

GRID_SCHEMA = "repro-grid/1"
MANIFEST_NAME = "manifest.json"

#: how long a steal-mode worker sleeps when nothing is claimable yet
DEFAULT_POLL = 0.5


# ---------------------------------------------------------------------------
# run manifest
# ---------------------------------------------------------------------------


def grid_manifest(spec: ScenarioSpec, params: Any) -> dict[str, Any]:
    """The run manifest: everything a worker needs to agree on.

    Cells are enumerated deterministically — the manifest *is* the
    ledger's index space, so ``spec.cells`` is expanded twice and any
    disagreement (a non-deterministic axis) is refused here, before a
    single lease exists.  Each cell record carries its coords, derived
    seed, and content-hash cache key; ``grid_digest`` fingerprints the
    whole enumeration so workers with drifted code cannot silently run
    a different grid under the same ledger.
    """
    cells = spec.grid(params)
    if spec.grid(params) != cells:
        raise ConfigurationError(
            f"experiment {spec.exp_id!r} enumerates a different grid on "
            "re-expansion; distributed runs need deterministic cells"
        )
    records = []
    for coords in cells:
        seed = cell_seed(spec.exp_id, coords, params.seed)
        records.append(
            {
                "coords": coords,
                "seed": seed,
                "key": cache_key(spec.exp_id, params, coords, seed),
            }
        )
    digest = sha256(
        canonical_json(
            {"experiment": spec.exp_id, "cells": records}
        ).encode("utf-8")
    ).hexdigest()
    # Import before recording: a manifest must not advertise a plugin set
    # this worker could not actually load.
    load_plugins()
    manifest = {
        "schema": GRID_SCHEMA,
        "experiment": spec.exp_id,
        "params": params_to_dict(params),
        "cache_schema": CACHE_SCHEMA,
        "plugins": plugin_sources(),
        "grid_digest": digest,
        "cells": records,
    }
    # JSON round-trip so a freshly built manifest compares equal to one
    # read back from disk (tuples in params become lists in both).
    return json.loads(canonical_json(manifest))


def _manifest_path(workers_dir: str | os.PathLike) -> Path:
    return Path(workers_dir) / MANIFEST_NAME


def load_manifest(workers_dir: str | os.PathLike) -> dict[str, Any]:
    path = _manifest_path(workers_dir)
    try:
        with path.open("r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(
            f"no run manifest at {path}; start a worker with "
            "`repro run EXP --workers-dir ...` to create the run"
        ) from None
    except ValueError as exc:
        raise ConfigurationError(f"unreadable run manifest {path}: {exc}") from exc


def _check_compatible(existing: dict[str, Any], fresh: dict[str, Any]) -> None:
    """Refuse a worker whose view of the run differs from the manifest."""
    for field, label in (
        ("schema", "manifest schema"),
        ("experiment", "experiment"),
        ("cache_schema", "cache schema"),
        ("params", "params"),
        ("plugins", "plugin set (REPRO_PLUGINS + repro.plugins entry points)"),
        ("grid_digest", "grid digest (cell enumeration)"),
    ):
        if existing.get(field) != fresh.get(field):
            raise ConfigurationError(
                f"worker does not match the run manifest: {label} differs "
                f"(manifest: {existing.get(field)!r}, worker: {fresh.get(field)!r})"
            )


def ensure_manifest(
    workers_dir: str | os.PathLike, spec: ScenarioSpec, params: Any
) -> dict[str, Any]:
    """Create the manifest exactly once, or validate against the existing one.

    Creation is atomic (temp file + ``os.link``), so any number of
    workers starting simultaneously agree on whose manifest won; every
    worker — including the winner — then validates its own freshly built
    manifest against the file, which is what enforces the params /
    plugin / digest contract.
    """
    path = _manifest_path(workers_dir)
    fresh = grid_manifest(spec, params)
    if not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(fresh, fh, sort_keys=True, indent=2)
            try:
                os.link(tmp, path)
            except FileExistsError:
                pass  # another worker won the race; validate against theirs
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    existing = load_manifest(workers_dir)
    _check_compatible(existing, fresh)
    return existing


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------


def parse_worker_id(text: str) -> tuple[int, int]:
    """``"k/N"`` → ``(k, N)`` with ``1 <= k <= N`` (operator-facing, 1-based)."""
    try:
        k_text, _, n_text = text.partition("/")
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ConfigurationError(
            f"--worker-id expects k/N (e.g. 2/4), got {text!r}"
        ) from None
    if not 1 <= k <= n:
        raise ConfigurationError(
            f"--worker-id {text!r} out of range: need 1 <= k <= N"
        )
    return k, n


def shard_indices(total: int, k: int, n: int) -> list[int]:
    """Cell indices of static shard ``k/N`` (round-robin by index)."""
    return list(range(k - 1, total, n))


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


# ---------------------------------------------------------------------------
# heartbeat
# ---------------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Renews the worker's current lease in the background.

    Owns a private ledger handle (SQLite connections are per-thread).
    ``watch(index)`` points it at the cell being evaluated; ``watch(None)``
    between cells.  A SIGKILL takes this thread down with the worker —
    which is precisely what lets the lease expire.
    """

    def __init__(
        self,
        ledger_factory: Callable[[], LeaseLedger],
        owner: str,
        ttl: float,
        interval: float,
    ) -> None:
        super().__init__(name=f"lease-heartbeat-{owner}", daemon=True)
        self._factory = ledger_factory
        self._owner = owner
        self._ttl = ttl
        self._interval = interval
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._current: int | None = None

    def watch(self, index: int | None) -> None:
        with self._lock:
            self._current = index

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        ledger = self._factory()
        try:
            while not self._halt.wait(self._interval):
                with self._lock:
                    index = self._current
                if index is not None:
                    ledger.renew(self._owner, index, ttl=self._ttl)
        finally:
            ledger.close()


# ---------------------------------------------------------------------------
# worker loop
# ---------------------------------------------------------------------------


@dataclass
class WorkerReport:
    """What one worker did, and whether it finished the run."""

    worker: str
    exp_id: str
    #: cells this worker evaluated (cache misses it computed)
    ran: int = 0
    #: cells this worker resolved from the shared cache
    cached: int = 0
    #: cells this worker marked done (ran + cached)
    completed: int = 0
    #: ledger state when the worker exited
    counts: LedgerCounts | None = None
    #: set when *this* worker observed completion and wrote the artifact
    artifact: Path | None = None
    tables: list[Any] | None = None


def run_grid_worker(
    spec: ScenarioSpec,
    params: Any,
    workers_dir: str | os.PathLike,
    out_dir: str | os.PathLike = "results",
    *,
    cache: ResultCache,
    worker: str | None = None,
    shard: tuple[int, int] | None = None,
    steal: bool = False,
    ttl: float = DEFAULT_TTL,
    heartbeat: float | None = None,
    poll: float = DEFAULT_POLL,
    backend: str = "auto",
) -> WorkerReport:
    """Join (or start) the distributed run of ``spec`` under ``workers_dir``.

    Exactly one of ``shard`` (static ``(k, N)``) or ``steal`` must be
    given.  ``cache`` must be a directory shared by all workers — it is
    the data plane; the ledger only tracks who is doing what.  The call
    returns when this worker has nothing left to do: its shard is done
    (static), or the whole grid is done (steal).  Whichever worker
    observes global completion assembles the artifact into ``out_dir``
    (several may — the writes are atomic and byte-identical).
    """
    if (shard is None) == (not steal):
        raise ConfigurationError(
            "distributed runs need exactly one mode: shard=(k, N) or steal=True"
        )
    if cache is None:
        raise ConfigurationError(
            "distributed runs need a shared ResultCache (it carries the results)"
        )
    if shard is not None:
        k, n = shard
        if not 1 <= k <= n:
            raise ConfigurationError(f"shard {k}/{n} out of range: need 1 <= k <= N")
    worker = worker or default_worker_name()
    manifest = ensure_manifest(workers_dir, spec, params)
    cells = manifest["cells"]
    total = len(cells)
    report = WorkerReport(worker=worker, exp_id=spec.exp_id)
    ledger = open_ledger(workers_dir, total, backend)
    interval = heartbeat if heartbeat is not None else max(ttl / 4.0, 0.05)
    beat = _Heartbeat(
        lambda: open_ledger(workers_dir, total, ledger.backend), worker, ttl, interval
    )
    shard0 = None if shard is None else (shard[0] - 1, shard[1])
    mine = None if shard is None else set(shard_indices(total, *shard))
    beat.start()
    try:
        while True:
            index = ledger.claim(worker, ttl=ttl, shard=shard0)
            if index is None:
                counts = ledger.counts()
                if counts.all_done:
                    break
                if mine is not None and mine <= ledger.done_indices():
                    break  # static shard complete; the grid may still be running
                # Nothing claimable *yet*: live leases elsewhere.  Wait for
                # them to complete or expire (a dead worker's cells come
                # back to us through exactly this path).
                time.sleep(poll)
                continue
            beat.watch(index)
            try:
                record = cells[index]
                value, hit = evaluate_cell(
                    spec, params, record["coords"], record["seed"],
                    cache=cache, key=record["key"],
                )
            except BaseException:
                # Give the cell back immediately rather than holding the
                # lease until expiry — a crashing cell should not stall
                # the other workers for a full TTL.
                beat.watch(None)
                ledger.release(worker, index)
                raise
            beat.watch(None)
            ledger.complete(worker, index)
            report.completed += 1
            if hit:
                report.cached += 1
            else:
                report.ran += 1
    finally:
        beat.stop()
        beat.join(timeout=5.0)
    counts = ledger.counts()
    report.counts = counts
    ledger.close()
    if counts.all_done:
        report.artifact, report.tables = assemble_artifact(
            spec, params, manifest, cache, out_dir
        )
    return report


# ---------------------------------------------------------------------------
# artifact assembly (coordinator-less tabulation)
# ---------------------------------------------------------------------------


def assemble_artifact(
    spec: ScenarioSpec,
    params: Any,
    manifest: dict[str, Any],
    cache: ResultCache,
    out_dir: str | os.PathLike,
) -> tuple[Path, list[Any]]:
    """Tabulate a completed run from the shared cache; returns (path, tables).

    Values are read back in manifest (= cell) order through the streaming
    spill/tabulation path, so assembly memory stays bounded no matter the
    grid size.  A value missing from the cache (pruned, or a corrupt
    entry) is recomputed locally — cells are deterministic, so the
    artifact is unaffected, just slower.  The final write is atomic
    (temp + rename): concurrent assemblers produce byte-identical files
    and the winner is indistinguishable from the loser.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / artifact_name(spec.exp_id)
    suffix = f".{default_worker_name()}"
    spill = out / (artifact_name(spec.exp_id) + suffix + ".assemble.spill")
    partial = out / (artifact_name(spec.exp_id) + suffix + ".tmp")
    offsets: list[int] = []
    values = SpilledValues(spill, offsets)
    try:
        with spill.open("w", encoding="utf-8") as fh:
            for record in manifest["cells"]:
                value, _hit = evaluate_cell(
                    spec, params, record["coords"], record["seed"],
                    cache=cache, key=record["key"],
                )
                offsets.append(fh.tell())
                fh.write(
                    json.dumps(
                        {
                            "coords": record["coords"],
                            "seed": record["seed"],
                            "value": value,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        tables = spec.tabulate(params, values)
        tables = tables if isinstance(tables, list) else [tables]
        write_artifact_streaming(partial, spec, params, spill, tables)
        os.replace(partial, path)
    finally:
        values.close()
        spill.unlink(missing_ok=True)
        partial.unlink(missing_ok=True)
    return path, tables


# ---------------------------------------------------------------------------
# observability: status / reap
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridStatus:
    """One snapshot of a distributed run (``repro grid status``)."""

    experiment: str
    counts: LedgerCounts
    owners: dict[str, int]
    plugins: tuple[str, ...]
    backend: str

    def render(self) -> str:
        c = self.counts
        lines = [
            f"{self.experiment}: {c.done}/{c.total} done "
            f"({c.pending} pending, {c.leased} leased, {c.expired} expired) "
            f"[{self.backend} ledger]",
        ]
        for owner in sorted(self.owners):
            lines.append(f"  {owner}: {self.owners[owner]} leased")
        if self.plugins:
            lines.append(f"  plugins: {', '.join(self.plugins)}")
        if c.all_done:
            lines.append("  complete — artifact written by the finishing worker")
        return "\n".join(lines)


def grid_status(
    workers_dir: str | os.PathLike, backend: str = "auto"
) -> GridStatus:
    manifest = load_manifest(workers_dir)
    with open_ledger(workers_dir, len(manifest["cells"]), backend) as ledger:
        now = time.time()
        return GridStatus(
            experiment=manifest["experiment"],
            counts=ledger.counts(now=now),
            owners=ledger.owners(now=now),
            plugins=_manifest_plugin_names(manifest),
            backend=ledger.backend,
        )


def _manifest_plugin_names(manifest: dict[str, Any]) -> tuple[str, ...]:
    """Flatten the manifest's plugin record for display.

    Current manifests record per-source dicts
    (``{"env": [...], "entry_points": [...]}``); pre-entry-point manifests
    recorded a flat list.
    """
    raw = manifest.get("plugins", ())
    if isinstance(raw, dict):
        names = [*raw.get("env", ()), *raw.get("entry_points", ())]
    else:
        names = list(raw)
    return tuple(sorted(set(names)))


def grid_reap(workers_dir: str | os.PathLike, backend: str = "auto") -> int:
    """Reset expired leases to pending; returns how many were reclaimed."""
    manifest = load_manifest(workers_dir)
    with open_ledger(workers_dir, len(manifest["cells"]), backend) as ledger:
        return ledger.reap()
