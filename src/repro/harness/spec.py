"""Declarative experiment grids.

A :class:`ScenarioSpec` turns an experiment module into data the runner can
schedule: ``cells(params)`` enumerates the grid, ``run_cell(params, coords,
seed)`` evaluates one cell into a JSON-serialisable mapping, and
``tabulate(params, values)`` folds the cell values (in cell order) back
into report :class:`~repro.experiments.report.Table` objects.

All three must be *module-level* functions: grids are shipped to worker
processes by pickle, which serialises functions by qualified name.
``run_cell`` must depend only on its arguments — no globals, no wall
clock — so that a cell's result is a pure function of ``(params, coords,
seed)`` and can be cached by content hash.

Seeding: :func:`cell_seed` derives every cell's RNG seed from the
experiment id, the cell coordinates and the grid's base seed via SHA-256,
so cells are independently and reproducibly seeded no matter which worker
runs them, in what order, or whether neighbouring cells were added or
removed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError

__all__ = [
    "ScenarioSpec",
    "cell_seed",
    "canonical_json",
    "params_to_dict",
    "with_detectors",
    "with_overrides",
]


def canonical_json(value: Any) -> str:
    """A stable textual form for hashing: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=_jsonify)


def _jsonify(value: Any) -> Any:
    if isinstance(value, (frozenset, set, tuple)):
        return sorted(value, key=repr) if isinstance(value, (frozenset, set)) else list(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    raise TypeError(f"not canonically serialisable: {value!r}")


def params_to_dict(params: Any) -> dict[str, Any]:
    """Parameter dataclass -> plain dict (tuples kept; JSON turns them into lists).

    Fields declared with ``metadata={"omit_default": True}`` are dropped
    while they hold their default value.  This is what lets a params class
    grow an opt-in field (e.g. a fault axis) without changing the params
    dict embedded in artifacts and cache keys — byte-identity is preserved
    for every run that does not set the field.
    """
    if not (dataclasses.is_dataclass(params) and not isinstance(params, type)):
        raise ConfigurationError(f"experiment params must be a dataclass, got {params!r}")
    result = dataclasses.asdict(params)
    for spec_field in dataclasses.fields(params):
        if not spec_field.metadata.get("omit_default"):
            continue
        if spec_field.default is not dataclasses.MISSING:
            default = spec_field.default
        elif spec_field.default_factory is not dataclasses.MISSING:
            default = spec_field.default_factory()
        else:
            continue
        if getattr(params, spec_field.name) == default:
            del result[spec_field.name]
    return result


def cell_seed(exp_id: str, coords: Mapping[str, Any], base_seed: int) -> int:
    """Deterministic per-cell seed, independent of evaluation order."""
    payload = canonical_json({"exp": exp_id, "coords": dict(coords), "seed": base_seed})
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def with_detectors(params: Any, detectors: Sequence[str]) -> Any:
    """Override an experiment's detector axis, whatever shape it takes.

    Every experiment params dataclass carries either ``detectors`` (a tuple
    of registry keys it compares) or ``detector`` (a single key), so the
    CLI's ``--detector`` flag needs no per-experiment code.  Keys are
    validated against the :mod:`repro.detectors` registry up front.
    """
    from ..detectors import get_detector

    for key in detectors:
        get_detector(key)  # raises ConfigurationError on unknown keys
    names = {f.name for f in dataclasses.fields(params)}
    if "detectors" in names:
        return dataclasses.replace(params, detectors=tuple(detectors))
    if "detector" in names:
        if len(detectors) != 1:
            raise ConfigurationError(
                f"{type(params).__name__} deploys a single detector; "
                f"got {len(detectors)}: {list(detectors)}"
            )
        return dataclasses.replace(params, detector=detectors[0])
    raise ConfigurationError(f"{type(params).__name__} has no detector axis")


def with_overrides(params: Any, overrides: Mapping[str, Any]) -> Any:
    """Apply ``field=value`` overrides, coercing lists to tuples.

    Backs the CLI's ``-p/--param`` flag: values arrive JSON-decoded, but
    params dataclasses use tuples for sequence fields (hashability / cache
    canonicalisation), so lists are converted recursively.
    """
    names = {f.name for f in dataclasses.fields(params)}
    unknown = sorted(set(overrides) - names)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {unknown} for {type(params).__name__}; "
            f"valid: {sorted(names)}"
        )
    coerced = {}
    for name, value in overrides.items():
        value = _tuplify(value)
        current = getattr(params, name)
        # Catch the classic ``-p detectors=phi`` slip: a bare string landing
        # on a sequence field would otherwise be iterated character-wise.
        if isinstance(current, tuple) and not isinstance(value, tuple):
            raise ConfigurationError(
                f"{name} expects a list, e.g. -p '{name}=[...]'; got {value!r}"
            )
        coerced[name] = value
    return dataclasses.replace(params, **coerced)


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment as a schedulable grid.

    ``exp_id``
        Short lower-case id (``"t1"``, ``"e2"`` ...) used by the CLI, the
        cache key, and the ``BENCH_<ID>.json`` artifact name.
    ``title``
        One-line description shown by ``python -m repro list``.
    ``params_cls``
        Frozen dataclass of experiment parameters; must offer ``full()``
        for paper-scale presets and carry a ``seed`` field.
    ``cells``
        ``cells(params) -> sequence of coordinate mappings`` (JSON-scalar
        values only) — the grid, in canonical (reporting) order.
        Subclasses may derive it (``None`` here): the declarative
        :class:`~repro.experiments.api.ExperimentSpec` fills it in from
        its ``axes``.
    ``run_cell``
        ``run_cell(params, coords, seed) -> JSON-serialisable mapping`` —
        evaluates one cell.  Runs on worker processes.
    ``tabulate``
        ``tabulate(params, values) -> Table | list[Table]`` with ``values``
        in ``cells(params)`` order.

    The harness derives each cell's master seed as
    ``sha256(exp_id, params, coords)``, so ``run_cell`` must draw all its
    randomness from the ``seed`` it is handed — never from global state —
    and cells stay independent of grid order (the first invariant in
    ``docs/architecture.md``).  ``run_cell`` and ``tabulate`` must be
    importable module-level callables: cells are evaluated on worker
    processes and results are cached by content hash.
    """

    exp_id: str
    title: str
    params_cls: type
    cells: Callable[[Any], Sequence[Mapping[str, Any]]] | None = None
    run_cell: Callable[[Any, Mapping[str, Any], int], Mapping[str, Any]] | None = None
    tabulate: Callable[[Any, list[Any]], Any] | None = None

    def __post_init__(self) -> None:
        missing = [
            name
            for name in ("cells", "run_cell", "tabulate")
            if getattr(self, name) is None
        ]
        if missing:
            raise ConfigurationError(
                f"experiment {self.exp_id!r} is missing {missing}; a grid needs "
                "cells (or declarative axes), a cell runner and a tabulation layout"
            )

    def make_params(
        self,
        *,
        full: bool = False,
        preset: str | None = None,
        **overrides: Any,
    ) -> Any:
        """Quick, paper-scale (``full=True``) or named-preset parameters.

        A preset is a no-argument classmethod on ``params_cls`` returning a
        params instance (``full`` is one; experiments may add others such
        as ``large_n``).  Overrides are applied on top either way.
        """
        if preset is not None:
            if full:
                raise ConfigurationError(
                    f"experiment {self.exp_id!r}: pass either full or preset, not both"
                )
            params = self._resolve_preset(preset)
        else:
            params = self.params_cls.full() if full else self.params_cls()
        if overrides:
            params = dataclasses.replace(params, **overrides)
        return params

    def _resolve_preset(self, preset: str) -> Any:
        factory = getattr(self.params_cls, preset, None)
        if preset.startswith("_") or not callable(factory):
            available = ", ".join(sorted(self.presets())) or "none"
            raise ConfigurationError(
                f"experiment {self.exp_id!r} has no preset {preset!r} "
                f"(available: {available})"
            )
        params = factory()
        if not isinstance(params, self.params_cls):
            raise ConfigurationError(
                f"experiment {self.exp_id!r}: preset {preset!r} returned "
                f"{type(params).__name__}, not {self.params_cls.__name__}"
            )
        return params

    def presets(self) -> tuple[str, ...]:
        """Names of the no-argument params factories this experiment offers."""
        names = []
        for name in dir(self.params_cls):
            if name.startswith("_"):
                continue
            member = inspect.getattr_static(self.params_cls, name)
            if isinstance(member, classmethod):
                names.append(name)
        return tuple(sorted(names))

    def grid(self, params: Any) -> list[dict[str, Any]]:
        """The grid as fresh, mutable cell dicts (what the runners schedule)."""
        return [dict(coords) for coords in self.cells(params)]
