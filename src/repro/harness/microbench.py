"""Engine microbenchmarks, foldable into the canonical artifact format.

The scheduler hot-path workloads (previously only runnable via
``benchmarks/engine_microbench.py``, which now wraps this module) measured
and reported like any experiment grid: ``repro bench`` evaluates the
workloads and writes a ``BENCH_MICRO.json`` artifact shaped like the
experiment artifacts (schema/params/cells/tables), so CI can archive and
diff engine throughput the same way it archives experiment results.
Unlike experiment artifacts, timings are inherently machine-dependent —
the artifact is for tracking, not byte-identity.

Workloads:

* ``chain``   — one event schedules the next (timer-wheel pattern;
  pure push/pop throughput at a tiny heap).
* ``fanout``  — pre-schedule N events, drain them (large-heap pops).
* ``churn``   — schedule two, cancel one, repeat (the heartbeat re-arm
  pattern; exercises lazy deletion and compaction).
* ``batch``   — schedule N events in batches of 100 (broadcast /
  cluster-start pattern; uses ``schedule_batch``).
* ``cluster`` — end-to-end ``SimCluster`` heartbeat run (n=40).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from ..errors import ConfigurationError
from ..experiments.report import Table
from ..sim.engine import Scheduler
from .artifacts import ARTIFACT_SCHEMA, artifact_name

__all__ = [
    "MICROBENCH_ID",
    "WORKLOADS",
    "run_microbench",
    "microbench_table",
    "write_microbench_artifact",
]

MICROBENCH_ID = "micro"

#: artifact schema for microbenchmarks (timings, not deterministic values)
MICROBENCH_SCHEMA = ARTIFACT_SCHEMA + "+microbench"


def _timed(fn: Callable[[], None]) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _noop() -> None:
    return None


def bench_chain(n: int) -> float:
    scheduler = Scheduler()
    remaining = [n]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            scheduler.schedule_after(0.001, tick)

    scheduler.schedule_at(0.0, tick)
    return _timed(scheduler.run)


def bench_fanout(n: int) -> float:
    scheduler = Scheduler()
    for i in range(n):
        scheduler.schedule_at(i * 0.001, _noop)
    return _timed(scheduler.run)


def bench_churn(n: int) -> float:
    scheduler = Scheduler()
    remaining = [n]

    def rearm() -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        doomed = scheduler.schedule_after(10.0, _noop)
        scheduler.schedule_after(0.001, rearm)
        doomed.cancel()

    scheduler.schedule_at(0.0, rearm)
    return _timed(scheduler.run)


def bench_batch(n: int) -> float:
    scheduler = Scheduler()
    batch_size = 100

    def fill() -> None:
        base = scheduler.now
        scheduler.schedule_batch(
            [(base + i * 0.001, _noop, ()) for i in range(batch_size)]
        )

    for round_index in range(n // batch_size):
        scheduler.schedule_at(round_index * 1.0, fill)
    return _timed(scheduler.run)


def bench_cluster(n: int) -> float:
    from ..sim.cluster import SimCluster, heartbeat_driver_factory

    horizon = max(5.0, n / 10_000)
    cluster = SimCluster(
        n=40,
        driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
        seed=7,
        start_stagger=0.5,
    )
    elapsed = _timed(lambda: cluster.run(until=horizon))
    # Normalise to events for the kev/s report.
    bench_cluster.events = cluster.scheduler.events_processed  # type: ignore[attr-defined]
    return elapsed


WORKLOADS: dict[str, Callable[[int], float]] = {
    "chain": bench_chain,
    "fanout": bench_fanout,
    "churn": bench_churn,
    "batch": bench_batch,
    "cluster": bench_cluster,
}


def run_microbench(
    events: int = 200_000, only: Iterable[str] = ()
) -> dict[str, Any]:
    """Run the workloads; returns the ``BENCH_MICRO.json`` payload."""
    wanted = list(only) or list(WORKLOADS)
    unknown = sorted(set(wanted) - set(WORKLOADS))
    if unknown:
        raise ConfigurationError(
            f"unknown workload(s) {unknown}; choose from {sorted(WORKLOADS)}"
        )
    cells = []
    for name in wanted:
        fn = WORKLOADS[name]
        elapsed = fn(events)
        processed = getattr(fn, "events", events)
        cells.append(
            {
                "coords": {"workload": name},
                "value": {
                    "events": processed,
                    "seconds": round(elapsed, 6),
                    "kev_per_s": round(processed / elapsed / 1000, 1),
                },
            }
        )
    payload = {
        "schema": MICROBENCH_SCHEMA,
        "experiment": MICROBENCH_ID,
        "title": "sim.engine scheduler hot-path microbenchmarks",
        "params": {"events": events, "workloads": wanted},
        "cells": cells,
    }
    table = microbench_table(payload)
    payload["tables"] = [
        {
            "title": table.title,
            "headers": list(table.headers),
            "rows": [list(row) for row in table.rows],
            "notes": list(table.notes),
        }
    ]
    return payload


def microbench_table(payload: dict[str, Any]) -> Table:
    """Render a microbench payload as a report table."""
    table = Table(
        title=payload["title"],
        headers=["workload", "events", "seconds", "kev/s"],
        precision=3,
    )
    for cell in payload["cells"]:
        value = cell["value"]
        table.add_row(
            cell["coords"]["workload"],
            value["events"],
            value["seconds"],
            value["kev_per_s"],
        )
    table.add_note("timings are machine-dependent; artifact is for tracking, not identity")
    return table


def write_microbench_artifact(out_dir: str | Path, payload: dict[str, Any]) -> Path:
    """Write ``BENCH_MICRO.json`` in the canonical artifact rendering."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / artifact_name(MICROBENCH_ID)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path
