"""Engine microbenchmarks, foldable into the canonical artifact format.

The scheduler hot-path workloads (previously only runnable via
``benchmarks/engine_microbench.py``, which now wraps this module) measured
and reported like any experiment grid: ``repro bench`` evaluates the
workloads and writes a ``BENCH_MICRO.json`` artifact shaped like the
experiment artifacts (schema/params/cells/tables), so CI can archive and
diff engine throughput the same way it archives experiment results.
Unlike experiment artifacts, timings are inherently machine-dependent —
the artifact is for tracking, not byte-identity.

Workloads:

* ``chain``   — one event schedules the next (timer-wheel pattern;
  pure push/pop throughput at a tiny heap).
* ``fanout``  — pre-schedule N events, drain them (large-heap pops).
* ``churn``   — schedule two, cancel one, repeat (the heartbeat re-arm
  pattern; exercises lazy deletion and compaction).
* ``batch``   — schedule N events in batches of 100 (broadcast /
  cluster-start pattern; uses ``schedule_batch``).
* ``cluster`` — end-to-end ``SimCluster`` heartbeat run (n=40).
* ``broadcast`` — network data plane: a 60-node full mesh where nodes
  broadcast ``Query`` messages round-robin (neighbor resolution, loss
  branch, latency sampling, per-message trace accounting).
* ``trace-query`` — metrics read path: per-(observer, target) timeline
  queries over a synthetic suspicion trace, the access pattern of
  ``repro.metrics`` tabulation (events = queries executed).
* ``trace``   — trace plane end-to-end: record a drifting suspicion trace
  into the columnar store, then tabulate it with the pruned per-pair query
  mix (events = changes recorded + queries executed).  Its committed floor
  is pinned above the object backend's speed on the same workload, so a
  silent fallback to the object recorder trips the gate.
* ``cells``   — one end-to-end experiment cell: a time-free cluster with
  a crash, run to horizon, then the full QoS tabulation (detection,
  mistakes, message load) — the workload grid runs scale by.
* ``consensus`` — consensus workload plane: a detector-generic
  ``ConsensusHarness`` run deciding a self-clocked chain of CT-◇S
  instances over a time-free cluster, folded through the decision-ledger
  metrics — the workload the ``c1`` grid scales by.
* ``merge``   — protocol-core hot path: steady-state query merging on an
  n=32 membership where every received record is stale (Algorithm 1
  re-ships the full sets each round), exercising the batched
  ``SuspicionState.merge_query`` fast path (events = records merged).

``repro bench --check`` compares a fresh run against the committed
per-workload kev/s floors (``benchmarks/bench_floors.json``) and fails
when any workload regresses below its floor — the CI regression gate.

``repro bench --mem`` re-runs each workload under :mod:`tracemalloc` and
records its peak traced allocation (``peak_kb``).  Workloads carrying a
``mem_baseline`` attribute (currently ``trace``, whose baseline is the
object-backend recorder) also record ``baseline_peak_kb`` and the
``mem_ratio`` between the two — the committed evidence for the columnar
store's memory claim.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from ..errors import ConfigurationError
from ..experiments.report import Table
from ..sim.engine import Scheduler
from .artifacts import ARTIFACT_SCHEMA, artifact_name

__all__ = [
    "MICROBENCH_ID",
    "WORKLOADS",
    "DEFAULT_FLOORS_PATH",
    "run_microbench",
    "microbench_table",
    "write_microbench_artifact",
    "load_floors",
    "check_floors",
]

MICROBENCH_ID = "micro"

#: committed kev/s floors for the regression gate (repo-relative)
DEFAULT_FLOORS_PATH = "benchmarks/bench_floors.json"

FLOORS_SCHEMA = "repro-bench-floors/1"

#: artifact schema for microbenchmarks (timings, not deterministic values)
MICROBENCH_SCHEMA = ARTIFACT_SCHEMA + "+microbench"


def _timed(fn: Callable[[], None]) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _noop() -> None:
    return None


def bench_chain(n: int) -> float:
    scheduler = Scheduler()
    remaining = [n]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            scheduler.schedule_after(0.001, tick)

    scheduler.schedule_at(0.0, tick)
    return _timed(scheduler.run)


def bench_fanout(n: int) -> float:
    scheduler = Scheduler()
    for i in range(n):
        scheduler.schedule_at(i * 0.001, _noop)
    return _timed(scheduler.run)


def bench_churn(n: int) -> float:
    scheduler = Scheduler()
    remaining = [n]

    def rearm() -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        doomed = scheduler.schedule_after(10.0, _noop)
        scheduler.schedule_after(0.001, rearm)
        doomed.cancel()

    scheduler.schedule_at(0.0, rearm)
    return _timed(scheduler.run)


def bench_batch(n: int) -> float:
    scheduler = Scheduler()
    batch_size = 100

    def fill() -> None:
        base = scheduler.now
        scheduler.schedule_batch(
            [(base + i * 0.001, _noop, ()) for i in range(batch_size)]
        )

    for round_index in range(n // batch_size):
        scheduler.schedule_at(round_index * 1.0, fill)
    return _timed(scheduler.run)


def bench_cluster(n: int) -> float:
    from ..sim.cluster import SimCluster, heartbeat_driver_factory

    horizon = max(5.0, n / 10_000)
    cluster = SimCluster(
        n=40,
        driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
        seed=7,
        start_stagger=0.5,
    )
    elapsed = _timed(lambda: cluster.run(until=horizon))
    # Normalise to events for the kev/s report.
    bench_cluster.events = cluster.scheduler.events_processed  # type: ignore[attr-defined]
    return elapsed


def bench_broadcast(n: int) -> float:
    """Data-plane fan-out: Query broadcasts round-robin on a 60-node mesh."""
    from ..core.messages import Query
    from ..sim.latency import ExponentialLatency
    from ..sim.network import SimNetwork
    from ..sim.rng import RngStreams
    from ..sim.topology import full_mesh

    size = 60
    scheduler = Scheduler()
    network = SimNetwork(
        scheduler,
        full_mesh(range(1, size + 1)),
        ExponentialLatency(0.001),
        RngStreams(11),
    )

    def sink(src, message) -> None:
        return None

    for pid in range(1, size + 1):
        network.register(pid, sink)
    query = Query(sender=1, round_id=0, suspected=(), mistakes=())
    remaining = [max(1, n // size)]

    def step() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            network.broadcast(1 + remaining[0] % size, query)
            scheduler.schedule_after(0.01, step)

    scheduler.schedule_at(0.0, step)
    elapsed = _timed(scheduler.run)
    bench_broadcast.events = scheduler.events_processed  # type: ignore[attr-defined]
    return elapsed


def bench_trace_query(n: int) -> float:
    """Metrics read path: per-pair timeline queries over a synthetic trace.

    Builds a time-ordered suspicion trace (40 observers, ``n / 1000``
    changes each, ≥ 50) and then issues the exact query mix metrics
    tabulation issues: ``first_suspicion_time`` / ``permanent_suspicion_time``
    / ``suspicion_intervals`` per (observer, target) pair, plus sampled
    ``suspects_at`` and ``false_suspicion_count_at``.  Reported events are
    the queries executed, so kev/s = thousand queries per second.
    """
    import random as _random

    from ..sim.trace import TraceRecorder

    observers = 40
    per_observer = max(50, n // 1000)
    rng = _random.Random(5)
    trace = TraceRecorder()
    ids = list(range(1, observers + 1))
    current: dict[int, frozenset[int]] = {pid: frozenset() for pid in ids}
    now = 0.0
    for _ in range(per_observer):
        for observer in ids:
            now += rng.random() * 0.01
            after = frozenset(rng.sample(ids, rng.randrange(0, 4)))
            trace.record_suspicion_change(now, observer, current[observer], after)
            current[observer] = after
    horizon = now + 1.0
    sample_times = [horizon * i / 25.0 for i in range(25)]
    queries = 0

    def sweep() -> None:
        nonlocal queries
        for observer in ids:
            for target in ids:
                if observer == target:
                    continue
                trace.first_suspicion_time(observer, target)
                trace.permanent_suspicion_time(observer, target)
                trace.suspicion_intervals(observer, target, horizon=horizon)
                queries += 3
            for t in sample_times:
                trace.suspects_at(observer, t)
                queries += 1
        for t in sample_times:
            trace.false_suspicion_count_at(t, frozenset())
            queries += 1

    elapsed = _timed(sweep)
    bench_trace_query.events = queries  # type: ignore[attr-defined]
    return elapsed


def bench_trace(n: int, backend: str = "columnar") -> float:
    """Trace plane tabulation at large-n shape: the QoS metrics read path.

    Records (untimed) an interleaved trace — 96 observers whose drifting
    suspect sets stay inside a 16-process neighborhood, the large-n
    partial-topology regime the columnar store exists for — then times the
    tabulation passes the QoS metrics stack runs: a detection-style pass
    (``first_suspicion_time`` / ``permanent_suspicion_time`` per
    (observer, victim), *unpruned* — most observers never suspected a given
    victim, the case the per-pair transition index turns into an O(1) miss
    where the object backend scans the observer's whole timeline), a
    mistake/accuracy-style pass (``suspicion_intervals`` twice plus
    ``permanent_suspicion_time`` for the ``targets_of``-pruned pairs with
    history), and time-increasing ``suspects_at`` /
    ``false_suspicion_count_at`` sweeps.  Events are queries executed.  The
    committed floor sits above the object backend's speed on this exact
    workload (pass ``backend="object"`` to measure it), so a silent
    fallback to the object recorder trips the ``bench-gate`` CI job; the
    ``--mem`` pass covers the recording too, so the cell's ``mem_ratio``
    against the object baseline is the columnar store's memory claim.
    """
    import random as _random

    from ..sim.trace import TraceRecorder

    observers = 96
    per_observer = max(100, n // 2000)
    rng = _random.Random(17)
    ids = [f"n{i}" for i in range(observers)]
    trace = TraceRecorder(backend=backend)
    ops = 0

    neighborhood = 16
    pools = {
        pid: [ids[(i + k) % observers] for k in range(1, neighborhood + 1)]
        for i, pid in enumerate(ids)
    }
    current: dict[str, frozenset[str]] = {pid: frozenset() for pid in ids}
    now = 0.0
    for _ in range(per_observer):
        for observer in ids:
            now += rng.random() * 0.01
            cur = current[observer]
            nxt = set(cur)
            if nxt and (rng.random() >= 0.65 or len(nxt) >= neighborhood - 4):
                nxt.discard(min(nxt))
            else:
                nxt.add(rng.choice(pools[observer]))
            after = frozenset(nxt)
            trace.record_suspicion_change(now, observer, cur, after)
            current[observer] = after
    horizon = now + 1.0

    def tabulate() -> None:
        nonlocal ops
        for observer in ids:
            for victim in ids:
                if victim == observer:
                    continue
                trace.first_suspicion_time(observer, victim)
                trace.permanent_suspicion_time(observer, victim)
                ops += 2
            for target in trace.targets_of(observer):
                trace.suspicion_intervals(observer, target, horizon=horizon)
                trace.suspicion_intervals(observer, target, horizon=horizon)
                trace.permanent_suspicion_time(observer, target)
                ops += 3
            for i in range(5):
                trace.suspects_at(observer, horizon * i / 5.0)
                ops += 1
        for i in range(25):
            trace.false_suspicion_count_at(horizon * i / 25.0, frozenset())
            ops += 1

    elapsed = _timed(tabulate)
    bench_trace.events = ops  # type: ignore[attr-defined]
    return elapsed


bench_trace.mem_baseline = lambda n: bench_trace(n, backend="object")  # type: ignore[attr-defined]


def bench_cells(n: int) -> float:
    """One end-to-end experiment cell: run a cluster, then tabulate QoS."""
    from ..metrics import all_detection_stats, message_load, mistake_stats
    from ..sim.cluster import SimCluster, time_free_driver_factory
    from ..sim.faults import CrashFault, FaultPlan
    from ..sim.node import QueryPacing

    horizon = max(5.0, n / 15_000)
    victim = 30
    plan = FaultPlan.of(crashes=[CrashFault(victim, horizon / 3.0)])
    cluster = SimCluster(
        n=30,
        driver_factory=time_free_driver_factory(f=6, pacing=QueryPacing(grace=0.5)),
        seed=13,
        fault_plan=plan,
        start_stagger=0.5,
    )

    def cell() -> None:
        cluster.run(until=horizon)
        all_detection_stats(cluster.trace, cluster.fault_plan, cluster.membership)
        mistake_stats(cluster.trace, cluster.correct_processes(), horizon=horizon)
        message_load(cluster.trace, horizon=horizon, n=30)

    elapsed = _timed(cell)
    bench_cells.events = cluster.scheduler.events_processed  # type: ignore[attr-defined]
    return elapsed


def bench_consensus(n: int) -> float:
    """Consensus workload plane end-to-end: a multi-instance CT sequence.

    Runs the detector-generic :class:`~repro.consensus.sim_runner.
    ConsensusHarness` — an n=16 time-free cluster deciding a self-clocked
    chain of CT-◇S instances (each decision proposes the next) — then folds
    the decision ledger through :func:`~repro.metrics.consensus_stats` and
    :func:`~repro.metrics.consensus_message_load`, the read path the ``c1``
    grid scales by.  Reported events are scheduler events processed, so the
    number covers ballot fan-out, envelope routing, oracle queries and the
    decision-ledger bookkeeping together.
    """
    from ..consensus import ConsensusHarness
    from ..metrics import consensus_message_load, consensus_stats
    from ..sim.latency import LogNormalLatency

    size = 16
    horizon = max(10.0, n / 12_000)
    harness = ConsensusHarness(
        n=size,
        f=5,
        protocol="ct",
        detector="time-free",
        latency=LogNormalLatency(median=0.001, sigma=0.5),
        seed=13,
        instances=max(2, int(horizon // 2)),
        propose_at=0.5,
        instance_gap=2.0,
    )

    def run() -> None:
        result = harness.run(until=horizon)
        consensus_stats(result)
        consensus_message_load(harness.cluster.trace, horizon=horizon, n=size)

    elapsed = _timed(run)
    bench_consensus.events = harness.cluster.scheduler.events_processed  # type: ignore[attr-defined]
    return elapsed


def bench_merge(n: int) -> float:
    """Protocol-core hot path: steady-state query merging, all records stale.

    Builds one n=32 time-free detector whose ``suspected``/``mistake`` sets
    are dense (every other member has a record), then replays queries from
    all 31 peers carrying exactly those sets — the steady state of
    Algorithm 1, where every merged record is stale.  Reported events are
    the records merged, so kev/s = thousand records per second.  This is
    the workload the batched ``merge_query`` fast path exists for; its
    committed floor sits above the per-record implementation's speed, so
    reverting the batched path trips the ``bench-gate`` CI job.
    """
    from ..core.messages import Query
    from ..core.protocol import DetectorConfig, TimeFreeDetector

    size = 32
    members = frozenset(range(1, size + 1))
    detector = TimeFreeDetector(DetectorConfig.for_process(1, members, f=8))
    state = detector.state
    for pid in range(2, size // 2 + 2):
        state.suspected.add(pid, 5)
    for pid in range(size // 2 + 2, size + 1):
        state.mistakes.add(pid, 5)
    state.counter = 10
    suspected = state.suspected.snapshot()
    mistakes = state.mistakes.snapshot()
    queries = [
        Query(sender=pid, round_id=1, suspected=suspected, mistakes=mistakes)
        for pid in range(2, size + 1)
    ]
    records_per_pass = len(queries) * (len(suspected) + len(mistakes))
    iters = max(1, n // records_per_pass)

    def sweep() -> None:
        on_query = detector.on_query
        for _ in range(iters):
            for query in queries:
                on_query(query)

    elapsed = _timed(sweep)
    bench_merge.events = iters * records_per_pass  # type: ignore[attr-defined]
    return elapsed


WORKLOADS: dict[str, Callable[[int], float]] = {
    "chain": bench_chain,
    "fanout": bench_fanout,
    "churn": bench_churn,
    "batch": bench_batch,
    "cluster": bench_cluster,
    "broadcast": bench_broadcast,
    "trace-query": bench_trace_query,
    "trace": bench_trace,
    "cells": bench_cells,
    "consensus": bench_consensus,
    "merge": bench_merge,
}


def _peak_kb(fn: Callable[[int], float], events: int) -> float:
    """Peak traced allocation of one workload run, in KiB."""
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        fn(events)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024


def run_microbench(
    events: int = 200_000, only: Iterable[str] = (), mem: bool = False
) -> dict[str, Any]:
    """Run the workloads; returns the ``BENCH_MICRO.json`` payload.

    With ``mem=True`` each workload runs a second time under
    :mod:`tracemalloc` (timings come from the first, uninstrumented run) and
    its cell gains ``peak_kb``; workloads with a ``mem_baseline`` attribute
    additionally gain ``baseline_peak_kb`` and ``mem_ratio``.
    """
    wanted = list(only) or list(WORKLOADS)
    unknown = sorted(set(wanted) - set(WORKLOADS))
    if unknown:
        raise ConfigurationError(
            f"unknown workload(s) {unknown}; choose from {sorted(WORKLOADS)}"
        )
    cells = []
    for name in wanted:
        fn = WORKLOADS[name]
        # Measurement protocol: collect leftover garbage from previous
        # workloads, then keep the cyclic collector out of the timed
        # section — GC pauses landing inside a run were the dominant
        # run-to-run variance (±40% on `cells`), drowning real regressions.
        # The caller's GC state is restored, not assumed.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            elapsed = fn(events)
        finally:
            if gc_was_enabled:
                gc.enable()
        processed = getattr(fn, "events", events)
        value: dict[str, Any] = {
            "events": processed,
            "seconds": round(elapsed, 6),
            "kev_per_s": round(processed / elapsed / 1000, 1),
        }
        if mem:
            value["peak_kb"] = round(_peak_kb(fn, events), 1)
            baseline = getattr(fn, "mem_baseline", None)
            if baseline is not None:
                value["baseline_peak_kb"] = round(_peak_kb(baseline, events), 1)
                value["mem_ratio"] = round(
                    value["baseline_peak_kb"] / value["peak_kb"], 1
                )
        cells.append({"coords": {"workload": name}, "value": value})
    payload = {
        "schema": MICROBENCH_SCHEMA,
        "experiment": MICROBENCH_ID,
        "title": "sim.engine scheduler hot-path microbenchmarks",
        "params": {"events": events, "workloads": wanted, "mem": mem},
        "cells": cells,
    }
    table = microbench_table(payload)
    payload["tables"] = [
        {
            "title": table.title,
            "headers": list(table.headers),
            "rows": [list(row) for row in table.rows],
            "notes": list(table.notes),
        }
    ]
    return payload


def microbench_table(payload: dict[str, Any]) -> Table:
    """Render a microbench payload as a report table."""
    with_mem = any("peak_kb" in cell["value"] for cell in payload["cells"])
    headers = ["workload", "events", "seconds", "kev/s"]
    if with_mem:
        headers.append("peak KiB")
    table = Table(title=payload["title"], headers=headers, precision=3)
    for cell in payload["cells"]:
        value = cell["value"]
        row = [
            cell["coords"]["workload"],
            value["events"],
            value["seconds"],
            value["kev_per_s"],
        ]
        if with_mem:
            row.append(value.get("peak_kb", "-"))
        table.add_row(*row)
        if "mem_ratio" in value:
            table.add_note(
                f"{cell['coords']['workload']}: peak {value['peak_kb']} KiB vs "
                f"{value['baseline_peak_kb']} KiB for the object-backend "
                f"baseline — {value['mem_ratio']}x smaller"
            )
    table.add_note("timings are machine-dependent; artifact is for tracking, not identity")
    return table


def load_floors(path: str | Path = DEFAULT_FLOORS_PATH) -> dict[str, float]:
    """Read the committed per-workload kev/s floors."""
    floors_path = Path(path)
    try:
        payload = json.loads(floors_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"floors file not found: {floors_path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed floors file {floors_path}: {exc}") from exc
    if payload.get("schema") != FLOORS_SCHEMA:
        raise ConfigurationError(
            f"{floors_path} has schema {payload.get('schema')!r}, "
            f"expected {FLOORS_SCHEMA!r}"
        )
    floors = payload.get("floors_kev_per_s")
    if not isinstance(floors, dict) or not floors:
        raise ConfigurationError(f"{floors_path} has no floors_kev_per_s mapping")
    return {str(name): float(value) for name, value in floors.items()}


def check_floors(
    payload: dict[str, Any], floors: dict[str, float]
) -> list[str]:
    """Compare a microbench payload against kev/s floors.

    Returns human-readable failure lines, one per workload below its floor
    (empty = gate passed).  Workloads without a committed floor are
    ignored — adding a workload must not break the gate until its floor is
    recorded — but a floor naming an unknown/unrun workload fails loudly,
    so a renamed workload cannot silently lose its gate.
    """
    measured = {
        cell["coords"]["workload"]: cell["value"]["kev_per_s"]
        for cell in payload["cells"]
    }
    failures = []
    for name, floor in sorted(floors.items()):
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: floor {floor} kev/s but workload was not run")
        elif got < floor:
            failures.append(
                f"{name}: {got} kev/s below the committed floor of {floor} kev/s"
            )
    return failures


def write_microbench_artifact(out_dir: str | Path, payload: dict[str, Any]) -> Path:
    """Write ``BENCH_MICRO.json`` in the canonical artifact rendering."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / artifact_name(MICROBENCH_ID)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path
