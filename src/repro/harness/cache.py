"""Content-hash result cache for grid cells.

A cell's key is the SHA-256 of the canonical JSON of everything that
determines its result: the cache schema version, the experiment id, the
full parameter set, the cell coordinates, and the derived seed.  Any change
to any of those yields a different key, so stale hits are impossible
without hashing code (which we deliberately do not: bump
``CACHE_SCHEMA`` when a change to experiment or simulator code is meant
to invalidate old results).

Entries are one JSON file per key, sharded by the key's first two hex
digits, written atomically (temp file + ``os.replace``) so concurrent
grid runs can share a cache directory.

Eviction: paper-scale grids grow a shared cache without bound, so
:meth:`ResultCache.prune` applies age and total-size caps (oldest entries
first, by mtime — a ``get`` hit refreshes an entry's mtime so hot cells
survive size pressure).  ``repro cache prune`` is the CLI entry point.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import ConfigurationError
from .spec import canonical_json, cell_seed, params_to_dict

__all__ = ["CACHE_SCHEMA", "CacheStats", "PruneReport", "ResultCache", "cache_key"]

#: bump to invalidate every cached cell (e.g. after simulator changes that
#: alter results for identical parameters).
CACHE_SCHEMA = 1


def cache_key(exp_id: str, params: Any, coords: Mapping[str, Any], seed: int) -> str:
    payload = canonical_json(
        {
            "schema": CACHE_SCHEMA,
            "exp": exp_id,
            "params": params_to_dict(params),
            "coords": dict(coords),
            "seed": seed,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Size of a cache directory.

    ``corrupt`` is only meaningful from :meth:`ResultCache.stats` with
    ``verify=True`` (each entry parsed and key-checked); the cheap scan
    reports it as 0.
    """

    entries: int
    total_bytes: int
    corrupt: int = 0


@dataclass(frozen=True)
class PruneReport:
    """What one :meth:`ResultCache.prune` pass removed."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int


class ResultCache:
    """Directory-backed map from cell key to JSON value."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: entries that *existed* but failed to parse or verify — every
        #: corrupt read also counts as a miss (the value is recomputed),
        #: but corruption is a distinct signal: on a shared cache it means
        #: torn writes or bit rot, not a cold cache, and the end-of-run
        #: summary surfaces it instead of silently recomputing.
        self.corrupt = 0

    def key_for(self, exp_id: str, params: Any, coords: Mapping[str, Any]) -> str:
        return cache_key(exp_id, params, coords, cell_seed(exp_id, coords, params.seed))

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any | None:
        """The cached value, or None.

        Corrupt entries (present but unparseable, or recording a
        different key) read as misses *and* increment :attr:`corrupt`;
        an absent entry is a plain miss.
        """
        path = self._path(key)
        try:
            fh = path.open("r", encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            with fh:
                entry = json.load(fh)
            if entry["key"] != key:
                raise KeyError(key)
            value = entry["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self.corrupt += 1
            return None
        self.hits += 1
        self._touch(path)
        return value

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh mtime so LRU-by-mtime pruning keeps hot entries."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` (must be JSON-serialisable) atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "value": value}, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- eviction -----------------------------------------------------------
    def _entries(self) -> Iterator[tuple[Path, os.stat_result]]:
        """Every entry file with its stat (missing files skipped: racing
        prunes/writes are expected on shared caches)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    yield path, path.stat()
                except OSError:
                    continue

    def stats(self, *, verify: bool = False) -> CacheStats:
        """Entry count and total size of the cache directory.

        ``verify=True`` additionally parses every entry and checks its
        recorded key against its filename, reporting how many are
        corrupt — the shared-cache health check behind
        ``repro cache info --verify``.
        """
        entries = 0
        total = 0
        corrupt = 0
        for path, stat in self._entries():
            entries += 1
            total += stat.st_size
            if verify and not self._verify(path):
                corrupt += 1
        return CacheStats(entries=entries, total_bytes=total, corrupt=corrupt)

    @staticmethod
    def _verify(path: Path) -> bool:
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            return entry["key"] == path.stem and "value" in entry
        except (OSError, ValueError, KeyError, TypeError):
            return False

    def prune(
        self,
        *,
        max_age_seconds: float | None = None,
        max_total_bytes: int | None = None,
        now: float | None = None,
    ) -> PruneReport:
        """Evict entries by age, then oldest-first down to the size cap.

        ``max_age_seconds`` drops every entry older than the horizon
        (by mtime; reads refresh mtime).  ``max_total_bytes`` then drops
        the oldest survivors until the cache fits.  Either cap may be
        ``None`` (unlimited); passing neither is a configuration error —
        it would silently prune nothing.
        """
        if max_age_seconds is None and max_total_bytes is None:
            raise ConfigurationError("prune needs max_age_seconds and/or max_total_bytes")
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ConfigurationError(f"max_age_seconds must be >= 0, got {max_age_seconds}")
        if max_total_bytes is not None and max_total_bytes < 0:
            raise ConfigurationError(f"max_total_bytes must be >= 0, got {max_total_bytes}")
        horizon = None
        if max_age_seconds is not None:
            horizon = (now if now is not None else time.time()) - max_age_seconds
        survivors: list[tuple[float, int, Path]] = []
        removed = 0
        freed = 0
        for path, stat in self._entries():
            if horizon is not None and stat.st_mtime < horizon:
                removed += 1
                freed += stat.st_size
                self._remove(path)
            else:
                survivors.append((stat.st_mtime, stat.st_size, path))
        kept_bytes = sum(size for _mtime, size, _path in survivors)
        if max_total_bytes is not None and kept_bytes > max_total_bytes:
            survivors.sort()  # oldest first
            while survivors and kept_bytes > max_total_bytes:
                _mtime, size, path = survivors.pop(0)
                removed += 1
                freed += size
                kept_bytes -= size
                self._remove(path)
        self._drop_empty_shards()
        return PruneReport(
            removed=removed, freed_bytes=freed, kept=len(survivors), kept_bytes=kept_bytes
        )

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _drop_empty_shards(self) -> None:
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
