"""Content-hash result cache for grid cells.

A cell's key is the SHA-256 of the canonical JSON of everything that
determines its result: the cache schema version, the experiment id, the
full parameter set, the cell coordinates, and the derived seed.  Any change
to any of those yields a different key, so stale hits are impossible
without hashing code (which we deliberately do not: bump
``CACHE_SCHEMA`` when a change to experiment or simulator code is meant
to invalidate old results).

Entries are one JSON file per key, sharded by the key's first two hex
digits, written atomically (temp file + ``os.replace``) so concurrent
grid runs can share a cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from .spec import canonical_json, cell_seed, params_to_dict

__all__ = ["CACHE_SCHEMA", "ResultCache", "cache_key"]

#: bump to invalidate every cached cell (e.g. after simulator changes that
#: alter results for identical parameters).
CACHE_SCHEMA = 1


def cache_key(exp_id: str, params: Any, coords: Mapping[str, Any], seed: int) -> str:
    payload = canonical_json(
        {
            "schema": CACHE_SCHEMA,
            "exp": exp_id,
            "params": params_to_dict(params),
            "coords": dict(coords),
            "seed": seed,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed map from cell key to JSON value."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, exp_id: str, params: Any, coords: Mapping[str, Any]) -> str:
        return cache_key(exp_id, params, coords, cell_seed(exp_id, coords, params.seed))

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any | None:
        """The cached value, or None.  Corrupt entries read as misses."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry["key"] != key:
                raise KeyError(key)
            value = entry["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` (must be JSON-serialisable) atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"key": key, "value": value}, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
