"""Out-of-tree plugin loading (``REPRO_PLUGINS``).

Experiments and detectors register themselves at import time
(:func:`repro.experiments.api.register_experiment`,
:func:`repro.detectors.register_detector`), so loading a plugin is just
importing a module.  ``REPRO_PLUGINS`` names the modules to import —
comma- or colon-separated, e.g.::

    REPRO_PLUGINS=mylab.experiments,mylab.detectors repro run zz ...

:func:`load_plugins` is called by the experiment registry before any
listing or lookup, so plugin experiments appear everywhere built-ins do
(``repro experiments``, ``repro run``, ``run_all``, conformance hooks)
with no further wiring.

Distributed runs make the plugin set part of the contract: the run
manifest (:mod:`repro.harness.grid`) records the submitter's plugin list,
and a worker whose own loaded list differs is refused — a worker missing
a plugin could not evaluate its cells, and a worker with *extra*
registrations may disagree about what the grid even is.  The list is
kept sorted so comparison is order-independent.
"""

from __future__ import annotations

import importlib
import os
import re

from ..errors import ConfigurationError

__all__ = ["PLUGIN_ENV", "plugin_modules", "load_plugins"]

PLUGIN_ENV = "REPRO_PLUGINS"

_SPLIT = re.compile(r"[,:]")


def plugin_modules(value: str | None = None) -> tuple[str, ...]:
    """The plugin module names requested by ``REPRO_PLUGINS``, sorted.

    ``value`` overrides the environment (for tests and for recording a
    manifest's list).  Empty segments are ignored; duplicates collapse.
    """
    raw = os.environ.get(PLUGIN_ENV, "") if value is None else value
    return tuple(sorted({name.strip() for name in _SPLIT.split(raw) if name.strip()}))


def load_plugins(value: str | None = None) -> tuple[str, ...]:
    """Import every requested plugin module; returns the sorted name list.

    Importing an already-imported module is a no-op, so calling this on
    every registry access is cheap.  An unimportable module is a
    :class:`~repro.errors.ConfigurationError` naming the module — plugin
    typos must fail loudly, not silently shrink the experiment set.
    """
    names = plugin_modules(value)
    for name in names:
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise ConfigurationError(
                f"{PLUGIN_ENV} names module {name!r} which cannot be imported: {exc}"
            ) from exc
    return names
