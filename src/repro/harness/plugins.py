"""Out-of-tree plugin loading (``REPRO_PLUGINS`` + entry points).

Experiments and detectors register themselves at import time
(:func:`repro.experiments.api.register_experiment`,
:func:`repro.detectors.register_detector`), so loading a plugin is just
importing a module.  Two discovery sources feed :func:`load_plugins`:

* the ``REPRO_PLUGINS`` environment variable names modules to import —
  comma- or colon-separated, e.g.::

      REPRO_PLUGINS=mylab.experiments,mylab.detectors repro run zz ...

* installed distributions may advertise modules under the
  ``repro.plugins`` entry-point group (:mod:`importlib.metadata`), so a
  ``pip install``-ed plugin package registers with no environment setup::

      [project.entry-points."repro.plugins"]
      mylab = "mylab.experiments"

:func:`load_plugins` is called by the experiment registry before any
listing or lookup, so plugin experiments appear everywhere built-ins do
(``repro experiments``, ``repro run``, ``run_all``, conformance hooks)
with no further wiring.  The entry-point scan walks installed-package
metadata, so its result is cached for the process; pass ``refresh=True``
after installing something mid-process.

Distributed runs make the plugin set part of the contract: the run
manifest (:mod:`repro.harness.grid`) records the submitter's plugin list
*per source* (``{"env": [...], "entry_points": [...]}``), and a worker
whose own loaded set differs is refused — a worker missing a plugin could
not evaluate its cells, and a worker with *extra* registrations may
disagree about what the grid even is.  Lists are kept sorted so
comparison is order-independent.
"""

from __future__ import annotations

import importlib
import os
import re

from ..errors import ConfigurationError

__all__ = [
    "PLUGIN_ENV",
    "ENTRY_POINT_GROUP",
    "plugin_modules",
    "entry_point_modules",
    "plugin_sources",
    "load_plugins",
]

PLUGIN_ENV = "REPRO_PLUGINS"

#: entry-point group installed packages use to advertise plugin modules
ENTRY_POINT_GROUP = "repro.plugins"

_SPLIT = re.compile(r"[,:]")

_entry_point_cache: tuple[str, ...] | None = None


def plugin_modules(value: str | None = None) -> tuple[str, ...]:
    """The plugin module names requested by ``REPRO_PLUGINS``, sorted.

    ``value`` overrides the environment (for tests and for recording a
    manifest's list).  Empty segments are ignored; duplicates collapse.
    """
    raw = os.environ.get(PLUGIN_ENV, "") if value is None else value
    return tuple(sorted({name.strip() for name in _SPLIT.split(raw) if name.strip()}))


def _scan_entry_points() -> tuple[tuple[str, str], ...]:
    """(entry-point name, module name) pairs in the ``repro.plugins`` group.

    Split out (and monkeypatchable) so tests can inject fake entry points
    without building an installed distribution.
    """
    from importlib import metadata

    pairs = []
    for ep in metadata.entry_points(group=ENTRY_POINT_GROUP):
        # ``module:attr`` values are allowed but only the module matters —
        # registration is an import-time side effect.
        pairs.append((ep.name, ep.value.split(":", 1)[0].strip()))
    return tuple(pairs)


def entry_point_modules(*, refresh: bool = False) -> tuple[str, ...]:
    """Module names advertised under ``repro.plugins``, sorted and cached.

    The scan reads installed-distribution metadata from disk, which is far
    too slow for every registry access, so the first result is cached for
    the life of the process; ``refresh=True`` rescans.
    """
    global _entry_point_cache
    if _entry_point_cache is None or refresh:
        _entry_point_cache = tuple(
            sorted({module for _, module in _scan_entry_points() if module})
        )
    return _entry_point_cache


def plugin_sources(value: str | None = None) -> dict[str, list[str]]:
    """Both plugin sources, in the shape the grid manifest records."""
    return {
        "env": list(plugin_modules(value)),
        "entry_points": list(entry_point_modules()),
    }


def load_plugins(value: str | None = None) -> tuple[str, ...]:
    """Import every requested plugin module; returns the sorted name list.

    Covers both sources — ``REPRO_PLUGINS`` and the ``repro.plugins``
    entry-point group.  Importing an already-imported module is a no-op,
    so calling this on every registry access is cheap.  An unimportable
    module is a :class:`~repro.errors.ConfigurationError` naming the
    module and the source that requested it — plugin typos must fail
    loudly, not silently shrink the experiment set.
    """
    requested = [(name, PLUGIN_ENV) for name in plugin_modules(value)]
    requested += [
        (name, f"entry-point group {ENTRY_POINT_GROUP!r}")
        for name in entry_point_modules()
    ]
    for name, source in requested:
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise ConfigurationError(
                f"{source} names module {name!r} which cannot be imported: {exc}"
            ) from exc
    return tuple(sorted({name for name, _ in requested}))
