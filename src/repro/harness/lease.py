"""Lease ledger: per-cell work leases on a shared directory.

The distributed grid runner (:mod:`repro.harness.grid`) coordinates
workers through a **ledger** living in a directory every host can reach.
Each grid cell is one row with a lifecycle::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                  │
       └──expiry / reap───┘

A *lease* is ownership with a deadline: ``claim`` hands the lowest
claimable cell to a worker and stamps ``now + ttl``; ``renew`` (the
heartbeat) pushes the deadline forward; a lease whose deadline passes is
claimable again by anyone — that is the whole failure model.  ``done`` is
terminal and unconditional: a cell's value lives in the content-hash
:class:`~repro.harness.cache.ResultCache` before ``complete`` is called,
so marking done merely records that the value exists.

Correctness does **not** rest on leases.  Cells are pure functions of
``(params, coords, seed)`` and cache writes are atomic, so the worst
outcome of any race (two workers both concluding they hold an expired
lease) is the same cell computed twice with byte-identical results.
Leases are the efficiency mechanism that makes duplication rare, not the
safety mechanism that makes it harmless.

Two interchangeable backends:

* :class:`SqliteLedger` — one ``ledger.sqlite`` file, claims serialised
  with ``BEGIN IMMEDIATE`` transactions.  The default where SQLite's
  file locking works (local disks, most cluster filesystems).
* :class:`FileLedger` — one lease file per cell under ``leases/`` plus a
  ``done/`` marker per completed cell, claimed by atomic ``os.link`` (an
  exclusive create) and stolen by atomic ``os.replace``.  For NFS mounts
  where SQLite locking is unreliable; the steal race described above is
  possible here and benign.

:func:`open_ledger` picks the backend: whatever already exists in the
directory wins (workers joining a run must agree), otherwise the
requested or auto-probed backend creates it.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..errors import ConfigurationError

__all__ = [
    "LedgerCounts",
    "LeaseLedger",
    "SqliteLedger",
    "FileLedger",
    "open_ledger",
    "detect_backend",
]

#: default seconds a lease lives without a heartbeat
DEFAULT_TTL = 60.0


@dataclass(frozen=True)
class LedgerCounts:
    """One consistent snapshot of a ledger's cell states.

    ``leased`` counts only *live* leases (deadline in the future);
    ``expired`` are leased rows whose deadline passed — claimable, and
    what ``reap`` resets to pending explicitly.
    """

    total: int
    pending: int
    leased: int
    expired: int
    done: int

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def all_done(self) -> bool:
        return self.done == self.total


class LeaseLedger:
    """Backend-independent lease operations (see module docstring)."""

    backend = "abstract"

    def claim(
        self,
        owner: str,
        *,
        now: float | None = None,
        ttl: float = DEFAULT_TTL,
        shard: tuple[int, int] | None = None,
    ) -> int | None:
        """Lease the lowest claimable cell index, or ``None``.

        Claimable: pending, or leased with an expired deadline.  ``shard``
        = ``(k, n)`` restricts claims to indices with ``index % n == k``
        (static sharding); ``None`` claims anywhere (work stealing).
        """
        raise NotImplementedError

    def renew(self, owner: str, index: int, *, now: float | None = None,
              ttl: float = DEFAULT_TTL) -> bool:
        """Extend ``owner``'s lease on ``index``; False if no longer held."""
        raise NotImplementedError

    def complete(self, owner: str, index: int) -> None:
        """Mark ``index`` done (unconditional — see module docstring)."""
        raise NotImplementedError

    def release(self, owner: str, index: int) -> None:
        """Drop an unfinished lease so the cell is immediately claimable."""
        raise NotImplementedError

    def reap(self, *, now: float | None = None) -> int:
        """Reset expired leases to pending; returns how many were reclaimed."""
        raise NotImplementedError

    def counts(self, *, now: float | None = None) -> LedgerCounts:
        raise NotImplementedError

    def owners(self, *, now: float | None = None) -> dict[str, int]:
        """Live lease count per owner (observability for ``grid status``)."""
        raise NotImplementedError

    def done_indices(self) -> set[int]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "LeaseLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _now(now: float | None) -> float:
    return time.time() if now is None else now


# ---------------------------------------------------------------------------
# SQLite backend
# ---------------------------------------------------------------------------

_SQLITE_NAME = "ledger.sqlite"
_BUSY_TIMEOUT_MS = 30_000


class SqliteLedger(LeaseLedger):
    """Leases as rows of one SQLite table, claims serialised by the DB.

    ``BEGIN IMMEDIATE`` takes the write lock up front, so a claim's
    read-pick-update is atomic against every other process; readers
    (``counts``/``owners``) need no transaction.  One connection per
    instance — threads must open their own instance (the heartbeat
    thread in :mod:`repro.harness.grid` does).
    """

    backend = "sqlite"

    def __init__(self, root: str | os.PathLike, total: int) -> None:
        import sqlite3

        self.root = Path(root)
        self.total = total
        self._db = sqlite3.connect(
            self.root / _SQLITE_NAME, timeout=_BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,
        )
        self._db.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
        self._db.execute("BEGIN IMMEDIATE")
        try:
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS cells ("
                "  idx INTEGER PRIMARY KEY,"
                "  state TEXT NOT NULL DEFAULT 'pending',"
                "  owner TEXT,"
                "  deadline REAL,"
                "  attempts INTEGER NOT NULL DEFAULT 0)"
            )
            self._db.executemany(
                "INSERT OR IGNORE INTO cells (idx) VALUES (?)",
                ((i,) for i in range(total)),
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    def claim(self, owner, *, now=None, ttl=DEFAULT_TTL, shard=None):
        now = _now(now)
        where = "(state = 'pending' OR (state = 'leased' AND deadline < :now))"
        args = {"now": now, "owner": owner, "deadline": now + ttl}
        if shard is not None:
            k, n = shard
            where += " AND idx % :n = :k"
            args.update(n=n, k=k)
        self._db.execute("BEGIN IMMEDIATE")
        try:
            row = self._db.execute(
                f"SELECT idx FROM cells WHERE {where} ORDER BY idx LIMIT 1", args
            ).fetchone()
            if row is None:
                self._db.execute("COMMIT")
                return None
            self._db.execute(
                "UPDATE cells SET state = 'leased', owner = :owner,"
                " deadline = :deadline, attempts = attempts + 1 WHERE idx = :idx",
                {**args, "idx": row[0]},
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        return row[0]

    def renew(self, owner, index, *, now=None, ttl=DEFAULT_TTL):
        cursor = self._db.execute(
            "UPDATE cells SET deadline = ? WHERE idx = ? AND owner = ?"
            " AND state = 'leased'",
            (_now(now) + ttl, index, owner),
        )
        return cursor.rowcount == 1

    def complete(self, owner, index):
        self._db.execute(
            "UPDATE cells SET state = 'done', owner = ?, deadline = NULL"
            " WHERE idx = ?",
            (owner, index),
        )

    def release(self, owner, index):
        self._db.execute(
            "UPDATE cells SET state = 'pending', owner = NULL, deadline = NULL"
            " WHERE idx = ? AND owner = ? AND state = 'leased'",
            (index, owner),
        )

    def reap(self, *, now=None):
        cursor = self._db.execute(
            "UPDATE cells SET state = 'pending', owner = NULL, deadline = NULL"
            " WHERE state = 'leased' AND deadline < ?",
            (_now(now),),
        )
        return cursor.rowcount

    def counts(self, *, now=None):
        now = _now(now)
        pending = leased = expired = done = 0
        for state, deadline, count in self._db.execute(
            "SELECT state, deadline >= ?, COUNT(*) FROM cells"
            " GROUP BY state, deadline >= ?",
            (now, now),
        ):
            if state == "done":
                done += count
            elif state == "pending":
                pending += count
            elif deadline:
                leased += count
            else:
                expired += count
        return LedgerCounts(
            total=self.total, pending=pending, leased=leased,
            expired=expired, done=done,
        )

    def owners(self, *, now=None):
        return dict(
            self._db.execute(
                "SELECT owner, COUNT(*) FROM cells"
                " WHERE state = 'leased' AND deadline >= ? GROUP BY owner",
                (_now(now),),
            )
        )

    def done_indices(self):
        return {
            idx for (idx,) in
            self._db.execute("SELECT idx FROM cells WHERE state = 'done'")
        }

    def close(self):
        self._db.close()


# ---------------------------------------------------------------------------
# claim-file backend
# ---------------------------------------------------------------------------

_LEASE_DIR = "leases"
_DONE_DIR = "done"


class FileLedger(LeaseLedger):
    """Leases as one JSON file per cell, claimed by atomic link.

    A fresh claim writes a temp file and ``os.link``\\ s it to
    ``leases/<idx>.json`` — an exclusive create, atomic on POSIX
    filesystems including NFS (unlike ``O_EXCL`` on NFSv2).  A steal of
    an expired lease is ``os.replace``: atomic, but two stealers can both
    succeed back to back, which the module docstring explains is benign.
    ``done/<idx>`` markers are empty files, created the same way and
    never removed.
    """

    backend = "file"

    def __init__(self, root: str | os.PathLike, total: int) -> None:
        self.root = Path(root)
        self.total = total
        self._leases = self.root / _LEASE_DIR
        self._done = self.root / _DONE_DIR
        self._leases.mkdir(parents=True, exist_ok=True)
        self._done.mkdir(parents=True, exist_ok=True)
        #: indices this instance has already seen completed — done is
        #: terminal, so the set only grows and stat calls are saved.
        self._known_done: set[int] = set()

    def _lease_path(self, index: int) -> Path:
        return self._leases / f"{index}.json"

    def _done_path(self, index: int) -> Path:
        return self._done / str(index)

    def _is_done(self, index: int) -> bool:
        if index in self._known_done:
            return True
        if self._done_path(index).exists():
            self._known_done.add(index)
            return True
        return False

    def _read_lease(self, index: int) -> dict | None:
        try:
            with self._lease_path(index).open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            # Vanished (completed/reaped) or mid-write by another host:
            # treat as unreadable now; the caller just moves on.
            return None

    def _write_lease(self, index: int, owner: str, deadline: float,
                     attempts: int, *, steal: bool) -> bool:
        payload = json.dumps(
            {"owner": owner, "deadline": deadline, "attempts": attempts}
        )
        fd, tmp = tempfile.mkstemp(dir=self._leases, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            if steal:
                os.replace(tmp, self._lease_path(index))
                return True
            try:
                os.link(tmp, self._lease_path(index))
            except FileExistsError:
                return False
            return True
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def claim(self, owner, *, now=None, ttl=DEFAULT_TTL, shard=None):
        now = _now(now)
        for index in range(self.total):
            if shard is not None and index % shard[1] != shard[0]:
                continue
            if self._is_done(index):
                continue
            lease = self._read_lease(index)
            if lease is None:
                if self._write_lease(index, owner, now + ttl, 1, steal=False):
                    if self._is_done(index):
                        # Lost race: completed between our scan and link.
                        continue
                    return index
                continue  # someone else linked first
            if lease["deadline"] >= now:
                continue  # live lease
            # Expired: steal. Two stealers can both pass this point — the
            # benign duplicated-work race (results are byte-identical).
            self._write_lease(
                index, owner, now + ttl, lease.get("attempts", 0) + 1, steal=True
            )
            if self._is_done(index):
                continue
            return index
        return None

    def renew(self, owner, index, *, now=None, ttl=DEFAULT_TTL):
        lease = self._read_lease(index)
        if lease is None or lease["owner"] != owner or self._is_done(index):
            return False
        self._write_lease(
            index, owner, _now(now) + ttl, lease.get("attempts", 1), steal=True
        )
        return True

    def complete(self, owner, index):
        try:
            self._done_path(index).touch()
        except OSError:
            pass
        self._known_done.add(index)
        try:
            os.unlink(self._lease_path(index))
        except OSError:
            pass

    def release(self, owner, index):
        lease = self._read_lease(index)
        if lease is not None and lease["owner"] == owner:
            try:
                os.unlink(self._lease_path(index))
            except OSError:
                pass

    def reap(self, *, now=None):
        now = _now(now)
        reclaimed = 0
        for index in range(self.total):
            if self._is_done(index):
                continue
            lease = self._read_lease(index)
            if lease is not None and lease["deadline"] < now:
                try:
                    os.unlink(self._lease_path(index))
                except OSError:
                    continue
                reclaimed += 1
        return reclaimed

    def counts(self, *, now=None):
        now = _now(now)
        pending = leased = expired = done = 0
        for index in range(self.total):
            if self._is_done(index):
                done += 1
                continue
            lease = self._read_lease(index)
            if lease is None:
                pending += 1
            elif lease["deadline"] >= now:
                leased += 1
            else:
                expired += 1
        return LedgerCounts(
            total=self.total, pending=pending, leased=leased,
            expired=expired, done=done,
        )

    def owners(self, *, now=None):
        now = _now(now)
        tally: dict[str, int] = {}
        for index in range(self.total):
            if self._is_done(index):
                continue
            lease = self._read_lease(index)
            if lease is not None and lease["deadline"] >= now:
                tally[lease["owner"]] = tally.get(lease["owner"], 0) + 1
        return tally

    def done_indices(self):
        done = set()
        for path in self._done.iterdir():
            try:
                done.add(int(path.name))
            except ValueError:
                continue
        self._known_done |= done
        return done


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

BACKENDS = ("auto", "sqlite", "file")


def detect_backend(root: str | os.PathLike) -> str | None:
    """The backend already present in ``root``, or ``None`` if fresh."""
    root = Path(root)
    if (root / _SQLITE_NAME).exists():
        return "sqlite"
    if (root / _LEASE_DIR).is_dir() or (root / _DONE_DIR).is_dir():
        return "file"
    return None


def _sqlite_works(root: Path) -> bool:
    """Probe whether SQLite can create and lock a database under ``root``."""
    try:
        import sqlite3

        probe = root / ".sqlite-probe"
        db = sqlite3.connect(probe)
        try:
            db.execute("BEGIN IMMEDIATE")
            db.execute("CREATE TABLE IF NOT EXISTS probe (x)")
            db.execute("COMMIT")
        finally:
            db.close()
            try:
                os.unlink(probe)
            except OSError:
                pass
        return True
    except Exception:
        return False


def open_ledger(
    root: str | os.PathLike,
    total: int,
    backend: str = "auto",
    indices: Sequence[int] | None = None,
) -> LeaseLedger:
    """Open (creating if needed) the ledger in ``root``.

    An existing ledger's backend always wins — workers joining a run must
    share one ledger, so a ``backend`` argument that contradicts what is
    on disk is a :class:`~repro.errors.ConfigurationError`, not a second
    ledger.  On a fresh directory ``auto`` probes SQLite and falls back
    to the claim-file backend (the NFS-safe choice) when the probe fails.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown ledger backend {backend!r}; choose from {list(BACKENDS)}"
        )
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    existing = detect_backend(root)
    if existing is not None:
        if backend not in ("auto", existing):
            raise ConfigurationError(
                f"ledger in {root} uses the {existing!r} backend; "
                f"cannot join it with --ledger-backend {backend}"
            )
        backend = existing
    elif backend == "auto":
        backend = "sqlite" if _sqlite_works(root) else "file"
    cls = SqliteLedger if backend == "sqlite" else FileLedger
    return cls(root, total)
