"""One event-in/effects-out surface over both detector protocol styles.

The library has two core shapes: *query-response* cores
(:class:`~repro.sim.node.QueryDetectorCore` — the paper's time-free
algorithm and its partial-connectivity extension) and *timed* cores
(:class:`~repro.sim.node.TimedProtocolCore` — the heartbeat family).  The
timed interface is already a pure event-in/effects-out state machine:
``start``/``on_message``/``on_wakeup`` take the current time and return
:class:`~repro.core.effects.Effect` lists, and ``next_wakeup`` names the
next deadline the substrate must honour.  That interface is the
**unified facade**: :class:`DetectorCore` below.

:class:`QueryRoundFacade` adapts a query core (plus its
:class:`~repro.sim.node.QueryPacing`) to the same interface by running
task T1's round loop *sans-I/O*: starting a round returns the QUERY
broadcast, responses are fed through ``on_message``, and the pacing
delays (grace after quorum, idle between rounds, optional lossy-channel
retry) become ``next_wakeup`` deadlines instead of scheduler callbacks.
No timer ever produces a suspicion — deadlines only pace rounds and
retransmissions, exactly as in the driver/service implementations — so
wrapping the time-free detector in the facade keeps detection time-free.

With the facade, any substrate that can deliver messages and honour
wake-up deadlines (the simulator's :class:`~repro.sim.node.TimedDriver`,
the asyncio :class:`~repro.runtime.service.DetectorService` loop, a test
harness calling methods by hand) hosts *every* registered family through
one code path.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.effects import Broadcast, Effect
from ..core.messages import Query, Response
from ..core.omega import OmegaElector
from ..core.protocol import QueryRoundOutcome
from ..ids import ProcessId

__all__ = ["DetectorCore", "QueryRoundFacade"]


@runtime_checkable
class DetectorCore(Protocol):
    """The unified sans-I/O detector interface (event in, effects out).

    Identical to :class:`~repro.sim.node.TimedProtocolCore`; restated here
    as the registry's public facade type.  Substrate contract: call
    :meth:`start` once, route every delivered message through
    :meth:`on_message`, and call :meth:`on_wakeup` no earlier than
    :meth:`next_wakeup` (re-reading the deadline after every call —
    message handling may move it).  Returned effects must be executed
    (broadcast/send) by the substrate.
    """

    @property
    def process_id(self) -> ProcessId: ...

    def start(self, now: float) -> list[Effect]: ...

    def on_message(self, now: float, sender: ProcessId, message: object) -> list[Effect]: ...

    def on_wakeup(self, now: float) -> list[Effect]: ...

    def next_wakeup(self) -> float | None: ...

    def suspects(self) -> frozenset: ...


class QueryRoundFacade:
    """Task T1's round loop as a unified :class:`DetectorCore`.

    Wraps any :class:`~repro.sim.node.QueryDetectorCore`.  The pacing
    deadlines (``grace`` after the quorum, ``idle`` between rounds,
    optional ``retry`` rebroadcast) are exposed through ``next_wakeup``;
    the substrate decides *when* to call back, the facade decides *what*
    happens — so the adapter stays deterministic and testable without any
    scheduler.

    ``round_listeners`` receive ``(process_id, QueryRoundOutcome)`` after
    every completed round; an optional ``elector`` observes outcomes for
    Omega leader election, mirroring
    :class:`~repro.sim.node.QueryResponseDriver`.
    """

    def __init__(
        self,
        core,
        pacing=None,
        *,
        elector: OmegaElector | None = None,
    ) -> None:
        if pacing is None:
            from ..sim.node import QueryPacing

            pacing = QueryPacing()
        self.core = core
        self.pacing = pacing
        self.elector = elector
        self.round_listeners: list = []
        self.rounds_completed = 0
        self.retries_sent = 0
        self._close_at: float | None = None
        self._next_round_at: float | None = None
        self._retry_at: float | None = None
        self._current_broadcast: Broadcast | None = None

    # ------------------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self.core.process_id

    @property
    def name(self) -> str:
        return getattr(self.core, "name", type(self.core).__name__)

    def suspects(self) -> frozenset:
        return self.core.suspects()

    # -- unified interface --------------------------------------------------
    def start(self, now: float) -> list[Effect]:
        return self._begin_round(now)

    def on_message(self, now: float, sender: ProcessId, message: object) -> list[Effect]:
        if isinstance(message, Query):
            # Delegates to the core's batched T2 merge (one fused pass over
            # both record streams; allocation-free when all records are
            # stale).
            response = self.core.on_query(message)
            return [response] if response is not None else []
        if isinstance(message, Response):
            self.core.on_response(message)
            self._maybe_arm_close(now)
        return []

    def on_wakeup(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        if self._retry_at is not None and now >= self._retry_at:
            self._retry_at = None
            if (
                self.core.collecting
                and not self.core.quorum_reached()
                and self._current_broadcast is not None
            ):
                self.retries_sent += 1
                effects.append(self._current_broadcast)
                self._arm_retry(now)
        if self._close_at is not None and now >= self._close_at:
            self._close_at = None
            if self.core.collecting:
                effects.extend(self._close_round(now))
        if self._next_round_at is not None and now >= self._next_round_at:
            effects.extend(self._begin_round(now))
        return effects

    def next_wakeup(self) -> float | None:
        deadlines = [
            t for t in (self._close_at, self._next_round_at, self._retry_at) if t is not None
        ]
        return min(deadlines, default=None)

    # -- round machinery ----------------------------------------------------
    def _begin_round(self, now: float) -> list[Effect]:
        self._next_round_at = None
        broadcast = self.core.start_round()
        self._current_broadcast = broadcast
        self._arm_retry(now)
        # Degenerate quorums (n - f == 1) are satisfied by the process's
        # own response alone.
        self._maybe_arm_close(now)
        return [broadcast]

    def _close_round(self, now: float) -> list[Effect]:
        outcome: QueryRoundOutcome = self.core.finish_round()
        self.rounds_completed += 1
        if self.elector is not None:
            self.elector.observe_round(outcome)
        for listener in self.round_listeners:
            listener(self.core.process_id, outcome)
        if self.pacing.idle > 0:
            self._next_round_at = now + self.pacing.idle
            return []
        return self._begin_round(now)

    def _maybe_arm_close(self, now: float) -> None:
        if self.core.collecting and self._close_at is None and self.core.quorum_reached():
            self._retry_at = None
            self._close_at = now + self.pacing.grace

    def _arm_retry(self, now: float) -> None:
        if self.pacing.retry is not None:
            self._retry_at = now + self.pacing.retry
