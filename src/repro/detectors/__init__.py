"""``repro.detectors`` — the pluggable failure-detector registry.

The paper's point is that failure detection is an interchangeable oracle
beneath consensus; this package makes it interchangeable *in code*.  Every
detector family registers a :class:`DetectorSpec` (registry key, declared
:class:`~repro.core.classes.FDClass`, drive mode, typed params, factory)
under a string key, and every substrate — the deterministic simulator, the
asyncio runtime, the experiment grids, the ``repro`` CLI — resolves
families by key through one surface.

Quickstart::

    from repro.detectors import all_detectors, build_detector, DetectorContext

    all_detectors().keys()
    # dict_keys(['gossip', 'heartbeat', 'heartbeat-adaptive',
    #            'partial', 'phi', 'time-free'])

    ctx = DetectorContext(process_id=1, membership=frozenset({1, 2, 3}), f=1)
    built = build_detector("phi", ctx, threshold=4.0)
    core = built.unified()         # uniform event-in/effects-out facade
    effects = core.start(now=0.0)  # -> [Broadcast(Heartbeat(...))]

Sweep a simulated cluster over any family without touching experiment
code::

    from repro.detectors import sim_driver_factory
    from repro.sim.cluster import SimCluster

    cluster = SimCluster(n=10, driver_factory=sim_driver_factory("gossip", f=2))

or from the CLI: ``python -m repro run t1 --detector heartbeat --detector phi``.

New families plug in with :func:`register_detector` and are immediately
sweepable everywhere (experiments, runtime services, conformance suite).
"""

from .facade import DetectorCore, QueryRoundFacade
from .registry import (
    all_detectors,
    build_detector,
    detector_keys,
    get_detector,
    register_detector,
    sim_driver_factory,
)
from .spec import (
    PACING_PARAMS,
    BuiltDetector,
    DetectorContext,
    DetectorMode,
    DetectorSpec,
    pacing_fields,
)

__all__ = [
    "BuiltDetector",
    "DetectorContext",
    "DetectorCore",
    "DetectorMode",
    "DetectorSpec",
    "PACING_PARAMS",
    "QueryRoundFacade",
    "pacing_fields",
    "all_detectors",
    "build_detector",
    "detector_keys",
    "get_detector",
    "register_detector",
    "sim_driver_factory",
]
