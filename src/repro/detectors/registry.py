"""String-keyed plugin registry of detector families.

Mirrors the library's other registries (:mod:`repro.harness.registry` for
experiment grids, :func:`repro.core.messages.register_message` for wire
messages): a family registers a :class:`~repro.detectors.spec.DetectorSpec`
under a stable lower-case key, and every consumer — simulator clusters,
the asyncio runtime, experiment grids, the CLI's ``--detector`` axis —
resolves families by key instead of importing concrete classes.

The six built-in families (:mod:`repro.detectors.builtin`) are registered
on first lookup; external code can register additional families (e.g. a
crash-recovery or ADD-channel detector) at import time with
:func:`register_detector` and they become sweepable everywhere for free.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ConfigurationError
from .spec import BuiltDetector, DetectorContext, DetectorMode, DetectorSpec, pacing_fields

__all__ = [
    "register_detector",
    "get_detector",
    "all_detectors",
    "detector_keys",
    "build_detector",
    "sim_driver_factory",
]

_REGISTRY: dict[str, DetectorSpec] = {}


def register_detector(spec: DetectorSpec) -> DetectorSpec:
    """Register a detector family under ``spec.key``.

    Returns ``spec``, so it composes with assignment::

        SPEC = register_detector(DetectorSpec(key="mydet", ...))

    Registration is the single extension point for detectors: the sim
    driver, the runtime ``DetectorService``, the conformance battery and
    every experiment's detector axis resolve families through this
    registry by key (see ``docs/architecture.md``).  Keys are matched
    case-insensitively on lookup, so register lower-case keys.

    Re-registering the *same* spec object is a no-op (safe under repeated
    module import); a different spec under an existing key raises
    :class:`~repro.errors.ConfigurationError` — pick a new key rather
    than shadowing a built-in.
    """
    existing = _REGISTRY.get(spec.key)
    if existing is not None and existing is not spec:
        raise ConfigurationError(f"detector key {spec.key!r} is already registered")
    _REGISTRY[spec.key] = spec
    return spec


def _ensure_builtin() -> None:
    from . import builtin  # noqa: F401  (registers on import)


def get_detector(key: str) -> DetectorSpec:
    """The spec registered under ``key`` (case-insensitive)."""
    _ensure_builtin()
    spec = _REGISTRY.get(key.lower() if isinstance(key, str) else key)
    if spec is None:
        raise ConfigurationError(
            f"unknown detector kind {key!r}; registered: {sorted(_REGISTRY)}"
        )
    return spec


def all_detectors() -> dict[str, DetectorSpec]:
    """Every registered family, keyed and sorted by registry key."""
    _ensure_builtin()
    return {key: _REGISTRY[key] for key in sorted(_REGISTRY)}


def detector_keys() -> list[str]:
    return list(all_detectors())


def build_detector(
    key: str, context: DetectorContext, params: Any | None = None, /, **overrides: Any
) -> BuiltDetector:
    """Build one process's core for the family registered under ``key``."""
    return get_detector(key).build(context, params, **overrides)


# ---------------------------------------------------------------------------
# simulator integration
# ---------------------------------------------------------------------------


def sim_driver_factory(
    key: str,
    f: int,
    params: Any | None = None,
    *,
    unified: bool = False,
    **overrides: Any,
) -> Callable:
    """A :class:`~repro.sim.cluster.SimCluster` driver factory for ``key``.

    Query families are hosted on the native
    :class:`~repro.sim.node.QueryResponseDriver` (full round/trace
    fidelity: RoundRecords, Omega round observation, retry accounting);
    timed families on :class:`~repro.sim.node.TimedDriver`.  With
    ``unified=True`` every family — including query families, via
    :class:`~repro.detectors.facade.QueryRoundFacade` — is hosted on
    :class:`~repro.sim.node.TimedDriver` through the unified facade; the
    suspect-convergence behaviour is identical, only the per-round trace
    records are not emitted.
    """
    spec = get_detector(key)
    resolved = spec.make_params(params, **overrides)
    spec.check_required(resolved)

    from ..sim.node import QueryPacing, QueryResponseDriver, TimedDriver

    def factory(process, cluster):
        context = DetectorContext(
            process_id=process.pid, membership=cluster.membership, f=f
        )
        built = spec.build(context, resolved)
        if unified:
            return TimedDriver(process, built.unified())
        if spec.mode is DetectorMode.QUERY:
            pacing = QueryPacing(**pacing_fields(resolved))
            return QueryResponseDriver(process, built.core, pacing, elector=built.elector)
        return TimedDriver(process, built.core)

    return factory
