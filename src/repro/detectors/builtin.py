"""The six built-in detector families, registered with the plugin registry.

===================  =====  ======  ==========================================
key                  mode   class   mechanism / stated assumption
===================  =====  ======  ==========================================
``time-free``        query  ◇S      the paper's query-response pattern; needs
                                    the behavioral property MP (no clocks)
``partial``          query  ◇S      follow-up extension: unknown membership,
                                    1-hop queries, record flooding; needs an
                                    f-covering topology
``heartbeat``        timed  ◇P      all-to-all ``I am alive`` every Δ, fixed
                                    per-peer timeout Θ; accurate only while
                                    delays stay under Θ
``heartbeat-adaptive`` timed ◇P     textbook adaptation: each false suspicion
                                    grows the peer's timeout, so eventually-
                                    bounded delays imply eventual accuracy
``gossip``           timed  ◇P      Friedman-Tcharny heartbeat vectors flooded
                                    1-hop; works on partial topologies, still
                                    timeout-ruled
``phi``              timed  ◇P      phi-accrual (Hayashibara et al.): suspicion
                                    level from a normal fit of inter-arrival
                                    times; assumes stationary delays
===================  =====  ======  ==========================================

Each family's knobs live in a frozen params dataclass; query families carry
the ``grace``/``idle``/``retry`` pacing fields by convention (see
:class:`~repro.detectors.spec.DetectorSpec`).  Validation of knob *values*
stays in the cores themselves — the registry only validates knob names.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classes import FDClass
from ..core.omega import OmegaElector
from ..core.protocol import DetectorConfig, TimeFreeDetector
from ..errors import ConfigurationError
from .registry import register_detector
from .spec import BuiltDetector, DetectorContext, DetectorMode, DetectorSpec

__all__ = [
    "TimeFreeParams",
    "PartialParams",
    "HeartbeatParams",
    "AdaptiveHeartbeatParams",
    "GossipParams",
    "PhiParams",
]


# ---------------------------------------------------------------------------
# query families
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimeFreeParams:
    """Pacing of the paper's detector (Δ = ``grace``) plus the Omega layer."""

    grace: float = 1.0
    idle: float = 0.0
    retry: float | None = None
    with_omega: bool = False


def _build_time_free(context: DetectorContext, params: TimeFreeParams) -> BuiltDetector:
    config = DetectorConfig.for_process(context.process_id, context.membership, context.f)
    elector = None
    if params.with_omega:
        elector = OmegaElector(config)
        core = TimeFreeDetector(
            config, extra_provider=elector.payload, extra_consumer=elector.consume
        )
    else:
        core = TimeFreeDetector(config)
    return BuiltDetector(spec=TIME_FREE_SPEC, params=params, core=core, elector=elector)


TIME_FREE_SPEC = register_detector(
    DetectorSpec(
        key="time-free",
        title="time-free (async)",
        fd_class=FDClass.DIAMOND_S,
        mode=DetectorMode.QUERY,
        params_cls=TimeFreeParams,
        factory=_build_time_free,
        summary="query-response message pattern, no timers; needs behavioral property MP",
    )
)


@dataclass(frozen=True)
class PartialParams:
    """Partial-connectivity extension knobs; ``d`` is the range density."""

    d: int | None = None
    grace: float = 1.0
    idle: float = 0.0
    retry: float | None = None
    mobility: bool = True


def _build_partial(context: DetectorContext, params: PartialParams) -> BuiltDetector:
    from ..partial import PartialDetectorConfig, PartialTimeFreeDetector

    if params.d is None:
        raise ConfigurationError("partial detector needs the range density d")
    config = PartialDetectorConfig(
        process_id=context.process_id, range_density=params.d, f=context.f
    )
    core = PartialTimeFreeDetector(config, mobility=params.mobility)
    return BuiltDetector(spec=PARTIAL_SPEC, params=params, core=core)


PARTIAL_SPEC = register_detector(
    DetectorSpec(
        key="partial",
        title="time-free (partial connectivity)",
        fd_class=FDClass.DIAMOND_S,
        mode=DetectorMode.QUERY,
        params_cls=PartialParams,
        factory=_build_partial,
        summary="1-hop queries + record flooding on f-covering topologies, unknown membership",
        required=frozenset({"d"}),
    )
)


# ---------------------------------------------------------------------------
# timed families
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeartbeatParams:
    """Δ = ``period``, Θ = ``timeout``."""

    period: float = 1.0
    timeout: float = 2.0


def _build_heartbeat(context: DetectorContext, params: HeartbeatParams) -> BuiltDetector:
    from ..baselines.heartbeat import HeartbeatDetector

    core = HeartbeatDetector(
        context.process_id,
        context.membership,
        period=params.period,
        timeout=params.timeout,
    )
    return BuiltDetector(spec=HEARTBEAT_SPEC, params=params, core=core)


HEARTBEAT_SPEC = register_detector(
    DetectorSpec(
        key="heartbeat",
        title="heartbeat",
        fd_class=FDClass.DIAMOND_P,
        mode=DetectorMode.TIMED,
        params_cls=HeartbeatParams,
        factory=_build_heartbeat,
        summary="all-to-all heartbeats, fixed timeout; accurate only while delays < Θ",
    )
)


@dataclass(frozen=True)
class AdaptiveHeartbeatParams:
    """Fixed-timeout heartbeat plus the textbook ◇P timeout growth."""

    period: float = 1.0
    timeout: float = 2.0
    timeout_increment: float = 0.5


def _build_adaptive_heartbeat(
    context: DetectorContext, params: AdaptiveHeartbeatParams
) -> BuiltDetector:
    from ..baselines.heartbeat import HeartbeatDetector

    core = HeartbeatDetector(
        context.process_id,
        context.membership,
        period=params.period,
        timeout=params.timeout,
        adaptive=True,
        timeout_increment=params.timeout_increment,
    )
    return BuiltDetector(spec=ADAPTIVE_HEARTBEAT_SPEC, params=params, core=core)


ADAPTIVE_HEARTBEAT_SPEC = register_detector(
    DetectorSpec(
        key="heartbeat-adaptive",
        title="heartbeat (adaptive)",
        fd_class=FDClass.DIAMOND_P,
        mode=DetectorMode.TIMED,
        params_cls=AdaptiveHeartbeatParams,
        factory=_build_adaptive_heartbeat,
        summary="per-peer timeout grows on every false suspicion (eventual accuracy under GST)",
    )
)


@dataclass(frozen=True)
class GossipParams:
    """Friedman-Tcharny gossip heartbeat (Θ > Δ required by the core)."""

    period: float = 1.0
    timeout: float = 2.0


def _build_gossip(context: DetectorContext, params: GossipParams) -> BuiltDetector:
    from ..baselines.gossip import GossipHeartbeatDetector

    core = GossipHeartbeatDetector(
        context.process_id,
        context.membership,
        period=params.period,
        timeout=params.timeout,
    )
    return BuiltDetector(spec=GOSSIP_SPEC, params=params, core=core)


GOSSIP_SPEC = register_detector(
    DetectorSpec(
        key="gossip",
        title="gossip heartbeat (Friedman-Tcharny)",
        fd_class=FDClass.DIAMOND_P,
        mode=DetectorMode.TIMED,
        params_cls=GossipParams,
        factory=_build_gossip,
        summary="heartbeat vectors flooded 1-hop; partial-topology capable, timeout-ruled",
    )
)


@dataclass(frozen=True)
class PhiParams:
    """Accrual knobs (Hayashibara defaults; ``threshold`` 8 ≈ odds 10^-8)."""

    period: float = 1.0
    threshold: float = 8.0
    window_size: int = 100
    min_std: float = 0.05
    eval_fraction: float = 0.25


def _build_phi(context: DetectorContext, params: PhiParams) -> BuiltDetector:
    from ..baselines.phi_accrual import PhiAccrualDetector

    core = PhiAccrualDetector(
        context.process_id,
        context.membership,
        period=params.period,
        threshold=params.threshold,
        window_size=params.window_size,
        min_std=params.min_std,
        eval_fraction=params.eval_fraction,
    )
    return BuiltDetector(spec=PHI_SPEC, params=params, core=core)


PHI_SPEC = register_detector(
    DetectorSpec(
        key="phi",
        title="phi-accrual",
        fd_class=FDClass.DIAMOND_P,
        mode=DetectorMode.TIMED,
        params_cls=PhiParams,
        factory=_build_phi,
        summary="suspicion level from a normal fit of heartbeat inter-arrivals (stationary delays)",
    )
)
