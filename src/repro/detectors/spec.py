"""Declarative detector specifications for the plugin registry.

A :class:`DetectorSpec` is to a detector family what
:class:`~repro.harness.spec.ScenarioSpec` is to an experiment: the single
declarative object the rest of the system consumes.  It names the family
(``key``), declares the :class:`~repro.core.classes.FDClass` the family
implements under its stated assumption, states how the family must be
*driven* (:attr:`DetectorMode.QUERY` vs :attr:`DetectorMode.TIMED`), carries
a frozen dataclass of typed parameters, and owns the factory that builds a
sans-I/O core for one process.

Building a detector needs exactly three pieces of deployment context — the
process identity, the membership, and the crash bound ``f`` — captured by
:class:`DetectorContext` so every family's factory has one uniform
signature: ``factory(context, params) -> core``.

:meth:`BuiltDetector.unified` wraps any family behind the single
event-in/effects-out facade (see :mod:`repro.detectors.facade`): query
families get their T1 round loop adapted to the timed interface, timed
families pass through unchanged.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Callable

from ..core.classes import FDClass
from ..core.omega import OmegaElector
from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = [
    "DetectorContext",
    "DetectorMode",
    "DetectorSpec",
    "BuiltDetector",
    "PACING_PARAMS",
    "pacing_fields",
]

#: the query-family pacing convention: params every query family carries
PACING_PARAMS = ("grace", "idle", "retry")


def pacing_fields(params: Any) -> dict[str, Any]:
    """The conventional pacing knobs of query-family params, with defaults.

    The single source of truth for the ``grace``/``idle``/``retry``
    convention — used by the unified facade, the sim driver factory and
    the runtime service so the three substrates cannot drift apart.
    """
    return {
        "grace": getattr(params, "grace", 1.0),
        "idle": getattr(params, "idle", 0.0),
        "retry": getattr(params, "retry", None),
    }


class DetectorMode(enum.Enum):
    """How a family's core must be driven.

    ``QUERY`` cores speak the paper's query-response protocol
    (:class:`~repro.sim.node.QueryDetectorCore`): the substrate starts
    rounds, routes QUERY/RESPONSE messages, and closes rounds at quorum.
    ``TIMED`` cores (:class:`~repro.sim.node.TimedProtocolCore`) genuinely
    need scheduled wake-ups — the heartbeat family.
    """

    QUERY = "query"
    TIMED = "timed"


@dataclass(frozen=True)
class DetectorContext:
    """Deployment context every detector factory receives.

    ``f`` is the crash bound of the deployment; query families derive their
    quorum from it, timer families ignore it.
    """

    process_id: ProcessId
    membership: frozenset[ProcessId]
    f: int

    @property
    def n(self) -> int:
        return len(self.membership)


@dataclass
class BuiltDetector:
    """One constructed detector: the core plus optional attached services.

    ``core`` satisfies the protocol matching ``spec.mode``; ``elector`` is
    the Omega leader elector when the family was built with one (time-free
    ``with_omega=True``), whose piggyback hooks are already wired into the
    core.
    """

    spec: "DetectorSpec"
    params: Any
    core: Any
    elector: OmegaElector | None = None

    def unified(self):
        """The core behind the uniform event-in/effects-out facade.

        Timed cores already speak the facade interface and are returned
        as-is; query cores are wrapped in a
        :class:`~repro.detectors.facade.QueryRoundFacade` whose pacing is
        taken from the family params (``grace``/``idle``/``retry`` fields,
        present on every query family by convention).
        """
        if self.spec.mode is DetectorMode.TIMED:
            return self.core
        from ..sim.node import QueryPacing
        from .facade import QueryRoundFacade

        pacing = QueryPacing(**pacing_fields(self.params))
        return QueryRoundFacade(self.core, pacing, elector=self.elector)


@dataclass(frozen=True)
class DetectorSpec:
    """One pluggable detector family.

    ``key``
        Stable lower-case registry key (``"time-free"``, ``"phi"`` ...):
        what ``repro run --detector`` and :class:`DetectorSetup` name.
    ``title``
        Human-readable family name for tables and ``repro detectors``.
    ``fd_class``
        The Chandra-Toueg class the family implements *under its stated
        assumption* (see ``summary`` for the assumption).
    ``mode``
        How the core is driven (query-response vs timers).
    ``params_cls``
        Frozen dataclass of the family's typed knobs, all defaulted.
        Query families carry ``grace``/``idle``/``retry`` pacing fields by
        convention (consumed by drivers and the unified facade).
    ``factory``
        ``factory(context, params) -> BuiltDetector`` building the sans-I/O
        core for one process.
    ``summary``
        One-line description (assumption + mechanism) for docs/CLI tables.
    ``required``
        Param fields that have no usable default and must be supplied
        (non-``None``) before a core can be built — e.g. the partial
        detector's range density ``d``.  Checked eagerly by driver/service
        factories so misconfiguration fails at wiring time, not per node.
    """

    key: str
    title: str
    fd_class: FDClass
    mode: DetectorMode
    params_cls: type
    factory: Callable[[DetectorContext, Any], BuiltDetector]
    summary: str = ""
    required: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.key or self.key != self.key.lower():
            raise ConfigurationError(f"detector key must be non-empty lower-case: {self.key!r}")
        if not dataclasses.is_dataclass(self.params_cls):
            raise ConfigurationError(
                f"{self.key!r}: params_cls must be a dataclass, got {self.params_cls!r}"
            )

    # ------------------------------------------------------------------
    def param_names(self) -> frozenset[str]:
        """The family's parameter field names."""
        return frozenset(f.name for f in dataclasses.fields(self.params_cls))

    def make_params(self, params: Any | None = None, /, **overrides: Any) -> Any:
        """Typed params from defaults (or ``params``) plus ``overrides``.

        Unknown override names raise :class:`ConfigurationError` — the
        registry is strict so that a sweep over families fails loudly when
        a knob does not apply.
        """
        if params is not None and overrides:
            raise ConfigurationError("pass either a params instance or keyword overrides")
        if params is not None:
            if not isinstance(params, self.params_cls):
                raise ConfigurationError(
                    f"{self.key!r} expects {self.params_cls.__name__} params, "
                    f"got {type(params).__name__}"
                )
            return params
        unknown = sorted(set(overrides) - self.param_names())
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {unknown} for detector {self.key!r}; "
                f"valid: {sorted(self.param_names())}"
            )
        return self.params_cls(**overrides)

    def check_required(self, params: Any) -> None:
        """Raise unless every :attr:`required` field is set (non-``None``)."""
        missing = sorted(
            name for name in self.required if getattr(params, name, None) is None
        )
        if missing:
            raise ConfigurationError(
                f"detector {self.key!r} needs the parameter(s) {missing} "
                "(no usable default); see its params dataclass"
            )

    def build(
        self, context: DetectorContext, params: Any | None = None, /, **overrides: Any
    ) -> BuiltDetector:
        """Construct one process's detector core."""
        return self.factory(context, self.make_params(params, **overrides))
