"""``python -m repro`` entry point: the experiment harness CLI."""

import sys

from .harness.cli import main

sys.exit(main())
