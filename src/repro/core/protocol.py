"""The time-free query-response failure detector (the paper's Algorithm 1).

``TimeFreeDetector`` is a sans-I/O state machine.  One *query round* is:

1. :meth:`TimeFreeDetector.start_round` — emit
   ``QUERY(suspected_i, mistake_i)`` to every other process (line 6).  The
   process's own response is accounted immediately, matching the paper's
   assumption that a node receives its own query and its own response is
   always among the first ``n - f``.
2. Feed incoming :class:`~repro.core.messages.Response` messages to
   :meth:`TimeFreeDetector.on_response` until
   :meth:`TimeFreeDetector.quorum_reached` (line 7: wait until responses from
   at least ``n - f`` distinct processes).  The hosting driver may keep
   collecting *extra* responses past the quorum (the paper's evaluation adds
   a pacing delay here, which shrinks false suspicions without affecting
   correctness).
3. :meth:`TimeFreeDetector.finish_round` — every known, unsuspected process
   that failed to respond becomes suspected (lines 8-15) and the round
   counter advances (line 16).

Independently, :meth:`TimeFreeDetector.on_query` implements task T2: merge
the newer suspicion/mistake records from a received query (refuting
suspicions that name the local process) and answer with a ``RESPONSE``.

Nothing here reads a clock or sets a timer: detection is driven purely by
the message exchange pattern, which is the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import ProtocolError
from ..ids import ProcessId, validate_membership
from .classes import FailureDetector
from .effects import Broadcast, SendTo
from .messages import Query, Response
from .tags import MergeOutcome, SuspicionState

__all__ = ["DetectorConfig", "QueryRoundOutcome", "TimeFreeDetector"]

#: Optional piggyback hooks: a provider returns a JSON-safe dict attached to
#: outgoing messages; a consumer receives ``(sender, payload)`` for incoming
#: ones.  Used by :mod:`repro.core.omega`; the core protocol ignores content.
ExtraProvider = Callable[[], dict[str, Any]]
ExtraConsumer = Callable[[ProcessId, dict[str, Any]], None]


@dataclass(frozen=True)
class DetectorConfig:
    """Static configuration of a :class:`TimeFreeDetector`.

    ``membership`` is the full process set Pi (known a priori in the DSN 2003
    model) and ``f`` the maximum number of crashes, with ``f < n``.  The
    response quorum is ``n - f``.
    """

    process_id: ProcessId
    membership: frozenset[ProcessId]
    f: int

    def __post_init__(self) -> None:
        members = validate_membership(self.membership, process_id=self.process_id, f=self.f)
        object.__setattr__(self, "membership", members)
        # Membership is immutable, so the repr-sorted sweep order is computed
        # once here instead of once per finish_round (the line-9 sweep) and
        # once per service construction (the peer list).
        members_sorted = tuple(sorted(members, key=repr))
        object.__setattr__(self, "_members_sorted", members_sorted)
        object.__setattr__(
            self,
            "_peers_sorted",
            tuple(pid for pid in members_sorted if pid != self.process_id),
        )

    @property
    def n(self) -> int:
        return len(self.membership)

    @property
    def members_sorted(self) -> tuple[ProcessId, ...]:
        """The full membership, repr-sorted (cached; line 9 sweeps iterate it)."""
        return self._members_sorted  # type: ignore[attr-defined]

    @property
    def peers_sorted(self) -> tuple[ProcessId, ...]:
        """``membership - {process_id}``, repr-sorted (cached)."""
        return self._peers_sorted  # type: ignore[attr-defined]

    @property
    def quorum(self) -> int:
        """``n - f``: responses required to terminate a query (line 7)."""
        return self.n - self.f

    @classmethod
    def for_process(
        cls, process_id: ProcessId, membership: Iterable[ProcessId], f: int
    ) -> "DetectorConfig":
        return cls(process_id=process_id, membership=frozenset(membership), f=f)


@dataclass(frozen=True, slots=True)
class QueryRoundOutcome:
    """Result of one completed query round (task T1 body)."""

    round_id: int
    #: Responders in arrival order; the issuing process is always first.
    responders: tuple[ProcessId, ...]
    #: The first ``n - f`` responders — the *winning* responses of this round.
    winners: frozenset[ProcessId]
    #: Processes newly suspected at the end of this round (line 14).
    newly_suspected: tuple[ProcessId, ...]
    #: Value of ``counter_i`` after line 16.
    counter_after: int
    #: Full suspect list after the round.
    suspects_after: frozenset[ProcessId]


class TimeFreeDetector(FailureDetector):
    """Sans-I/O implementation of the paper's Algorithm 1 (classes ◇S).

    The detector must be *driven*: the substrate calls :meth:`start_round`,
    routes messages to :meth:`on_query` / :meth:`on_response`, decides when
    the round is over (at quorum, or later if pacing) and calls
    :meth:`finish_round`.  See :class:`repro.sim.node.QueryResponseDriver`
    and :class:`repro.runtime.service.DetectorService`.
    """

    def __init__(
        self,
        config: DetectorConfig,
        *,
        extra_provider: ExtraProvider | None = None,
        extra_consumer: ExtraConsumer | None = None,
    ) -> None:
        self._config = config
        self._state = SuspicionState(owner=config.process_id)
        self._extra_provider = extra_provider
        self._extra_consumer = extra_consumer
        self._round_id = 0
        self._collecting = False
        self._responders: list[ProcessId] = []
        self._responder_set: set[ProcessId] = set()
        self._rounds_completed = 0
        #: quorum is config-constant; cached off the property chain because
        #: quorum_reached runs once per received response.
        self._quorum = config.quorum
        #: last RESPONSE built by on_query, reused while peers keep querying
        #: with the same round id (they pace in lockstep, so hits dominate).
        #: Safe because Response is frozen — receivers never rely on object
        #: identity.  Only used when no piggyback provider is attached.
        self._response_cache: Response | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._config.process_id

    @property
    def config(self) -> DetectorConfig:
        return self._config

    @property
    def counter(self) -> int:
        """Current value of ``counter_i``."""
        return self._state.counter

    @property
    def round_id(self) -> int:
        """Identifier of the most recently started query round (0 = none)."""
        return self._round_id

    @property
    def rounds_completed(self) -> int:
        return self._rounds_completed

    @property
    def collecting(self) -> bool:
        """Whether a query round is currently awaiting responses."""
        return self._collecting

    @property
    def state(self) -> SuspicionState:
        """The live suspicion/mistake state (read-mostly; owned by the detector)."""
        return self._state

    def suspects(self) -> frozenset[ProcessId]:
        # Straight to the cached frozenset: this runs before/after every
        # delivered query, so every hop counts.
        return self._state.suspected.ids()

    def mistakes(self) -> frozenset[ProcessId]:
        """Processes currently recorded as previously-wrongly-suspected."""
        return self._state.mistakes.ids()

    # ------------------------------------------------------------------
    # task T1: query rounds
    # ------------------------------------------------------------------
    def start_round(self) -> Broadcast:
        """Begin a query round; returns the ``QUERY`` broadcast (line 6)."""
        if self._collecting:
            raise ProtocolError(
                f"{self.process_id!r}: round {self._round_id} is still collecting; "
                "a node issues a new query only after the previous one terminated"
            )
        self._round_id += 1
        self._collecting = True
        # The node hears its own query and its own response is always among
        # the first n - f (Section 4.1), so it is accounted immediately.
        self._responders = [self.process_id]
        self._responder_set = {self.process_id}
        query = Query(
            sender=self.process_id,
            round_id=self._round_id,
            suspected=self._state.suspected.snapshot(),
            mistakes=self._state.mistakes.snapshot(),
            extra=self._make_extra(),
        )
        return Broadcast(query)

    def on_response(self, response: Response) -> bool:
        """Account a ``RESPONSE``; returns whether it counted for this round.

        Responses to earlier (already finished) queries and duplicate
        responses are ignored — each query-response pair is uniquely
        identified by ``round_id``.

        Accounting a response never touches the suspicion state (merging
        happens on queries only) — drivers rely on this to skip their
        before/after suspect-set comparison on the response hot path.
        """
        if self._extra_consumer is not None and response.extra:
            self._extra_consumer(response.sender, response.extra_payload())
        if not self._collecting or response.round_id != self._round_id:
            return False
        if response.sender in self._responder_set:
            return False
        self._responder_set.add(response.sender)
        self._responders.append(response.sender)
        return True

    def quorum_reached(self) -> bool:
        """Line 7: at least ``n - f`` distinct responses received."""
        return self._collecting and len(self._responders) >= self._quorum

    def finish_round(self) -> QueryRoundOutcome:
        """Close the round: detect new suspicions (lines 8-15), bump counter.

        Raises :class:`ProtocolError` unless the quorum was reached — the
        protocol's wait at line 7 is blocking by design; if fewer than
        ``n - f`` processes are alive the round never terminates (the model
        guarantees at most ``f`` crashes).
        """
        if not self._collecting:
            raise ProtocolError(f"{self.process_id!r}: no round in progress")
        if not self.quorum_reached():
            raise ProtocolError(
                f"{self.process_id!r}: round {self._round_id} has "
                f"{len(self._responders)}/{self._config.quorum} responses; "
                "cannot terminate the query before the quorum (line 7)"
            )
        rec_from = self._responder_set
        winners = frozenset(self._responders[: self._quorum])
        newly: list[ProcessId] = []
        # Line 9: known processes (here: the static membership) that did not
        # respond and are not already suspected become suspected.  Iterating
        # the config's pre-sorted membership and skipping responders visits
        # exactly sorted(membership - rec_from) without a per-round sort.
        for pj in self._config.members_sorted:
            if pj in rec_from:
                continue
            result = self._state.suspect_locally(pj)
            if result.outcome is MergeOutcome.SUSPICION_ADOPTED:
                newly.append(pj)
        counter_after = self._state.end_round()
        outcome = QueryRoundOutcome(
            round_id=self._round_id,
            responders=tuple(self._responders),
            winners=winners,
            newly_suspected=tuple(newly),
            counter_after=counter_after,
            suspects_after=self.suspects(),
        )
        self._collecting = False
        self._rounds_completed += 1
        return outcome

    def abort_round(self) -> None:
        """Abandon the in-progress round without drawing conclusions.

        Not part of the paper's pseudo-code; used by the mobility driver when
        a node detaches mid-round (a moving node stops executing) and by
        orderly shutdown.
        """
        self._collecting = False
        self._responders = []
        self._responder_set = set()

    # ------------------------------------------------------------------
    # task T2: serving queries
    # ------------------------------------------------------------------
    def on_query(self, query: Query) -> SendTo | None:
        """Handle a received ``QUERY`` (lines 19-38); returns the response.

        Merging is done *before* responding, so the response acknowledges a
        state that already integrated the sender's information.
        """
        if query.sender == self.process_id:
            return None  # own broadcast echoed back; carries no new information
        if self._extra_consumer is not None and query.extra:
            self._extra_consumer(query.sender, query.extra_payload())
        # Batched T2 merge: one fused pass over both record streams,
        # allocation-free when everything is stale (the steady state — every
        # query re-ships the full sets).
        self._state.merge_query(query.suspected, query.mistakes)
        if self._extra_provider is None:
            response = self._response_cache
            if response is None or response.round_id != query.round_id:
                response = Response(sender=self.process_id, round_id=query.round_id)
                self._response_cache = response
        else:
            response = Response(
                sender=self.process_id,
                round_id=query.round_id,
                extra=self._make_extra(),
            )
        return SendTo(query.sender, response)

    # ------------------------------------------------------------------
    # piggyback plumbing
    # ------------------------------------------------------------------
    def _make_extra(self) -> tuple[tuple[str, Any], ...]:
        if self._extra_provider is None:
            return ()
        payload = self._extra_provider()
        if not payload:
            return ()
        return tuple(sorted(payload.items()))

    # NOTE: incoming piggyback payloads are consumed inline in on_query /
    # on_response — the dict is only materialised when a consumer exists AND
    # the message actually carries something, so the common case (no Omega
    # layer) costs two attribute reads per message.
