"""Eventual leader election (Omega) layered on the time-free detector.

The paper closes by noting that the query-response machinery can implement
other oracle classes; Omega — each process eventually trusts the same correct
leader — is the one consensus protocols want (it is equivalent to ◇S for
solving consensus with a majority of correct processes).

``OmegaElector`` follows the Mostéfaoui-Raynal style *accusation counter*
construction, kept time-free by reusing the query rounds:

* after each completed round, every known process absent from ``rec_from``
  is *accused* (its counter incremented) — a crashed process misses every
  subsequent round everywhere, so its accusations grow without bound;
* accusation counters are gossiped through the ``extra`` piggyback slot of
  queries and responses and merged entry-wise with ``max``, so all correct
  processes converge to identical counters;
* the leader is the process with the lexicographically smallest
  ``(accusations, id)`` pair.

Convergence to a *correct* common leader needs a strengthened message
pattern: some correct process must eventually be a winning responder for
**every** correct querier (the global variant of MP; with plain MP the
elected process is only guaranteed to be one whose accusations stabilize).
The simulator's latency bias models make either regime easy to set up, and
the F3 experiment measures the degradation when the assumption is weakened.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError
from ..ids import ProcessId
from .protocol import DetectorConfig, QueryRoundOutcome, TimeFreeDetector

__all__ = ["OmegaElector", "make_leader_detector"]

_PAYLOAD_KEY = "omega.accusations"


class OmegaElector:
    """Accusation-counter leader oracle; see module docstring.

    The elector is passive: the round driver must call
    :meth:`observe_round` with each :class:`QueryRoundOutcome`, and the
    detector must be constructed with this elector's hooks (use
    :func:`make_leader_detector`).
    """

    def __init__(self, config: DetectorConfig) -> None:
        self._config = config
        self._accusations: dict[ProcessId, int] = {pid: 0 for pid in config.membership}

    # ------------------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._config.process_id

    def accusations(self) -> dict[ProcessId, int]:
        """A copy of the current accusation counters."""
        return dict(self._accusations)

    def leader(self) -> ProcessId:
        """The currently trusted leader: argmin of ``(accusations, id)``."""
        return min(self._accusations, key=lambda pid: (self._accusations[pid], repr(pid)))

    # ------------------------------------------------------------------
    def observe_round(self, outcome: QueryRoundOutcome) -> None:
        """Accuse every process that missed this round's responder set."""
        responders = set(outcome.responders)
        for pid in self._config.membership:
            if pid not in responders:
                self._accusations[pid] += 1

    # -- piggyback hooks -------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """Provider hook: gossip the accusation counters."""
        return {_PAYLOAD_KEY: tuple(sorted(self._accusations.items(), key=lambda kv: repr(kv[0])))}

    def consume(self, sender: ProcessId, payload: Mapping[str, Any]) -> None:
        """Consumer hook: entry-wise max-merge of gossiped counters."""
        records = payload.get(_PAYLOAD_KEY)
        if records is None:
            return
        for pid, count in records:
            if pid in self._accusations and count > self._accusations[pid]:
                self._accusations[pid] = count


def make_leader_detector(
    process_id: ProcessId, membership: Iterable[ProcessId], f: int
) -> tuple[TimeFreeDetector, OmegaElector]:
    """Build a detector/elector pair wired together via the piggyback slot.

    The caller drives the detector as usual and must forward every
    :class:`QueryRoundOutcome` to ``elector.observe_round``; the simulator's
    :class:`repro.sim.node.QueryResponseDriver` does this automatically when
    given the elector.
    """
    config = DetectorConfig.for_process(process_id, membership, f)
    if config.n < 2:
        raise ConfigurationError("leader election needs at least two processes")
    elector = OmegaElector(config)
    detector = TimeFreeDetector(
        config,
        extra_provider=elector.payload,
        extra_consumer=elector.consume,
    )
    return detector, elector
