"""Wire messages and a transport-agnostic codec.

Every message the library sends — detector queries/responses, baseline
heartbeats, consensus ballots — is a frozen dataclass registered with the
codec below.  The deterministic simulator passes message objects around
directly; the UDP transport serialises them to JSON with
:func:`encode_message` / :func:`decode_message`.

The ``QUERY``/``RESPONSE`` pair implements the paper's query-response
mechanism: a query carries the sender's ``suspected`` and ``mistake`` sets
(as ``<id, counter>`` records) plus a round identifier so that each
query-response pair is uniquely identified in the system (footnote 2 of the
paper); a response echoes the round identifier so stale responses can be
discarded or counted as late extras.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Mapping, Type, TypeVar

from ..errors import TransportError
from ..ids import ProcessId

__all__ = [
    "Query",
    "Response",
    "register_message",
    "encode_message",
    "decode_message",
    "message_kind",
    "message_kind_of",
]

TaggedRecords = tuple[tuple[ProcessId, int], ...]

_REGISTRY: dict[str, type] = {}
_KIND_BY_TYPE: dict[type, str] = {}
#: cached class-name fallbacks for unregistered types (tests pass plain
#: strings through the simulated network); registering a type evicts it.
_KIND_FALLBACK: dict[type, str] = {}

M = TypeVar("M")


def register_message(kind: str) -> Callable[[Type[M]], Type[M]]:
    """Class decorator registering a frozen dataclass as a wire message.

    ``kind`` is the stable on-the-wire discriminator; it must be unique
    across the whole library (core, baselines, consensus).
    """

    def _register(cls: Type[M]) -> Type[M]:
        if not is_dataclass(cls):
            raise TypeError(f"{cls.__name__} must be a dataclass to be a wire message")
        if kind in _REGISTRY and _REGISTRY[kind] is not cls:
            raise ValueError(f"message kind {kind!r} is already registered")
        _REGISTRY[kind] = cls
        _KIND_BY_TYPE[cls] = kind
        _KIND_FALLBACK.pop(cls, None)
        return cls

    return _register


def message_kind(message: object) -> str:
    """Return the registered wire discriminator for ``message``."""
    try:
        return _KIND_BY_TYPE[type(message)]
    except KeyError:
        raise TransportError(f"{type(message).__name__} is not a registered message") from None


def message_kind_of(message: object) -> str:
    """Like :func:`message_kind` but with a cached class-name fallback.

    The simulated network labels every message for trace accounting; this
    lookup is on its per-message hot path, so unregistered types resolve to
    their class name via a dictionary hit instead of a raised-and-caught
    :class:`TransportError` per message.
    """
    cls = type(message)
    kind = _KIND_BY_TYPE.get(cls)
    if kind is not None:
        return kind
    kind = _KIND_FALLBACK.get(cls)
    if kind is None:
        kind = _KIND_FALLBACK[cls] = cls.__name__
    return kind


def encode_message(message: object) -> bytes:
    """Serialise a registered message to JSON bytes."""
    kind = message_kind(message)
    payload = {"kind": kind}
    for f in fields(message):  # type: ignore[arg-type]
        payload[f.name] = _jsonify(getattr(message, f.name))
    try:
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise TransportError(f"cannot encode {kind!r} message: {exc}") from exc


def decode_message(data: bytes) -> Any:
    """Deserialise JSON bytes previously produced by :func:`encode_message`."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed message payload: {exc}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise TransportError("message payload lacks a 'kind' discriminator")
    kind = payload.pop("kind")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise TransportError(f"unknown message kind {kind!r}")
    kwargs = {}
    for f in fields(cls):
        if f.name not in payload:
            raise TransportError(f"{kind!r} message is missing field {f.name!r}")
        kwargs[f.name] = _dejsonify(payload[f.name])
    return cls(**kwargs)


def _jsonify(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted((_jsonify(item) for item in value), key=repr)}
    if isinstance(value, Mapping):
        return {"__mapping__": [[_jsonify(k), _jsonify(v)] for k, v in value.items()]}
    return value


def _dejsonify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_dejsonify(item) for item in value)
    if isinstance(value, dict):
        if "__frozenset__" in value:
            return frozenset(_dejsonify(item) for item in value["__frozenset__"])
        if "__mapping__" in value:
            return {
                _dejsonify(k): _dejsonify(v) for k, v in value["__mapping__"]
            }
        return value
    return value


@register_message("fd.query")
@dataclass(frozen=True, slots=True)
class Query:
    """``QUERY(suspected_i, mistake_i)`` — line 6 of Algorithm 1.

    ``round_id`` uniquely pairs this query with its responses.  ``extra``
    is an optional piggyback slot used by layered services (e.g. the Omega
    leader elector gossips accusation counters through it); the core
    protocol ignores it.
    """

    sender: ProcessId
    round_id: int
    suspected: TaggedRecords
    mistakes: TaggedRecords
    extra: tuple[tuple[str, Any], ...] = ()

    def extra_payload(self) -> dict[str, Any]:
        """The piggyback slot as a dictionary (possibly empty)."""
        return dict(self.extra)


@register_message("fd.response")
@dataclass(frozen=True, slots=True)
class Response:
    """``RESPONSE`` — line 38 of Algorithm 1; echoes the query's round id."""

    sender: ProcessId
    round_id: int
    extra: tuple[tuple[str, Any], ...] = ()

    def extra_payload(self) -> dict[str, Any]:
        return dict(self.extra)
