"""Effects returned by sans-I/O protocol cores.

Protocol state machines never touch sockets, schedulers, or clocks.  Their
handlers return *effects* — values describing messages to transmit — and the
hosting substrate (the deterministic simulator or the asyncio runtime)
executes them.  This keeps every protocol testable in isolation and
byte-identical across substrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from ..ids import ProcessId

__all__ = ["Broadcast", "SendTo", "Effect"]


@dataclass(frozen=True, slots=True)
class Broadcast:
    """Transmit ``message`` to every (currently reachable) neighbor."""

    message: Any


@dataclass(frozen=True, slots=True)
class SendTo:
    """Transmit ``message`` to the single process ``destination``."""

    destination: ProcessId
    message: Any


Effect = Union[Broadcast, SendTo]
