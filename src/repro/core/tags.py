"""Counter-tagged suspicion and mistake bookkeeping.

The protocol tags every piece of information ("process ``x`` is suspected" /
"suspecting ``x`` was a mistake") with the value of the emitting process's
round counter.  A receiver only adopts information that is *newer* than what
it already holds, which prevents stale suspicions or stale refutations from
circulating forever.  The exact freshness rules (from Algorithm 1 of the
paper) are:

* a received **suspicion** ``<x, c>`` is adopted iff ``x`` is unknown to both
  local sets, or the locally-stored tag for ``x`` is **strictly smaller**
  than ``c``;
* a received **mistake** ``<x, c>`` is adopted iff ``x`` is unknown, or the
  locally-stored tag is **smaller or equal** to ``c`` — i.e. on a tie between
  a suspicion and a mistake, *the mistake wins* (the paper gives precedence
  to mistakes on equal counters);
* a process that sees **itself** suspected never adopts the suspicion:
  it *refutes* it by advancing its counter past the accusation tag and
  recording a mistake about itself.

:class:`TaggedSet` is the ``Add``-semantics set of ``<id, counter>`` pairs
used for both ``suspected_i`` and ``mistake_i``; :class:`SuspicionState`
bundles the two sets with the round counter and implements the merge rules so
that every detector variant (full-membership core, partial-connectivity
extension) shares one audited implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..ids import ProcessId

__all__ = ["TaggedSet", "MergeOutcome", "MergeResult", "SuspicionState"]


class TaggedSet:
    """A set of ``<process id, counter tag>`` records with ``Add`` semantics.

    ``Add(set, <id, counter>)`` in the paper *replaces* any existing record
    for ``id``; a ``TaggedSet`` therefore behaves as a mapping from process
    id to its most recently stored tag.
    """

    __slots__ = ("_tags",)

    def __init__(self, items: Mapping[ProcessId, int] | Iterable[tuple[ProcessId, int]] = ()):
        if isinstance(items, Mapping):
            self._tags: dict[ProcessId, int] = dict(items)
        else:
            self._tags = {pid: tag for pid, tag in items}

    # -- mutation ---------------------------------------------------------
    def add(self, pid: ProcessId, tag: int) -> None:
        """Store ``<pid, tag>``, replacing any existing record for ``pid``."""
        self._tags[pid] = tag

    def discard(self, pid: ProcessId) -> bool:
        """Remove the record for ``pid`` if present; return whether it was."""
        return self._tags.pop(pid, None) is not None

    def clear(self) -> None:
        self._tags.clear()

    # -- queries ----------------------------------------------------------
    def tag_of(self, pid: ProcessId) -> int | None:
        """Return the stored tag for ``pid`` or ``None``."""
        return self._tags.get(pid)

    def ids(self) -> frozenset[ProcessId]:
        """The set of process ids with a record."""
        return frozenset(self._tags)

    def snapshot(self) -> tuple[tuple[ProcessId, int], ...]:
        """An immutable copy suitable for embedding in a wire message."""
        return tuple(sorted(self._tags.items(), key=lambda item: repr(item[0])))

    def copy(self) -> "TaggedSet":
        return TaggedSet(self._tags)

    def max_tag(self) -> int | None:
        """The largest stored tag, or ``None`` when empty."""
        return max(self._tags.values(), default=None)

    # -- dunder -----------------------------------------------------------
    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._tags

    def __iter__(self) -> Iterator[tuple[ProcessId, int]]:
        return iter(sorted(self._tags.items(), key=lambda item: repr(item[0])))

    def __len__(self) -> int:
        return len(self._tags)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaggedSet):
            return self._tags == other._tags
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"<{pid!r},{tag}>" for pid, tag in self)
        return f"TaggedSet({{{inner}}})"


class MergeOutcome(enum.Enum):
    """How a received ``<id, counter>`` record affected the local state."""

    #: The record was stale (an equal-or-newer record is already held).
    IGNORED = "ignored"
    #: A remote suspicion was adopted into ``suspected``.
    SUSPICION_ADOPTED = "suspicion_adopted"
    #: A remote suspicion named *us*; we refuted it with a fresh mistake.
    SELF_REFUTED = "self_refuted"
    #: A remote mistake was adopted into ``mistakes``.
    MISTAKE_ADOPTED = "mistake_adopted"


@dataclass(frozen=True, slots=True)
class MergeResult:
    """Outcome of merging one received record into a :class:`SuspicionState`."""

    subject: ProcessId
    outcome: MergeOutcome
    #: Tag now stored for ``subject`` (``None`` when the record was ignored).
    stored_tag: int | None = None


@dataclass
class SuspicionState:
    """``suspected_i`` + ``mistake_i`` + ``counter_i`` with the merge rules.

    The class is substrate-agnostic and purely in-memory; detectors own one
    instance and drive it from their message handlers.
    """

    owner: ProcessId
    suspected: TaggedSet = field(default_factory=TaggedSet)
    mistakes: TaggedSet = field(default_factory=TaggedSet)
    counter: int = 0

    # -- local suspicion (task T1, lines 9-15) -----------------------------
    def suspect_locally(self, pid: ProcessId) -> MergeResult:
        """Suspect ``pid`` because it missed our response quorum.

        Implements lines 9-15 of Algorithm 1: only applies to processes not
        already suspected; an existing mistake record is consumed and the
        counter advanced past its tag so that the new suspicion supersedes
        the old refutation.
        """
        if pid == self.owner:
            raise ValueError("a process never suspects itself locally")
        if pid in self.suspected:
            return MergeResult(pid, MergeOutcome.IGNORED, self.suspected.tag_of(pid))
        mistake_tag = self.mistakes.tag_of(pid)
        if mistake_tag is not None:
            self.counter = max(self.counter, mistake_tag + 1)
            self.mistakes.discard(pid)
        self.suspected.add(pid, self.counter)
        return MergeResult(pid, MergeOutcome.SUSPICION_ADOPTED, self.counter)

    def end_round(self) -> int:
        """Increment the round counter (line 16) and return its new value."""
        self.counter += 1
        return self.counter

    # -- remote information (task T2) --------------------------------------
    def merge_remote_suspicion(self, pid: ProcessId, tag: int) -> MergeResult:
        """Merge one record of a received ``suspected_j`` set (lines 21-31)."""
        if not self._suspicion_is_newer(pid, tag):
            return MergeResult(pid, MergeOutcome.IGNORED, self._known_tag(pid))
        if pid == self.owner:
            # Lines 23-25: we are wrongly suspected; refute with a mistake
            # tagged past the accusation.
            self.counter = max(self.counter, tag + 1)
            self.mistakes.add(self.owner, self.counter)
            self.suspected.discard(self.owner)
            return MergeResult(pid, MergeOutcome.SELF_REFUTED, self.counter)
        # Lines 27-28.
        self.suspected.add(pid, tag)
        self.mistakes.discard(pid)
        return MergeResult(pid, MergeOutcome.SUSPICION_ADOPTED, tag)

    def merge_remote_mistake(self, pid: ProcessId, tag: int) -> MergeResult:
        """Merge one record of a received ``mistake_j`` set (lines 32-37)."""
        if not self._mistake_is_newer(pid, tag):
            return MergeResult(pid, MergeOutcome.IGNORED, self._known_tag(pid))
        # Lines 34-35.
        self.mistakes.add(pid, tag)
        self.suspected.discard(pid)
        return MergeResult(pid, MergeOutcome.MISTAKE_ADOPTED, tag)

    # -- freshness predicates ----------------------------------------------
    def _known_tag(self, pid: ProcessId) -> int | None:
        suspected_tag = self.suspected.tag_of(pid)
        if suspected_tag is not None:
            return suspected_tag
        return self.mistakes.tag_of(pid)

    def _suspicion_is_newer(self, pid: ProcessId, tag: int) -> bool:
        """Line 22: unknown, or strictly newer than the stored tag."""
        known = self._known_tag(pid)
        return known is None or known < tag

    def _mistake_is_newer(self, pid: ProcessId, tag: int) -> bool:
        """Line 33: unknown, or newer-or-equal — with one refinement.

        The ``<=`` in line 33 lets a mistake displace a *suspicion* carrying
        the same counter (ties go to the mistake, as the proof stipulates).
        Read literally it would also re-adopt a byte-identical mistake
        record, but Lemma 4's proof explicitly relies on a repeated mistake
        *failing* the predicate (otherwise the mobility rule at lines 36-38
        would re-evict a reconnected node forever).  So: ties beat
        suspicions, but an equal-or-older tag against an existing *mistake*
        is stale.
        """
        suspected_tag = self.suspected.tag_of(pid)
        if suspected_tag is not None:
            return suspected_tag <= tag
        mistake_tag = self.mistakes.tag_of(pid)
        if mistake_tag is not None:
            return mistake_tag < tag
        return True

    # -- views --------------------------------------------------------------
    def suspects(self) -> frozenset[ProcessId]:
        """The failure-detector output: ids currently suspected."""
        return self.suspected.ids()

    def invariant_violations(self) -> list[str]:
        """Internal invariants; an empty list means the state is healthy.

        * a process never holds *itself* in its ``suspected`` set (it refutes
          instead),
        * ``suspected`` and ``mistakes`` are disjoint,
        * no stored tag exceeds the local counter once the counter has been
          advanced past it (tags are only ever produced at-or-below the
          issuing process's counter).
        """
        problems: list[str] = []
        if self.owner in self.suspected:
            problems.append(f"{self.owner!r} suspects itself")
        overlap = self.suspected.ids() & self.mistakes.ids()
        if overlap:
            problems.append(f"suspected/mistakes overlap: {sorted(overlap, key=repr)}")
        return problems
