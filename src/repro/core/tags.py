"""Counter-tagged suspicion and mistake bookkeeping.

The protocol tags every piece of information ("process ``x`` is suspected" /
"suspecting ``x`` was a mistake") with the value of the emitting process's
round counter.  A receiver only adopts information that is *newer* than what
it already holds, which prevents stale suspicions or stale refutations from
circulating forever.  The exact freshness rules (from Algorithm 1 of the
paper) are:

* a received **suspicion** ``<x, c>`` is adopted iff ``x`` is unknown to both
  local sets, or the locally-stored tag for ``x`` is **strictly smaller**
  than ``c``;
* a received **mistake** ``<x, c>`` is adopted iff ``x`` is unknown, or the
  locally-stored tag is **smaller or equal** to ``c`` — i.e. on a tie between
  a suspicion and a mistake, *the mistake wins* (the paper gives precedence
  to mistakes on equal counters);
* a process that sees **itself** suspected never adopts the suspicion:
  it *refutes* it by advancing its counter past the accusation tag and
  recording a mistake about itself.

:class:`TaggedSet` is the ``Add``-semantics set of ``<id, counter>`` pairs
used for both ``suspected_i`` and ``mistake_i``; :class:`SuspicionState`
bundles the two sets with the round counter and implements the merge rules so
that every detector variant (full-membership core, partial-connectivity
extension) shares one audited implementation.

Two merge surfaces exist on :class:`SuspicionState`:

* the **per-record** methods (:meth:`~SuspicionState.merge_remote_suspicion`
  / :meth:`~SuspicionState.merge_remote_mistake`) return a
  :class:`MergeResult` per record — the audited reference implementation,
  kept deliberately simple and property-tested as the oracle;
* the **batched** entry points (:meth:`~SuspicionState.merge_query` and the
  :meth:`~SuspicionState.merge_remote_suspicions` /
  :meth:`~SuspicionState.merge_remote_mistakes` conveniences) process a
  whole received record stream in one fused pass and return one compact
  :class:`MergeDelta`.  Algorithm 1 re-ships the *full* sets on every query,
  so in steady state nearly every record is stale; the batched stale path is
  dict lookups only and returns the :data:`EMPTY_DELTA` singleton — zero
  :class:`MergeResult` (or any other) allocations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..ids import ProcessId

__all__ = [
    "TaggedSet",
    "MergeOutcome",
    "MergeResult",
    "MergeDelta",
    "EMPTY_DELTA",
    "SuspicionState",
]

_MISSING = object()


def _record_key(item: tuple[ProcessId, int]) -> str:
    return repr(item[0])


class TaggedSet:
    """A set of ``<process id, counter tag>`` records with ``Add`` semantics.

    ``Add(set, <id, counter>)`` in the paper *replaces* any existing record
    for ``id``; a ``TaggedSet`` therefore behaves as a mapping from process
    id to its most recently stored tag.

    The repr-sorted :meth:`snapshot` tuple and the :meth:`ids` frozenset are
    cached and invalidated by a :attr:`version` counter that every effective
    mutation bumps — ``start_round`` embeds a snapshot in each outgoing
    query, and in steady state (no suspicion churn) the cached tuple is
    reused round after round instead of being re-sorted.
    """

    __slots__ = (
        "_tags",
        "_version",
        "_snapshot",
        "_snapshot_version",
        "_ids",
        "_ids_version",
    )

    def __init__(self, items: Mapping[ProcessId, int] | Iterable[tuple[ProcessId, int]] = ()):
        if isinstance(items, Mapping):
            self._tags: dict[ProcessId, int] = dict(items)
        else:
            self._tags = {pid: tag for pid, tag in items}
        self._version = 0
        self._snapshot: tuple[tuple[ProcessId, int], ...] | None = None
        self._snapshot_version = -1
        self._ids: frozenset[ProcessId] | None = None
        self._ids_version = -1

    # -- mutation ---------------------------------------------------------
    def add(self, pid: ProcessId, tag: int) -> None:
        """Store ``<pid, tag>``, replacing any existing record for ``pid``.

        Re-adding the identical record is not a mutation: the caches stay
        valid and :attr:`version` does not move.
        """
        tags = self._tags
        if tags.get(pid, _MISSING) != tag:
            tags[pid] = tag
            self._version += 1

    def discard(self, pid: ProcessId) -> bool:
        """Remove the record for ``pid`` if present; return whether it was."""
        if self._tags.pop(pid, _MISSING) is not _MISSING:
            self._version += 1
            return True
        return False

    def clear(self) -> None:
        if self._tags:
            self._tags.clear()
            self._version += 1

    # -- queries ----------------------------------------------------------
    @property
    def version(self) -> int:
        """Bumped by every effective mutation; equal versions ⇒ equal content."""
        return self._version

    def tag_of(self, pid: ProcessId) -> int | None:
        """Return the stored tag for ``pid`` or ``None``."""
        return self._tags.get(pid)

    def ids(self) -> frozenset[ProcessId]:
        """The set of process ids with a record (cached between mutations)."""
        if self._ids_version != self._version:
            self._ids = frozenset(self._tags)
            self._ids_version = self._version
        return self._ids  # type: ignore[return-value]

    def snapshot(self) -> tuple[tuple[ProcessId, int], ...]:
        """An immutable repr-sorted copy suitable for embedding in a wire
        message (cached between mutations)."""
        if self._snapshot_version != self._version:
            self._snapshot = tuple(sorted(self._tags.items(), key=_record_key))
            self._snapshot_version = self._version
        return self._snapshot  # type: ignore[return-value]

    def copy(self) -> "TaggedSet":
        return TaggedSet(self._tags)

    def max_tag(self) -> int | None:
        """The largest stored tag, or ``None`` when empty."""
        return max(self._tags.values(), default=None)

    # -- dunder -----------------------------------------------------------
    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._tags

    def __iter__(self) -> Iterator[tuple[ProcessId, int]]:
        return iter(self.snapshot())

    def __len__(self) -> int:
        return len(self._tags)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaggedSet):
            return self._tags == other._tags
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"<{pid!r},{tag}>" for pid, tag in self)
        return f"TaggedSet({{{inner}}})"


class MergeOutcome(enum.Enum):
    """How a received ``<id, counter>`` record affected the local state."""

    #: The record was stale (an equal-or-newer record is already held).
    IGNORED = "ignored"
    #: A remote suspicion was adopted into ``suspected``.
    SUSPICION_ADOPTED = "suspicion_adopted"
    #: A remote suspicion named *us*; we refuted it with a fresh mistake.
    SELF_REFUTED = "self_refuted"
    #: A remote mistake was adopted into ``mistakes``.
    MISTAKE_ADOPTED = "mistake_adopted"


@dataclass(frozen=True, slots=True)
class MergeResult:
    """Outcome of merging one received record into a :class:`SuspicionState`."""

    subject: ProcessId
    outcome: MergeOutcome
    #: Tag now stored for ``subject`` (``None`` when the record was ignored).
    stored_tag: int | None = None


@dataclass(frozen=True, slots=True)
class MergeDelta:
    """Compact outcome of a *batched* merge: what changed, not per-record.

    ``suspicions_adopted`` / ``mistakes_adopted`` list the subjects whose
    records were adopted, in record order (duplicates possible when one
    stream carries several fresh records for the same subject, mirroring the
    per-record oracle).  ``self_refuted`` reports that at least one received
    suspicion named the local process and was refuted.  An all-stale batch
    returns the shared :data:`EMPTY_DELTA` instance, so steady-state merging
    allocates nothing.
    """

    suspicions_adopted: tuple[ProcessId, ...] = ()
    mistakes_adopted: tuple[ProcessId, ...] = ()
    self_refuted: bool = False

    def __bool__(self) -> bool:
        return bool(
            self.suspicions_adopted or self.mistakes_adopted or self.self_refuted
        )


#: Singleton returned by the batched merges when every record was stale.
EMPTY_DELTA = MergeDelta()


@dataclass
class SuspicionState:
    """``suspected_i`` + ``mistake_i`` + ``counter_i`` with the merge rules.

    The class is substrate-agnostic and purely in-memory; detectors own one
    instance and drive it from their message handlers.
    """

    owner: ProcessId
    suspected: TaggedSet = field(default_factory=TaggedSet)
    mistakes: TaggedSet = field(default_factory=TaggedSet)
    counter: int = 0

    # -- local suspicion (task T1, lines 9-15) -----------------------------
    def suspect_locally(self, pid: ProcessId) -> MergeResult:
        """Suspect ``pid`` because it missed our response quorum.

        Implements lines 9-15 of Algorithm 1: only applies to processes not
        already suspected; an existing mistake record is consumed and the
        counter advanced past its tag so that the new suspicion supersedes
        the old refutation.
        """
        if pid == self.owner:
            raise ValueError("a process never suspects itself locally")
        if pid in self.suspected:
            return MergeResult(pid, MergeOutcome.IGNORED, self.suspected.tag_of(pid))
        mistake_tag = self.mistakes.tag_of(pid)
        if mistake_tag is not None:
            self.counter = max(self.counter, mistake_tag + 1)
            self.mistakes.discard(pid)
        self.suspected.add(pid, self.counter)
        return MergeResult(pid, MergeOutcome.SUSPICION_ADOPTED, self.counter)

    def end_round(self) -> int:
        """Increment the round counter (line 16) and return its new value."""
        self.counter += 1
        return self.counter

    # -- remote information, per record (task T2; the audited oracle) -------
    def merge_remote_suspicion(self, pid: ProcessId, tag: int) -> MergeResult:
        """Merge one record of a received ``suspected_j`` set (lines 21-31)."""
        if not self._suspicion_is_newer(pid, tag):
            return MergeResult(pid, MergeOutcome.IGNORED, self._known_tag(pid))
        if pid == self.owner:
            # Lines 23-25: we are wrongly suspected; refute with a mistake
            # tagged past the accusation.
            self.counter = max(self.counter, tag + 1)
            self.mistakes.add(self.owner, self.counter)
            self.suspected.discard(self.owner)
            return MergeResult(pid, MergeOutcome.SELF_REFUTED, self.counter)
        # Lines 27-28.
        self.suspected.add(pid, tag)
        self.mistakes.discard(pid)
        return MergeResult(pid, MergeOutcome.SUSPICION_ADOPTED, tag)

    def merge_remote_mistake(self, pid: ProcessId, tag: int) -> MergeResult:
        """Merge one record of a received ``mistake_j`` set (lines 32-37)."""
        if not self._mistake_is_newer(pid, tag):
            return MergeResult(pid, MergeOutcome.IGNORED, self._known_tag(pid))
        # Lines 34-35.
        self.mistakes.add(pid, tag)
        self.suspected.discard(pid)
        return MergeResult(pid, MergeOutcome.MISTAKE_ADOPTED, tag)

    # -- remote information, batched (task T2; the hot path) ----------------
    def merge_query(
        self,
        suspected: Iterable[tuple[ProcessId, int]],
        mistakes: Iterable[tuple[ProcessId, int]],
    ) -> MergeDelta:
        """Merge a full received ``QUERY`` payload in one fused pass.

        Record-for-record equivalent to calling
        :meth:`merge_remote_suspicion` for each ``suspected`` record and then
        :meth:`merge_remote_mistake` for each ``mistakes`` record (the
        property suite pins this against the oracle).  The stale fast path —
        the steady state, since every query re-ships the full sets — does
        dict lookups only and returns :data:`EMPTY_DELTA` without allocating
        a single result object.
        """
        sus = self.suspected
        mis = self.mistakes
        sus_tags = sus._tags
        mis_tags = mis._tags
        owner = self.owner
        s_adopted: list[ProcessId] | None = None
        m_adopted: list[ProcessId] | None = None
        refuted = False
        for pid, tag in suspected:
            # Line 22: adopt iff unknown or strictly newer than the stored
            # tag (suspicion record wins the lookup when both exist — the
            # sets are disjoint, so at most one holds pid).
            known = sus_tags.get(pid)
            if known is None:
                known = mis_tags.get(pid)
            if known is not None and known >= tag:
                continue  # stale — the no-allocation fast path
            if pid == owner:
                # Lines 23-25: refute, counter past the accusation.
                if tag + 1 > self.counter:
                    self.counter = tag + 1
                mis.add(owner, self.counter)
                sus.discard(owner)
                refuted = True
            else:
                # Lines 27-28.
                sus.add(pid, tag)
                mis.discard(pid)
                if s_adopted is None:
                    s_adopted = [pid]
                else:
                    s_adopted.append(pid)
        for pid, tag in mistakes:
            # Line 33 with the Lemma 4 refinement (see _mistake_is_newer):
            # a tie beats a *suspicion* but not an existing mistake.
            known = sus_tags.get(pid)
            if known is not None:
                if known > tag:
                    continue
            else:
                known = mis_tags.get(pid)
                if known is not None and known >= tag:
                    continue
            # Lines 34-35.
            mis.add(pid, tag)
            sus.discard(pid)
            if m_adopted is None:
                m_adopted = [pid]
            else:
                m_adopted.append(pid)
        if s_adopted is None and m_adopted is None and not refuted:
            return EMPTY_DELTA
        return MergeDelta(
            tuple(s_adopted) if s_adopted is not None else (),
            tuple(m_adopted) if m_adopted is not None else (),
            refuted,
        )

    def merge_remote_suspicions(
        self, records: Iterable[tuple[ProcessId, int]]
    ) -> MergeDelta:
        """Batched :meth:`merge_remote_suspicion` over a record stream."""
        return self.merge_query(records, ())

    def merge_remote_mistakes(
        self, records: Iterable[tuple[ProcessId, int]]
    ) -> MergeDelta:
        """Batched :meth:`merge_remote_mistake` over a record stream."""
        return self.merge_query((), records)

    # -- freshness predicates ----------------------------------------------
    def _known_tag(self, pid: ProcessId) -> int | None:
        suspected_tag = self.suspected.tag_of(pid)
        if suspected_tag is not None:
            return suspected_tag
        return self.mistakes.tag_of(pid)

    def _suspicion_is_newer(self, pid: ProcessId, tag: int) -> bool:
        """Line 22: unknown, or strictly newer than the stored tag."""
        known = self._known_tag(pid)
        return known is None or known < tag

    def _mistake_is_newer(self, pid: ProcessId, tag: int) -> bool:
        """Line 33: unknown, or newer-or-equal — with one refinement.

        The ``<=`` in line 33 lets a mistake displace a *suspicion* carrying
        the same counter (ties go to the mistake, as the proof stipulates).
        Read literally it would also re-adopt a byte-identical mistake
        record, but Lemma 4's proof explicitly relies on a repeated mistake
        *failing* the predicate (otherwise the mobility rule at lines 36-38
        would re-evict a reconnected node forever).  So: ties beat
        suspicions, but an equal-or-older tag against an existing *mistake*
        is stale.
        """
        suspected_tag = self.suspected.tag_of(pid)
        if suspected_tag is not None:
            return suspected_tag <= tag
        mistake_tag = self.mistakes.tag_of(pid)
        if mistake_tag is not None:
            return mistake_tag < tag
        return True

    # -- views --------------------------------------------------------------
    def suspects(self) -> frozenset[ProcessId]:
        """The failure-detector output: ids currently suspected."""
        return self.suspected.ids()

    def invariant_violations(self) -> list[str]:
        """Internal invariants; an empty list means the state is healthy.

        * a process never holds *itself* in its ``suspected`` set (it refutes
          instead),
        * ``suspected`` and ``mistakes`` are disjoint,
        * the mistake record about the *local* process never carries a tag
          above the local counter.  Every mistake record about ``p_i`` in
          the whole system originates from ``p_i``'s own refutation (lines
          23-25), which tags it with ``counter_i`` at that instant — and the
          counter never decreases — so a self-record tag ahead of the
          counter means the counter regressed or a forged record was
          adopted.  (Tags about *other* processes may legitimately exceed
          the local counter: they were issued against the remote process's
          counter.)
        """
        problems: list[str] = []
        if self.owner in self.suspected:
            problems.append(f"{self.owner!r} suspects itself")
        overlap = self.suspected.ids() & self.mistakes.ids()
        if overlap:
            problems.append(f"suspected/mistakes overlap: {sorted(overlap, key=repr)}")
        self_mistake = self.mistakes.tag_of(self.owner)
        if self_mistake is not None and self_mistake > self.counter:
            problems.append(
                f"self-mistake tag {self_mistake} exceeds counter {self.counter}"
            )
        return problems
