"""Oracles for the behavioral properties underpinning the proof.

The time-free algorithm is correct *conditionally*: completeness needs every
process to interact at least once (the membership property — trivially true
with a known membership), and eventual weak accuracy needs the **message
pattern property MP**: some correct process ``p_l`` and some set ``Q`` of
``f + 1`` processes such that eventually every query issued by each
``p_j in Q`` receives ``p_l``'s response among the first ``n - f`` (a
*winning* response).

These oracles check the properties **over a recorded run**: they consume the
sequence of completed query rounds (each exposing ``querier``, ``round_id``
and ``winners`` — duck-typed, satisfied by both
:class:`repro.sim.trace.RoundRecord` and ad-hoc test fixtures).  On a finite
trace, "eventually always" is interpreted as "for the last ``min_suffix``
completed rounds of each relevant querier", with ``min_suffix`` chosen by the
experimenter.

Experiments use these oracles to *label* each run: a run whose delays never
satisfied MP is reported as outside the algorithm's assumptions rather than
as a detector failure, mirroring how the paper frames its guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = [
    "RoundLike",
    "MPWitness",
    "rounds_by_querier",
    "responder_wins_suffix",
    "find_mp_witness",
    "responsive_processes",
    "winning_ratio",
]


class RoundLike(Protocol):
    """Anything describing one completed query round.

    ``winners`` is the strict first-``n - f`` responder set (the paper's
    definition of a *winning* response); ``responders`` — required only by
    the non-strict checkers — is the full ``rec_from`` of the terminated
    query, including extra responses harvested during the pacing grace.
    Suspicions are raised from ``rec_from``, so accuracy properties couple
    to the non-strict set while the MP *order* analysis uses the strict one.
    """

    querier: ProcessId
    round_id: int
    winners: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class MPWitness:
    """Evidence that MP held on the observed run.

    ``responder`` is the eventually-winning correct process ``p_l``;
    ``queriers`` the witnessed ``Q`` (``|Q| >= f + 1``); ``suffix`` the
    number of trailing rounds per querier over which the win was checked.
    """

    responder: ProcessId
    queriers: frozenset[ProcessId]
    suffix: int


def rounds_by_querier(
    rounds: Iterable[RoundLike],
) -> dict[ProcessId, list[RoundLike]]:
    """Group completed rounds per issuing process, preserving order."""
    grouped: dict[ProcessId, list[RoundLike]] = {}
    for record in rounds:
        grouped.setdefault(record.querier, []).append(record)
    return grouped


def responder_wins_suffix(
    querier_rounds: Sequence[RoundLike],
    responder: ProcessId,
    *,
    suffix: int,
    strict: bool = True,
) -> bool:
    """True iff ``responder`` won each of the last ``suffix`` rounds.

    A querier with fewer than ``suffix`` completed rounds never satisfies the
    check — with no evidence we refuse to certify the property.  With
    ``strict=False`` a round counts as won when the responder made it into
    the terminated query's full ``rec_from`` (see :class:`RoundLike`).
    """
    if suffix < 1:
        raise ConfigurationError(f"suffix must be >= 1, got {suffix}")
    if len(querier_rounds) < suffix:
        return False
    return all(
        responder in _winning_set(record, strict)
        for record in querier_rounds[-suffix:]
    )


def _winning_set(record: RoundLike, strict: bool) -> frozenset[ProcessId]:
    if strict:
        return record.winners
    return frozenset(record.responders)  # type: ignore[attr-defined]


def find_mp_witness(
    rounds: Iterable[RoundLike],
    *,
    f: int,
    correct: Iterable[ProcessId],
    min_suffix: int = 1,
    scope: int | None = None,
) -> MPWitness | None:
    """Search the run for an MP witness; ``None`` if the property failed.

    For every correct candidate ``p_l``, collect the queriers whose last
    ``min_suffix`` rounds were all won by ``p_l``; the property holds if the
    collection reaches ``scope`` processes (the querier set may include
    ``p_l`` itself — a process always wins its own queries).

    ``scope`` defaults to ``f + 1`` — plain MP, giving ◇S.  Smaller scopes
    characterise the *limited-scope* accuracy classes of this paper family
    (◇S_x: eventually some correct process is not suspected by ``x``
    processes); larger scopes strengthen toward the global variant that
    supports eventual leader election.
    """
    if scope is None:
        scope = f + 1
    if scope < 1:
        raise ConfigurationError(f"scope must be >= 1, got {scope}")
    grouped = rounds_by_querier(rounds)
    correct_set = frozenset(correct)
    for candidate in sorted(correct_set, key=repr):
        queriers = frozenset(
            querier
            for querier, qrounds in grouped.items()
            if responder_wins_suffix(qrounds, candidate, suffix=min_suffix)
        )
        if len(queriers) >= scope:
            return MPWitness(responder=candidate, queriers=queriers, suffix=min_suffix)
    return None


def responsive_processes(
    rounds: Iterable[RoundLike],
    *,
    correct: Iterable[ProcessId],
    min_suffix: int = 1,
    strict: bool = True,
) -> frozenset[ProcessId]:
    """Correct processes that eventually won *every* querier's rounds (RP).

    This is the stronger per-process responsiveness property: if it holds
    for every correct process the algorithm's accuracy strengthens to
    ◇P-like behavior (no correct process is eventually suspected).  For
    that accuracy coupling use ``strict=False``: suspicion is raised from
    the full ``rec_from`` of a terminated query, not from the strict
    first-``n - f`` winner set.
    """
    grouped = rounds_by_querier(rounds)
    if not grouped:
        return frozenset()
    correct_set = frozenset(correct)
    result = set()
    for candidate in correct_set:
        if all(
            responder_wins_suffix(qrounds, candidate, suffix=min_suffix, strict=strict)
            for qrounds in grouped.values()
        ):
            result.add(candidate)
    return frozenset(result)


def winning_ratio(
    rounds: Iterable[RoundLike],
    responder: ProcessId,
    *,
    querier: ProcessId | None = None,
) -> float:
    """Fraction of (optionally: one querier's) rounds won by ``responder``.

    A diagnostic used by the MP-sensitivity experiment (F3): accuracy should
    degrade as this ratio decays below 1 for every candidate responder.
    """
    relevant = [
        record
        for record in rounds
        if querier is None or record.querier == querier
    ]
    if not relevant:
        return 0.0
    wins = sum(1 for record in relevant if responder in record.winners)
    return wins / len(relevant)
