"""The paper's primary contribution: a time-free failure detector.

Public surface:

* :class:`repro.core.protocol.TimeFreeDetector` — the sans-I/O query-response
  detector (Algorithm 1 of the paper, known membership, ``n - f`` quorum).
* :class:`repro.core.tags.TaggedSet` / :class:`repro.core.tags.SuspicionState`
  — the counter-tagged suspicion/mistake bookkeeping.
* :mod:`repro.core.messages` — wire messages shared by every runtime.
* :mod:`repro.core.properties` — oracles for the behavioral properties (MP,
  RP, winning responses) the correctness proof relies on.
* :mod:`repro.core.classes` — the Chandra-Toueg failure-detector class
  taxonomy and the abstract detector interface.
* :mod:`repro.core.omega` — eventual leader election layered on the detector.
"""

from .classes import FailureDetector, FDClass
from .messages import Query, Response
from .protocol import DetectorConfig, QueryRoundOutcome, TimeFreeDetector
from .tags import MergeOutcome, SuspicionState, TaggedSet

__all__ = [
    "DetectorConfig",
    "FDClass",
    "FailureDetector",
    "MergeOutcome",
    "Query",
    "QueryRoundOutcome",
    "Response",
    "SuspicionState",
    "TaggedSet",
    "TimeFreeDetector",
]
