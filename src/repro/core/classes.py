"""Chandra-Toueg failure-detector classes and the abstract detector surface.

The taxonomy is the classical one from "Unreliable Failure Detectors for
Reliable Distributed Systems" (Chandra & Toueg, JACM 1996): a class is a pair
of a *completeness* property and an *accuracy* property.

========  =====================  ==========================
class     completeness           accuracy
========  =====================  ==========================
``P``     strong                 strong (perpetual)
``S``     strong                 weak (perpetual)
``◇P``    strong                 eventual strong
``◇S``    strong                 eventual weak
``Ω``     (leader oracle, equivalent to ◇S for consensus when f < n/2)
========  =====================  ==========================

The paper's algorithm implements **◇S** when the behavioral properties hold
eventually, and its accuracy strengthens with the assumption: perpetual MP
gives ``S``-like accuracy; responsiveness of *every* correct process gives
``◇P``-like accuracy.  :func:`is_reducible_to` encodes the classical
reducibility lattice so applications can assert they run on a sufficiently
strong detector.
"""

from __future__ import annotations

import abc
import enum
from ..ids import ProcessId

__all__ = ["Completeness", "Accuracy", "FDClass", "FailureDetector", "is_reducible_to"]


class Completeness(enum.Enum):
    """Crash-detection guarantee."""

    STRONG = "strong"  # every crashed process eventually suspected by every correct one
    WEAK = "weak"  # ... by some correct one


class Accuracy(enum.Enum):
    """Restriction on false suspicions."""

    PERPETUAL_STRONG = "perpetual strong"  # no correct process is ever suspected
    PERPETUAL_WEAK = "perpetual weak"  # some correct process is never suspected
    EVENTUAL_STRONG = "eventual strong"  # eventually no correct process is suspected
    EVENTUAL_WEAK = "eventual weak"  # eventually some correct process is never suspected


class FDClass(enum.Enum):
    """The four classical classes plus the leader oracle Omega."""

    P = "P"
    S = "S"
    DIAMOND_P = "◇P"
    DIAMOND_S = "◇S"
    OMEGA = "Ω"

    @property
    def completeness(self) -> Completeness | None:
        if self is FDClass.OMEGA:
            return None
        return Completeness.STRONG

    @property
    def accuracy(self) -> Accuracy | None:
        return {
            FDClass.P: Accuracy.PERPETUAL_STRONG,
            FDClass.S: Accuracy.PERPETUAL_WEAK,
            FDClass.DIAMOND_P: Accuracy.EVENTUAL_STRONG,
            FDClass.DIAMOND_S: Accuracy.EVENTUAL_WEAK,
            FDClass.OMEGA: None,
        }[self]


#: ``a -> set of classes a is reducible to`` (i.e. ``a`` is at least as
#: strong: an algorithm needing the target class can run on ``a``).  The
#: ◇S/Ω equivalence holds in asynchronous systems with a majority of correct
#: processes (Chandra-Hadzilacos-Toueg 1996).
_REDUCTIONS: dict[FDClass, frozenset[FDClass]] = {
    FDClass.P: frozenset({FDClass.P, FDClass.S, FDClass.DIAMOND_P, FDClass.DIAMOND_S, FDClass.OMEGA}),
    FDClass.S: frozenset({FDClass.S, FDClass.DIAMOND_S, FDClass.OMEGA}),
    FDClass.DIAMOND_P: frozenset({FDClass.DIAMOND_P, FDClass.DIAMOND_S, FDClass.OMEGA}),
    FDClass.DIAMOND_S: frozenset({FDClass.DIAMOND_S, FDClass.OMEGA}),
    FDClass.OMEGA: frozenset({FDClass.OMEGA, FDClass.DIAMOND_S}),
}


def is_reducible_to(source: FDClass, target: FDClass) -> bool:
    """Whether a detector of class ``source`` can emulate class ``target``.

    >>> is_reducible_to(FDClass.P, FDClass.DIAMOND_S)
    True
    >>> is_reducible_to(FDClass.DIAMOND_S, FDClass.P)
    False
    """
    return target in _REDUCTIONS[source]


class FailureDetector(abc.ABC):
    """Minimal interface every detector in the library exposes.

    A failure detector is a per-process oracle; ``suspects()`` is the list of
    processes the local module currently suspects of having crashed.  The
    output is *unreliable*: entries may come and go, and only the class
    properties constrain its long-run behavior.
    """

    @property
    @abc.abstractmethod
    def process_id(self) -> ProcessId:
        """The identifier of the process this detector module serves."""

    @abc.abstractmethod
    def suspects(self) -> frozenset[ProcessId]:
        """The current suspect list."""

    @property
    def name(self) -> str:
        """Human-readable detector name used in traces and reports."""
        return type(self).__name__
