"""Application-level consensus QoS — the metric detector QoS should predict.

The QoS literature (Chen-Toueg-Aguilera for the detector side; Reis &
Vieira for the application side) frames detector quality as a *proxy*: what
an application actually experiences is decision latency and wasted rounds.
This module summarises a
:class:`~repro.consensus.sim_runner.ConsensusRunResult`'s per-instance
ledger into exactly those numbers, plus the consensus share of the message
load read off the run trace.

All statistics are over **correct** processes (per the run's ground
truth) and over instances that every correct process decided; open
instances are reported as undecided, never silently dropped from counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError

__all__ = ["ConsensusStats", "consensus_stats", "consensus_message_load"]

#: trace kinds that belong to the consensus plane: the bare ballots of
#: instance 1 plus the instance envelopes of every later instance
_BALLOT_PREFIX = "ct."
_ENVELOPE_KIND = "consensus.instance"


@dataclass(frozen=True)
class ConsensusStats:
    """Ledger summary of one multi-instance consensus run."""

    #: instances the run attempted
    instances: int
    #: instances every correct process decided
    decided: int
    #: mean/max of per-instance decision latency (first correct propose to
    #: last correct decision), over decided instances; ``None`` if none
    latency_mean: float | None
    latency_max: float | None
    #: mean first-decider round over decided instances (1 = fast path)
    rounds_mean: float | None
    #: worst per-process nack count of any instance (rounds aborted on the
    #: oracle's word)
    aborted_rounds: int
    #: total phase-3 nacks issued by correct processes, all instances
    nacks: int
    #: safety, over every instance (uniform agreement / validity)
    agreement: bool
    validity: bool


def consensus_stats(result) -> ConsensusStats:
    """Summarise a run result's instance ledger."""
    outcomes = result.instances
    decided = [out for out in outcomes if out.all_correct_decided]
    latencies = [
        out.decision_latency for out in decided if out.decision_latency is not None
    ]
    rounds = [
        out.rounds_to_decide for out in decided if out.rounds_to_decide is not None
    ]
    return ConsensusStats(
        instances=len(outcomes),
        decided=len(decided),
        latency_mean=sum(latencies) / len(latencies) if latencies else None,
        latency_max=max(latencies) if latencies else None,
        rounds_mean=sum(rounds) / len(rounds) if rounds else None,
        aborted_rounds=max((out.aborted_rounds for out in outcomes), default=0),
        nacks=sum(out.nacks for out in outcomes),
        agreement=all(out.agreement_holds for out in outcomes),
        validity=all(out.validity_holds for out in outcomes),
    )


def consensus_message_load(trace, *, horizon: float, n: int) -> float:
    """Consensus messages per second per process.

    Counts the bare ``ct.*`` ballots (instance 1) plus every
    ``consensus.instance`` envelope (instances ≥ 2) recorded on the trace —
    the price the workload pays on top of the detector's own load (which
    :func:`repro.metrics.message_load` reports by kind).
    """
    if horizon <= 0 or n <= 0:
        raise ExperimentError("horizon and n must be positive")
    total = sum(
        count
        for kind, count in trace.messages_by_kind.items()
        if kind.startswith(_BALLOT_PREFIX) or kind == _ENVELOPE_KIND
    )
    return total / horizon / n
