"""QoS computations over traces.  See package docstring for definitions."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean as _mean
from typing import Iterable, Sequence

from ..errors import ExperimentError
from ..ids import ProcessId
from ..sim.faults import FaultPlan
from ..sim.trace import TraceRecorder

__all__ = [
    "DetectionStats",
    "MistakeStats",
    "EpochMistakeStats",
    "PairQoS",
    "detection_stats",
    "all_detection_stats",
    "epoch_detection_stats",
    "mistake_stats",
    "epoch_mistake_stats",
    "pair_qos",
    "accuracy_stabilization",
    "false_suspicion_series",
    "message_load",
]


@dataclass(frozen=True)
class DetectionStats:
    """Detection of one crash, seen from every correct observer."""

    crashed: ProcessId
    crash_time: float
    #: observer -> detection latency (permanent-suspicion start - crash time)
    latencies: dict[ProcessId, float]
    #: correct observers that never (permanently) suspected the crash
    undetected: frozenset[ProcessId]

    @property
    def detected_by_all(self) -> bool:
        """Strong completeness achieved for this crash within the horizon."""
        return not self.undetected and bool(self.latencies)

    @property
    def min_latency(self) -> float | None:
        return min(self.latencies.values(), default=None)

    @property
    def mean_latency(self) -> float | None:
        return _mean(self.latencies.values()) if self.latencies else None

    @property
    def max_latency(self) -> float | None:
        """Time for *all* observers to detect — the strong completeness time."""
        return max(self.latencies.values(), default=None)


def detection_stats(
    trace: TraceRecorder,
    crashed: ProcessId,
    crash_time: float,
    observers: Iterable[ProcessId],
) -> DetectionStats:
    """Per-observer detection latencies of one crash."""
    latencies: dict[ProcessId, float] = {}
    undetected: set[ProcessId] = set()
    for observer in observers:
        if observer == crashed:
            continue
        start = trace.permanent_suspicion_time(observer, crashed)
        if start is None:
            undetected.add(observer)
        else:
            # The permanent interval may have begun before the crash (a
            # false suspicion that the crash then made true); latency is
            # measured from the crash, floored at zero.
            latencies[observer] = max(0.0, start - crash_time)
    return DetectionStats(
        crashed=crashed,
        crash_time=crash_time,
        latencies=latencies,
        undetected=frozenset(undetected),
    )


def all_detection_stats(
    trace: TraceRecorder,
    fault_plan: FaultPlan,
    membership: Iterable[ProcessId],
) -> list[DetectionStats]:
    """Detection stats for every crash in the plan, observed by correct nodes."""
    correct = fault_plan.correct_processes(membership)
    return [
        detection_stats(trace, fault.process, fault.time, correct)
        for fault in fault_plan.crashes
    ]


@dataclass(frozen=True)
class MistakeStats:
    """False suspicions of correct processes by correct observers."""

    #: number of wrong suspicion intervals across all (observer, target) pairs
    count: int
    total_duration: float
    horizon: float
    #: pairs that were wrongly suspected at the end of the run
    unresolved: int

    @property
    def mean_duration(self) -> float | None:
        """Chen's T_M: average length of a mistake."""
        return self.total_duration / self.count if self.count else None

    @property
    def rate(self) -> float:
        """Chen's lambda_M analogue: mistakes per unit time, whole system."""
        return self.count / self.horizon if self.horizon > 0 else 0.0


def mistake_stats(
    trace: TraceRecorder,
    correct: Iterable[ProcessId],
    *,
    horizon: float,
) -> MistakeStats:
    """Aggregate false-suspicion statistics among correct processes."""
    correct_set = frozenset(correct)
    count = 0
    total = 0.0
    unresolved = 0
    for observer in correct_set:
        # Pairs with no suspicion history contribute nothing; skipping them
        # via the observer's ever-suspected set turns the quadratic pair
        # sweep into one bounded by actual suspicions (large-n grids).
        suspected_ever = trace.targets_of(observer)
        for target in suspected_ever & correct_set:
            if observer == target:
                continue
            intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
            count += len(intervals)
            total += sum(end - start for start, end in intervals)
            if intervals and intervals[-1][1] >= horizon:
                unresolved += 1
    return MistakeStats(
        count=count, total_duration=total, horizon=horizon, unresolved=unresolved
    )


def _intersect(
    intervals: Sequence[tuple[float, float]],
    windows: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Pairwise intersection of two sorted, disjoint interval lists."""
    result: list[tuple[float, float]] = []
    wi = 0
    for start, end in intervals:
        while wi < len(windows) and windows[wi][1] <= start:
            wi += 1
        probe = wi
        while probe < len(windows) and windows[probe][0] < end:
            lo = max(start, windows[probe][0])
            hi = min(end, windows[probe][1])
            if hi > lo:
                result.append((lo, hi))
            probe += 1
    return result


def _overlap_length(
    a: Sequence[tuple[float, float]], b: Sequence[tuple[float, float]]
) -> float:
    return sum(end - start for start, end in _intersect(a, b))


@dataclass(frozen=True)
class EpochMistakeStats:
    """False suspicions scored against epoch ground truth.

    A suspicion of a target is a mistake only while the target is *up*
    (per :meth:`~repro.sim.faults.FaultPlan.down_intervals`) — suspecting
    a down-but-recovering node is correct until the recovery instant.
    Observers only accuse while they themselves are up.
    """

    #: number of (clipped) wrong suspicion intervals across all pairs
    count: int
    total_duration: float
    #: total (observer up ∧ target up) pair-time — the denominator of P_A
    alive_pair_time: float
    horizon: float
    #: pairs wrongly suspected at the horizon (both endpoints still up)
    unresolved: int

    @property
    def mean_duration(self) -> float | None:
        return self.total_duration / self.count if self.count else None

    @property
    def rate(self) -> float:
        """Mistakes per unit time, whole system (Chen's lambda_M analogue)."""
        return self.count / self.horizon if self.horizon > 0 else 0.0

    @property
    def query_accuracy_probability(self) -> float:
        """P_A: fraction of co-alive pair time with a correct answer."""
        if self.alive_pair_time <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_duration / self.alive_pair_time)


def epoch_mistake_stats(
    trace: TraceRecorder,
    fault_plan: FaultPlan,
    membership: Iterable[ProcessId],
    *,
    horizon: float,
) -> EpochMistakeStats:
    """Aggregate false suspicions against per-epoch aliveness.

    Generalizes :func:`mistake_stats` to plans with recovery, partitions
    and dynamic membership: each suspicion interval of ``(observer,
    target)`` is clipped to the time both endpoints are up, and the
    accuracy denominator is the co-alive pair time rather than ``n^2 *
    horizon``.  With a crash-only plan this reproduces the legacy notion
    (mistakes among correct pairs, pre-crash time only).
    """
    if horizon <= 0:
        raise ExperimentError(f"horizon must be > 0, got {horizon}")
    members = sorted(frozenset(membership), key=repr)
    alive: dict[ProcessId, tuple[tuple[float, float], ...]] = {
        pid: fault_plan.alive_intervals(pid, horizon=horizon) for pid in members
    }
    count = 0
    total = 0.0
    unresolved = 0
    alive_pair_time = 0.0
    for observer in members:
        observer_alive = alive[observer]
        if not observer_alive:
            continue
        suspected_ever = trace.targets_of(observer)
        for target in members:
            if target == observer:
                continue
            target_alive = alive[target]
            co_alive = _intersect(observer_alive, target_alive)
            alive_pair_time += sum(end - start for start, end in co_alive)
            if target not in suspected_ever:
                continue
            intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
            mistakes = _intersect(intervals, co_alive)
            count += len(mistakes)
            total += sum(end - start for start, end in mistakes)
            if mistakes and mistakes[-1][1] >= horizon:
                unresolved += 1
    return EpochMistakeStats(
        count=count,
        total_duration=total,
        alive_pair_time=alive_pair_time,
        horizon=horizon,
        unresolved=unresolved,
    )


def epoch_detection_stats(
    trace: TraceRecorder,
    fault_plan: FaultPlan,
    membership: Iterable[ProcessId],
    *,
    horizon: float,
) -> list[DetectionStats]:
    """Detection stats for every *down window* in the plan.

    Each element covers one ``[start, end)`` down interval of one process
    (a permanent crash, a recovery window, a pre-join gap, or a
    departure).  For a terminal window (the process never comes back) the
    legacy permanent-suspicion notion applies; for a transient window an
    observer detects by suspecting the target at any point inside it.
    Observers are the processes the ground truth says are up when the
    window closes.
    """
    if horizon <= 0:
        raise ExperimentError(f"horizon must be > 0, got {horizon}")
    members = frozenset(membership)
    stats: list[DetectionStats] = []
    for pid in sorted(members, key=repr):
        for start, end in fault_plan.down_intervals(pid, horizon=horizon):
            terminal = end >= horizon and not fault_plan.alive_at(pid, horizon)
            observed_at = min(end, horizon)
            observers = fault_plan.correct_at(observed_at, members) - {pid}
            latencies: dict[ProcessId, float] = {}
            undetected: set[ProcessId] = set()
            for observer in observers:
                if terminal:
                    first = trace.permanent_suspicion_time(observer, pid)
                else:
                    first = None
                    for s, e in trace.suspicion_intervals(
                        observer, pid, horizon=horizon
                    ):
                        if e > start and s < end:
                            first = max(s, start)
                            break
                if first is None:
                    undetected.add(observer)
                else:
                    latencies[observer] = max(0.0, first - start)
            stats.append(
                DetectionStats(
                    crashed=pid,
                    crash_time=start,
                    latencies=latencies,
                    undetected=frozenset(undetected),
                )
            )
    return stats


@dataclass(frozen=True)
class PairQoS:
    """Chen-Toueg-Aguilera QoS of one (observer, target) monitored pair."""

    observer: ProcessId
    target: ProcessId
    horizon: float
    #: crash-detection latency; None when the target never crashed
    detection_time: float | None
    mistake_count: int
    mistake_total_duration: float

    @property
    def mistake_rate(self) -> float:
        return self.mistake_count / self.horizon if self.horizon > 0 else 0.0

    @property
    def average_mistake_duration(self) -> float | None:
        if self.mistake_count == 0:
            return None
        return self.mistake_total_duration / self.mistake_count

    @property
    def query_accuracy_probability(self) -> float:
        """P_A: fraction of (pre-crash) time the pair's output was correct."""
        if self.horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.mistake_total_duration / self.horizon)


def pair_qos(
    trace: TraceRecorder,
    observer: ProcessId,
    target: ProcessId,
    *,
    horizon: float,
    crash_time: float | None = None,
) -> PairQoS:
    """QoS of one monitored pair over ``[0, horizon]``.

    When the target crashed at ``crash_time``, suspicion intervals after the
    crash are correct behavior and excluded from the mistake tally.
    """
    if horizon <= 0:
        raise ExperimentError(f"horizon must be > 0, got {horizon}")
    truth_end = crash_time if crash_time is not None else horizon
    intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
    mistakes = [
        (start, min(end, truth_end))
        for start, end in intervals
        if start < truth_end
    ]
    detection: float | None = None
    if crash_time is not None:
        start = trace.permanent_suspicion_time(observer, target)
        if start is not None:
            detection = max(0.0, start - crash_time)
    return PairQoS(
        observer=observer,
        target=target,
        horizon=horizon,
        detection_time=detection,
        mistake_count=len(mistakes),
        mistake_total_duration=sum(end - start for start, end in mistakes),
    )


def accuracy_stabilization(
    trace: TraceRecorder,
    correct: Iterable[ProcessId],
    *,
    horizon: float,
) -> dict[ProcessId, float | None]:
    """For each correct process: when did everyone stop suspecting it?

    Value is the end of its last false-suspicion interval (0.0 if it was
    never suspected), or ``None`` when some correct observer still suspects
    it at the horizon.  Eventual weak accuracy holds iff some entry is not
    ``None``; the witnesses are the *never-again-suspected* processes the
    ◇S proof promises.
    """
    correct_set = frozenset(correct)
    # As in mistake_stats: only (observer, target) pairs with suspicion
    # history can move the answer, so prune by each observer's
    # ever-suspected set instead of scanning every timeline per pair.
    suspected_by = {
        observer: trace.targets_of(observer) for observer in correct_set
    }
    result: dict[ProcessId, float | None] = {}
    for target in correct_set:
        latest = 0.0
        still_suspected = False
        for observer in correct_set:
            if observer == target or target not in suspected_by[observer]:
                continue
            intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
            if not intervals:
                continue
            last_start, last_end = intervals[-1]
            if last_end >= horizon:
                still_suspected = True
                break
            latest = max(latest, last_end)
        result[target] = None if still_suspected else latest
    return result


def false_suspicion_series(
    trace: TraceRecorder,
    sample_times: Sequence[float],
    fault_plan: FaultPlan,
) -> list[tuple[float, int]]:
    """Total wrongly-suspected (observer, target) pairs at each sample time.

    Regenerates the y-axis of the mobility experiment (Figure 3 of the
    follow-up report): a correct-but-moving node racks up false suspicions
    which must collapse back to zero after reconnection.
    """
    return [
        (t, trace.false_suspicion_count_at(t, fault_plan.down_at(t)))
        for t in sample_times
    ]


def message_load(
    trace: TraceRecorder,
    *,
    horizon: float,
    n: int,
) -> dict[str, float]:
    """Messages per second per process, by message kind plus ``"total"``."""
    if horizon <= 0 or n <= 0:
        raise ExperimentError("horizon and n must be positive")
    load = {
        kind: count / horizon / n for kind, count in sorted(trace.messages_by_kind.items())
    }
    load["total"] = trace.messages_total / horizon / n
    return load
