"""QoS computations over traces.  See package docstring for definitions."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean as _mean
from typing import Iterable, Sequence

from ..errors import ExperimentError
from ..ids import ProcessId
from ..sim.faults import FaultPlan
from ..sim.trace import TraceRecorder

__all__ = [
    "DetectionStats",
    "MistakeStats",
    "PairQoS",
    "detection_stats",
    "all_detection_stats",
    "mistake_stats",
    "pair_qos",
    "accuracy_stabilization",
    "false_suspicion_series",
    "message_load",
]


@dataclass(frozen=True)
class DetectionStats:
    """Detection of one crash, seen from every correct observer."""

    crashed: ProcessId
    crash_time: float
    #: observer -> detection latency (permanent-suspicion start - crash time)
    latencies: dict[ProcessId, float]
    #: correct observers that never (permanently) suspected the crash
    undetected: frozenset[ProcessId]

    @property
    def detected_by_all(self) -> bool:
        """Strong completeness achieved for this crash within the horizon."""
        return not self.undetected and bool(self.latencies)

    @property
    def min_latency(self) -> float | None:
        return min(self.latencies.values(), default=None)

    @property
    def mean_latency(self) -> float | None:
        return _mean(self.latencies.values()) if self.latencies else None

    @property
    def max_latency(self) -> float | None:
        """Time for *all* observers to detect — the strong completeness time."""
        return max(self.latencies.values(), default=None)


def detection_stats(
    trace: TraceRecorder,
    crashed: ProcessId,
    crash_time: float,
    observers: Iterable[ProcessId],
) -> DetectionStats:
    """Per-observer detection latencies of one crash."""
    latencies: dict[ProcessId, float] = {}
    undetected: set[ProcessId] = set()
    for observer in observers:
        if observer == crashed:
            continue
        start = trace.permanent_suspicion_time(observer, crashed)
        if start is None:
            undetected.add(observer)
        else:
            # The permanent interval may have begun before the crash (a
            # false suspicion that the crash then made true); latency is
            # measured from the crash, floored at zero.
            latencies[observer] = max(0.0, start - crash_time)
    return DetectionStats(
        crashed=crashed,
        crash_time=crash_time,
        latencies=latencies,
        undetected=frozenset(undetected),
    )


def all_detection_stats(
    trace: TraceRecorder,
    fault_plan: FaultPlan,
    membership: Iterable[ProcessId],
) -> list[DetectionStats]:
    """Detection stats for every crash in the plan, observed by correct nodes."""
    correct = fault_plan.correct_processes(membership)
    return [
        detection_stats(trace, fault.process, fault.time, correct)
        for fault in fault_plan.crashes
    ]


@dataclass(frozen=True)
class MistakeStats:
    """False suspicions of correct processes by correct observers."""

    #: number of wrong suspicion intervals across all (observer, target) pairs
    count: int
    total_duration: float
    horizon: float
    #: pairs that were wrongly suspected at the end of the run
    unresolved: int

    @property
    def mean_duration(self) -> float | None:
        """Chen's T_M: average length of a mistake."""
        return self.total_duration / self.count if self.count else None

    @property
    def rate(self) -> float:
        """Chen's lambda_M analogue: mistakes per unit time, whole system."""
        return self.count / self.horizon if self.horizon > 0 else 0.0


def mistake_stats(
    trace: TraceRecorder,
    correct: Iterable[ProcessId],
    *,
    horizon: float,
) -> MistakeStats:
    """Aggregate false-suspicion statistics among correct processes."""
    correct_set = frozenset(correct)
    count = 0
    total = 0.0
    unresolved = 0
    for observer in correct_set:
        # Pairs with no suspicion history contribute nothing; skipping them
        # via the observer's ever-suspected set turns the quadratic pair
        # sweep into one bounded by actual suspicions (large-n grids).
        suspected_ever = trace.targets_of(observer)
        for target in suspected_ever & correct_set:
            if observer == target:
                continue
            intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
            count += len(intervals)
            total += sum(end - start for start, end in intervals)
            if intervals and intervals[-1][1] >= horizon:
                unresolved += 1
    return MistakeStats(
        count=count, total_duration=total, horizon=horizon, unresolved=unresolved
    )


@dataclass(frozen=True)
class PairQoS:
    """Chen-Toueg-Aguilera QoS of one (observer, target) monitored pair."""

    observer: ProcessId
    target: ProcessId
    horizon: float
    #: crash-detection latency; None when the target never crashed
    detection_time: float | None
    mistake_count: int
    mistake_total_duration: float

    @property
    def mistake_rate(self) -> float:
        return self.mistake_count / self.horizon if self.horizon > 0 else 0.0

    @property
    def average_mistake_duration(self) -> float | None:
        if self.mistake_count == 0:
            return None
        return self.mistake_total_duration / self.mistake_count

    @property
    def query_accuracy_probability(self) -> float:
        """P_A: fraction of (pre-crash) time the pair's output was correct."""
        if self.horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.mistake_total_duration / self.horizon)


def pair_qos(
    trace: TraceRecorder,
    observer: ProcessId,
    target: ProcessId,
    *,
    horizon: float,
    crash_time: float | None = None,
) -> PairQoS:
    """QoS of one monitored pair over ``[0, horizon]``.

    When the target crashed at ``crash_time``, suspicion intervals after the
    crash are correct behavior and excluded from the mistake tally.
    """
    if horizon <= 0:
        raise ExperimentError(f"horizon must be > 0, got {horizon}")
    truth_end = crash_time if crash_time is not None else horizon
    intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
    mistakes = [
        (start, min(end, truth_end))
        for start, end in intervals
        if start < truth_end
    ]
    detection: float | None = None
    if crash_time is not None:
        start = trace.permanent_suspicion_time(observer, target)
        if start is not None:
            detection = max(0.0, start - crash_time)
    return PairQoS(
        observer=observer,
        target=target,
        horizon=horizon,
        detection_time=detection,
        mistake_count=len(mistakes),
        mistake_total_duration=sum(end - start for start, end in mistakes),
    )


def accuracy_stabilization(
    trace: TraceRecorder,
    correct: Iterable[ProcessId],
    *,
    horizon: float,
) -> dict[ProcessId, float | None]:
    """For each correct process: when did everyone stop suspecting it?

    Value is the end of its last false-suspicion interval (0.0 if it was
    never suspected), or ``None`` when some correct observer still suspects
    it at the horizon.  Eventual weak accuracy holds iff some entry is not
    ``None``; the witnesses are the *never-again-suspected* processes the
    ◇S proof promises.
    """
    correct_set = frozenset(correct)
    # As in mistake_stats: only (observer, target) pairs with suspicion
    # history can move the answer, so prune by each observer's
    # ever-suspected set instead of scanning every timeline per pair.
    suspected_by = {
        observer: trace.targets_of(observer) for observer in correct_set
    }
    result: dict[ProcessId, float | None] = {}
    for target in correct_set:
        latest = 0.0
        still_suspected = False
        for observer in correct_set:
            if observer == target or target not in suspected_by[observer]:
                continue
            intervals = trace.suspicion_intervals(observer, target, horizon=horizon)
            if not intervals:
                continue
            last_start, last_end = intervals[-1]
            if last_end >= horizon:
                still_suspected = True
                break
            latest = max(latest, last_end)
        result[target] = None if still_suspected else latest
    return result


def false_suspicion_series(
    trace: TraceRecorder,
    sample_times: Sequence[float],
    fault_plan: FaultPlan,
) -> list[tuple[float, int]]:
    """Total wrongly-suspected (observer, target) pairs at each sample time.

    Regenerates the y-axis of the mobility experiment (Figure 3 of the
    follow-up report): a correct-but-moving node racks up false suspicions
    which must collapse back to zero after reconnection.
    """
    return [
        (t, trace.false_suspicion_count_at(t, fault_plan.crashed_by(t)))
        for t in sample_times
    ]


def message_load(
    trace: TraceRecorder,
    *,
    horizon: float,
    n: int,
) -> dict[str, float]:
    """Messages per second per process, by message kind plus ``"total"``."""
    if horizon <= 0 or n <= 0:
        raise ExperimentError("horizon and n must be positive")
    load = {
        kind: count / horizon / n for kind, count in sorted(trace.messages_by_kind.items())
    }
    load["total"] = trace.messages_total / horizon / n
    return load
