"""Failure-detector quality-of-service metrics.

Computed exclusively from run traces plus the ground-truth fault plan,
following the vocabulary of Chen, Toueg & Aguilera ("On the quality of
service of failure detectors", IEEE ToC 2002):

* **detection time** — crash instant to the start of the observer's final,
  never-revoked suspicion of the crashed process; the max across correct
  observers is the *strong completeness* time the paper's Figure 2 plots;
* **mistake rate / duration** — how often and for how long correct
  processes get falsely suspected (accuracy);
* **query accuracy probability** — fraction of time an observer was right
  about a correct peer;
* **message load** — messages per second per process, by kind.
"""

from .qos import (
    DetectionStats,
    EpochMistakeStats,
    MistakeStats,
    PairQoS,
    accuracy_stabilization,
    all_detection_stats,
    detection_stats,
    epoch_detection_stats,
    epoch_mistake_stats,
    false_suspicion_series,
    message_load,
    mistake_stats,
    pair_qos,
)

__all__ = [
    "DetectionStats",
    "EpochMistakeStats",
    "MistakeStats",
    "PairQoS",
    "accuracy_stabilization",
    "all_detection_stats",
    "detection_stats",
    "epoch_detection_stats",
    "epoch_mistake_stats",
    "false_suspicion_series",
    "message_load",
    "mistake_stats",
    "pair_qos",
]
