"""Failure-detector quality-of-service metrics.

Computed exclusively from run traces plus the ground-truth fault plan,
following the vocabulary of Chen, Toueg & Aguilera ("On the quality of
service of failure detectors", IEEE ToC 2002):

* **detection time** — crash instant to the start of the observer's final,
  never-revoked suspicion of the crashed process; the max across correct
  observers is the *strong completeness* time the paper's Figure 2 plots;
* **mistake rate / duration** — how often and for how long correct
  processes get falsely suspected (accuracy);
* **query accuracy probability** — fraction of time an observer was right
  about a correct peer;
* **message load** — messages per second per process, by kind.

:mod:`repro.metrics.consensus` adds the application side of the QoS story:
decision latency, rounds-to-decide and oracle-aborted rounds of a consensus
workload running over the detector under measurement.
"""

from .consensus import ConsensusStats, consensus_message_load, consensus_stats
from .qos import (
    DetectionStats,
    EpochMistakeStats,
    MistakeStats,
    PairQoS,
    accuracy_stabilization,
    all_detection_stats,
    detection_stats,
    epoch_detection_stats,
    epoch_mistake_stats,
    false_suspicion_series,
    message_load,
    mistake_stats,
    pair_qos,
)

__all__ = [
    "ConsensusStats",
    "DetectionStats",
    "EpochMistakeStats",
    "MistakeStats",
    "PairQoS",
    "accuracy_stabilization",
    "all_detection_stats",
    "consensus_message_load",
    "consensus_stats",
    "detection_stats",
    "epoch_detection_stats",
    "epoch_mistake_stats",
    "false_suspicion_series",
    "message_load",
    "mistake_stats",
    "pair_qos",
]
