"""Canonical scenario builders shared by every experiment and benchmark.

A scenario is: a topology, a latency model, a fault plan, and one detector
deployed on every node.  :func:`run_scenario` assembles the cluster, runs it
to the horizon and returns it (trace included).  Detectors are selected by
**registry key** (see :mod:`repro.detectors`) — pass a key string, or a
:class:`DetectorSetup` when knobs need overriding — so experiment tables
can iterate over comparable configurations of any registered family.

Parameter conventions follow the paper family's evaluation: Δ (``period`` /
query ``grace``) defaults to 1 s, Θ (``timeout``) to 2 s, and the one-hop
delay δ averages 1 ms.

.. deprecated::
    :class:`DetectorSetup` predates the :mod:`repro.detectors` registry
    and is kept as a thin compatibility shim: it is one flat bag of every
    family's knobs, translated to the family's typed params at
    ``driver_factory`` time.  New code should address families through
    the registry (``sim_driver_factory(key, f, **params)``) or pass plain
    key strings to :func:`run_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from ..detectors import get_detector, sim_driver_factory
from ..errors import ConfigurationError
from ..ids import ProcessId
from ..sim.cluster import DriverFactory, SimCluster
from ..sim.faults import (
    CrashFault,
    FaultPlan,
    JoinFault,
    LeaveFault,
    LossBurst,
    PartitionFault,
    RecoveryFault,
)
from ..sim.latency import ExponentialLatency, LatencyModel
from ..sim.topology import Topology

__all__ = [
    "DetectorSetup",
    "FaultScenario",
    "run_scenario",
    "setup_for",
    "register_fault_scenario",
    "get_fault_scenario",
    "fault_scenario_keys",
    "fault_plan_for",
    "TIME_FREE",
    "HEARTBEAT",
    "GOSSIP",
    "PHI",
]


@dataclass(frozen=True)
class DetectorSetup:
    """Which detector to deploy and with what knobs (legacy shim).

    ``kind`` is any :mod:`repro.detectors` registry key (built-in:
    ``time-free``, ``partial``, ``heartbeat``, ``heartbeat-adaptive``,
    ``gossip``, ``phi``).  Timer-based kinds use ``period``/``timeout``
    (and ``phi_threshold``); query-response kinds use ``grace``/``idle``
    (plus ``d`` for the partial detector and ``retry`` for the
    lossy-channel extension).  Knobs that do not apply to ``kind`` are
    ignored, which is what lets one flat setup sweep across families.
    """

    kind: str
    label: str = ""
    grace: float = 1.0
    idle: float = 0.0
    retry: float | None = None
    d: int | None = None
    period: float = 1.0
    timeout: float = 2.0
    phi_threshold: float = 8.0
    timeout_increment: float = 0.5
    mobility: bool = True
    with_omega: bool = False

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.kind)

    def with_(self, **changes) -> "DetectorSetup":
        return replace(self, **changes)

    def registry_params(self) -> dict:
        """This setup's knobs, narrowed to the family's typed params."""
        spec = get_detector(self.kind)
        legacy = {
            "grace": self.grace,
            "idle": self.idle,
            "retry": self.retry,
            "with_omega": self.with_omega,
            "d": self.d,
            "mobility": self.mobility,
            "period": self.period,
            "timeout": self.timeout,
            "threshold": self.phi_threshold,
            "timeout_increment": self.timeout_increment,
        }
        return {name: legacy[name] for name in spec.param_names() if name in legacy}

    def driver_factory(self, f: int) -> DriverFactory:
        return sim_driver_factory(self.kind, f, **self.registry_params())


#: Canonical comparable configurations (Δ = 1 s everywhere, Θ = 2 s).
TIME_FREE = DetectorSetup(kind="time-free", label="time-free (async)", grace=1.0)
HEARTBEAT = DetectorSetup(kind="heartbeat", label="heartbeat Θ=2s", period=1.0, timeout=2.0)
GOSSIP = DetectorSetup(kind="gossip", label="gossip FT Θ=2s", period=1.0, timeout=2.0)
PHI = DetectorSetup(kind="phi", label="phi-accrual", period=1.0, phi_threshold=8.0)

_PRESETS = {
    TIME_FREE.kind: TIME_FREE,
    HEARTBEAT.kind: HEARTBEAT,
    GOSSIP.kind: GOSSIP,
    PHI.kind: PHI,
}


def setup_for(detector: "str | DetectorSetup") -> DetectorSetup:
    """Resolve a registry key (or pass through a setup) to a DetectorSetup.

    Keys with a canonical comparable preset (``time-free``, ``heartbeat``,
    ``gossip``, ``phi``) resolve to it — same Δ/Θ and table labels as
    always; any other registered key resolves to a default-knob setup.
    """
    if isinstance(detector, DetectorSetup):
        return detector
    preset = _PRESETS.get(detector)
    if preset is not None:
        return preset
    get_detector(detector)  # raise early on unknown keys
    return DetectorSetup(kind=detector)


# ---------------------------------------------------------------------------
# fault scenarios
# ---------------------------------------------------------------------------

#: ``build(members, f, horizon, exclude)`` -> the scenario's fault plan
FaultPlanBuilder = Callable[
    [Sequence[ProcessId], int, float, frozenset], FaultPlan
]


@dataclass(frozen=True)
class FaultScenario:
    """A named, typed fault-plan builder — the value of a ``FaultAxis``.

    Builders are **deterministic** (no RNG): every fault time is a fixed
    fraction of the horizon and every victim a fixed pick from the sorted
    membership, so a scenario name fully determines the plan and per-cell
    seeds keep their meaning.  ``exclude`` shields processes with a
    scripted role elsewhere in the cell (q1's crash victim) from double
    casting.
    """

    name: str
    summary: str
    build: FaultPlanBuilder


_FAULT_SCENARIOS: dict[str, FaultScenario] = {}


def register_fault_scenario(scenario: FaultScenario) -> FaultScenario:
    if not scenario.name or scenario.name != scenario.name.lower():
        raise ConfigurationError(
            f"fault scenario name must be non-empty lower-case: {scenario.name!r}"
        )
    existing = _FAULT_SCENARIOS.get(scenario.name)
    if existing is not None and existing is not scenario:
        raise ConfigurationError(
            f"fault scenario {scenario.name!r} is already registered"
        )
    _FAULT_SCENARIOS[scenario.name] = scenario
    return scenario


def get_fault_scenario(name: str) -> FaultScenario:
    scenario = _FAULT_SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; choose from {sorted(_FAULT_SCENARIOS)}"
        )
    return scenario


def fault_scenario_keys() -> list[str]:
    return sorted(_FAULT_SCENARIOS)


def fault_plan_for(
    name: str,
    *,
    members: Iterable[ProcessId],
    f: int,
    horizon: float,
    exclude: Iterable[ProcessId] = (),
) -> FaultPlan:
    """Build the named scenario's plan for one concrete deployment."""
    ordered = sorted(members, key=repr)
    return get_fault_scenario(name).build(ordered, f, horizon, frozenset(exclude))


def _eligible(
    members: Sequence[ProcessId], exclude: frozenset
) -> list[ProcessId]:
    return [pid for pid in members if pid not in exclude]


def _build_partition(
    members: Sequence[ProcessId], f: int, horizon: float, exclude: frozenset
) -> FaultPlan:
    if len(members) < 2:
        raise ConfigurationError("a partition needs at least 2 members")
    half = len(members) // 2
    return FaultPlan.of(
        partitions=[
            PartitionFault(
                sides=(tuple(members[:half]), tuple(members[half:])),
                start=0.25 * horizon,
                end=0.45 * horizon,
            )
        ]
    )


def _build_crashrec(
    members: Sequence[ProcessId], f: int, horizon: float, exclude: frozenset
) -> FaultPlan:
    victims = _eligible(members, exclude)[:2]
    if not victims:
        raise ConfigurationError("crashrec needs at least 1 eligible member")
    recoveries = [
        RecoveryFault(
            process=victims[0],
            crash=0.20 * horizon,
            recover=0.35 * horizon,
            persistent=False,
        )
    ]
    if len(victims) > 1:
        recoveries.append(
            RecoveryFault(
                process=victims[1],
                crash=0.50 * horizon,
                recover=0.65 * horizon,
                persistent=True,
            )
        )
    return FaultPlan.of(recoveries=recoveries)


def _build_churn(
    members: Sequence[ProcessId], f: int, horizon: float, exclude: frozenset
) -> FaultPlan:
    eligible = _eligible(members, exclude)
    if len(eligible) < 3:
        raise ConfigurationError("churn needs at least 3 eligible members")
    joiner, first_leaver, second_leaver = eligible[:3]
    return FaultPlan.of(
        joins=[JoinFault(process=joiner, time=0.20 * horizon)],
        leaves=[
            LeaveFault(process=first_leaver, time=0.70 * horizon),
            LeaveFault(process=second_leaver, time=0.80 * horizon),
        ],
    )


def _build_coordcrash(
    members: Sequence[ProcessId], f: int, horizon: float, exclude: frozenset
) -> FaultPlan:
    victims = _eligible(members, exclude)
    if not victims:
        raise ConfigurationError("coordcrash needs at least 1 eligible member")
    # The first member in sorted order is the round-1 coordinator of the
    # rotating-coordinator protocols; killing it right at start — before it
    # can answer the first query round or the workload proposes — makes
    # every in-flight consensus instance pay the detector's full detection
    # latency before round 2 can proceed.
    return FaultPlan.of(crashes=[CrashFault(process=victims[0], time=0.001)])


def _build_lossburst(
    members: Sequence[ProcessId], f: int, horizon: float, exclude: frozenset
) -> FaultPlan:
    return FaultPlan.of(
        bursts=[LossBurst(start=0.30 * horizon, end=0.50 * horizon, rate=0.25)]
    )


register_fault_scenario(
    FaultScenario(
        name="partition",
        summary="membership splits into two halves mid-run, heals later",
        build=_build_partition,
    )
)
register_fault_scenario(
    FaultScenario(
        name="crashrec",
        summary="two crash-recovery episodes: one volatile, one persistent",
        build=_build_crashrec,
    )
)
register_fault_scenario(
    FaultScenario(
        name="churn",
        summary="dynamic membership: one late joiner, two departures",
        build=_build_churn,
    )
)
register_fault_scenario(
    FaultScenario(
        name="coordcrash",
        summary="the round-1 coordinator (first sorted member) crashes at start",
        build=_build_coordcrash,
    )
)
register_fault_scenario(
    FaultScenario(
        name="lossburst",
        summary="25% loss spike on every link for a fifth of the run",
        build=_build_lossburst,
    )
)


def run_scenario(
    *,
    setup: "DetectorSetup | str",
    f: int,
    horizon: float,
    n: int | None = None,
    topology: Topology | None = None,
    latency: LatencyModel | None = None,
    fault_plan: FaultPlan | None = None,
    seed: int = 1,
    loss_rate: float = 0.0,
    start_stagger: float | None = None,
) -> SimCluster:
    """Build the cluster, run it to ``horizon``, return it (trace inside)."""
    setup = setup_for(setup)
    if latency is None:
        latency = ExponentialLatency(mean=0.001)  # the paper's δ ≈ 1 ms
    if start_stagger is None:
        # Desynchronise rounds/heartbeats by up to one period by default.
        start_stagger = max(setup.grace, setup.period)
    cluster = SimCluster(
        n=n,
        topology=topology,
        driver_factory=setup.driver_factory(f),
        latency=latency,
        seed=seed,
        fault_plan=fault_plan,
        loss_rate=loss_rate,
        start_stagger=start_stagger,
    )
    cluster.run(until=horizon)
    return cluster
