"""Canonical scenario builders shared by every experiment and benchmark.

A scenario is: a topology, a latency model, a fault plan, and one detector
deployed on every node.  :func:`run_scenario` assembles the cluster, runs it
to the horizon and returns it (trace included).  Detector selection is by
:class:`DetectorSetup`, so experiment tables can iterate over comparable
configurations of the time-free detector and each baseline.

Parameter conventions follow the paper family's evaluation: Δ (``period`` /
query ``grace``) defaults to 1 s, Θ (``timeout``) to 2 s, and the one-hop
delay δ averages 1 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..ids import ProcessId
from ..sim.cluster import DriverFactory, SimCluster, timed_driver_factory, time_free_driver_factory
from ..sim.faults import FaultPlan
from ..sim.latency import ExponentialLatency, LatencyModel
from ..sim.node import QueryPacing
from ..sim.topology import Topology

__all__ = ["DetectorSetup", "run_scenario", "TIME_FREE", "HEARTBEAT", "GOSSIP", "PHI"]


@dataclass(frozen=True)
class DetectorSetup:
    """Which detector to deploy and with what knobs.

    ``kind`` is one of ``time-free``, ``partial``, ``heartbeat``,
    ``heartbeat-adaptive``, ``gossip``, ``phi``.  Timer-based kinds use
    ``period``/``timeout`` (and ``phi_threshold``); query-response kinds use
    ``grace``/``idle`` (and ``d`` for the partial detector).
    """

    kind: str
    label: str = ""
    grace: float = 1.0
    idle: float = 0.0
    d: int | None = None
    period: float = 1.0
    timeout: float = 2.0
    phi_threshold: float = 8.0
    timeout_increment: float = 0.5
    mobility: bool = True
    with_omega: bool = False

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.kind)

    def with_(self, **changes) -> "DetectorSetup":
        return replace(self, **changes)

    def driver_factory(self, f: int) -> DriverFactory:
        pacing = QueryPacing(grace=self.grace, idle=self.idle)
        if self.kind == "time-free":
            return time_free_driver_factory(f, pacing, with_omega=self.with_omega)
        if self.kind == "partial":
            from ..partial import partial_driver_factory

            if self.d is None:
                raise ConfigurationError("partial detector needs the range density d")
            return partial_driver_factory(self.d, f, pacing, mobility=self.mobility)
        if self.kind in ("heartbeat", "heartbeat-adaptive"):
            from ..baselines.heartbeat import HeartbeatDetector

            adaptive = self.kind == "heartbeat-adaptive"

            def make_heartbeat(pid: ProcessId, members: frozenset) -> HeartbeatDetector:
                return HeartbeatDetector(
                    pid,
                    members,
                    period=self.period,
                    timeout=self.timeout,
                    adaptive=adaptive,
                    timeout_increment=self.timeout_increment,
                )

            return timed_driver_factory(make_heartbeat)
        if self.kind == "gossip":
            from ..baselines.gossip import GossipHeartbeatDetector

            def make_gossip(pid: ProcessId, members: frozenset) -> GossipHeartbeatDetector:
                return GossipHeartbeatDetector(
                    pid, members, period=self.period, timeout=self.timeout
                )

            return timed_driver_factory(make_gossip)
        if self.kind == "phi":
            from ..baselines.phi_accrual import PhiAccrualDetector

            def make_phi(pid: ProcessId, members: frozenset) -> PhiAccrualDetector:
                return PhiAccrualDetector(
                    pid, members, period=self.period, threshold=self.phi_threshold
                )

            return timed_driver_factory(make_phi)
        raise ConfigurationError(f"unknown detector kind {self.kind!r}")


#: Canonical comparable configurations (Δ = 1 s everywhere, Θ = 2 s).
TIME_FREE = DetectorSetup(kind="time-free", label="time-free (async)", grace=1.0)
HEARTBEAT = DetectorSetup(kind="heartbeat", label="heartbeat Θ=2s", period=1.0, timeout=2.0)
GOSSIP = DetectorSetup(kind="gossip", label="gossip FT Θ=2s", period=1.0, timeout=2.0)
PHI = DetectorSetup(kind="phi", label="phi-accrual", period=1.0, phi_threshold=8.0)


def run_scenario(
    *,
    setup: DetectorSetup,
    f: int,
    horizon: float,
    n: int | None = None,
    topology: Topology | None = None,
    latency: LatencyModel | None = None,
    fault_plan: FaultPlan | None = None,
    seed: int = 1,
    start_stagger: float | None = None,
) -> SimCluster:
    """Build the cluster, run it to ``horizon``, return it (trace inside)."""
    if latency is None:
        latency = ExponentialLatency(mean=0.001)  # the paper's δ ≈ 1 ms
    if start_stagger is None:
        # Desynchronise rounds/heartbeats by up to one period by default.
        start_stagger = max(setup.grace, setup.period)
    cluster = SimCluster(
        n=n,
        topology=topology,
        driver_factory=setup.driver_factory(f),
        latency=latency,
        seed=seed,
        fault_plan=fault_plan,
        start_stagger=start_stagger,
    )
    cluster.run(until=horizon)
    return cluster
