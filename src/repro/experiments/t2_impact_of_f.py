"""T2 — impact of the crash bound f on the time-free detector.

``f`` shapes the protocol directly: a query terminates after ``n - f``
responses, so raising ``f`` makes rounds terminate earlier (a smaller
quorum is reached sooner) but also makes the round's verdict rely on fewer
witnesses — at the extreme, under delay variance, more false suspicions
(all self-correcting).  Detection time itself stays pinned near Δ + δ
because the pacing grace dominates the quorum wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from ..harness.runner import run_grid
from ..metrics import detection_stats, mistake_stats
from ..sim.faults import CrashFault, FaultPlan
from ..sim.latency import LogNormalLatency
from .api import ExperimentSpec, Metric, ParamAxis, register_experiment
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["T2Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class T2Params:
    n: int = 30
    #: registry key of the detector under test (sweepable axis)
    detector: str = "time-free"
    f_values: tuple[int, ...] = (1, 5, 10, 14)
    crash_at: float = 15.0
    horizon: float = 40.0
    #: heavy-ish delays so quorum size visibly matters
    delay_median: float = 0.002
    delay_sigma: float = 1.0
    seed: int = 1

    @classmethod
    def full(cls) -> "T2Params":
        return cls(f_values=(1, 3, 5, 7, 10, 14, 20))


def run_cell(params: T2Params, coords: dict, seed: int) -> dict:
    f = coords["f"]
    victim = params.n
    plan = FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)])
    cluster = run_scenario(
        setup=setup_for(params.detector),
        n=params.n,
        f=f,
        horizon=params.horizon,
        latency=LogNormalLatency(params.delay_median, params.delay_sigma),
        fault_plan=plan,
        seed=seed,
    )
    stats = detection_stats(
        cluster.trace, victim, params.crash_at, cluster.correct_processes()
    )
    durations = [r.finished_at - r.started_at for r in cluster.trace.rounds]
    mistakes = mistake_stats(
        cluster.trace, cluster.correct_processes(), horizon=params.horizon
    )
    return {
        "detect_mean": stats.mean_latency,
        "detect_max": stats.max_latency,
        "round_duration": mean(durations) if durations else None,
        "rounds_per_process": len(cluster.trace.rounds) / (params.n - 1),
        "false_suspicions": mistakes.count,
    }


def tabulate(params: T2Params, values: list[dict]) -> Table:
    table = Table(
        title=f"T2: impact of f (time-free detector, n={params.n}, 1 crash)",
        headers=[
            "f",
            "quorum n-f",
            "detect mean (s)",
            "detect max (s)",
            "round duration (s)",
            "rounds/process",
            "false suspicions",
        ],
    )
    for f, value in zip(params.f_values, values):
        table.add_row(
            f,
            params.n - f,
            value["detect_mean"],
            value["detect_max"],
            value["round_duration"],
            value["rounds_per_process"],
            value["false_suspicions"],
        )
    table.add_note(
        "rounds terminate after n-f responses; the grace Δ=1s dominates round time."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="t2",
        title="impact of the crash bound f on the time-free detector",
        params_cls=T2Params,
        axes=(ParamAxis("f", field="f_values"),),
        run_cell=run_cell,
        metrics=(
            Metric("detect_mean", "mean crash-detection latency (s)"),
            Metric("detect_max", "max crash-detection latency (s)"),
            Metric("round_duration", "mean query-round duration (s)"),
            Metric("rounds_per_process", "completed query rounds per process"),
            Metric("false_suspicions", "wrong suspicion intervals among correct pairs"),
        ),
        tabulate=tabulate,
    )
)


def run(params: T2Params = T2Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
