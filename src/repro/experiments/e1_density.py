"""E1 — detection time vs range density d (extension experiment).

Reconstruction of the follow-up report's Figure 2 on our simulator: the
partial-connectivity time-free detector against the Friedman-Tcharny gossip
detector, on f-covering MANET topologies whose range density ``d`` is swept
via the construction's acceptance threshold.  Five crashes are inserted
uniformly during each run.

Expected shape (as documented in the report): the gossip detector's mean
detection time lies in ``[Θ - Δ, Θ]`` at every density (timer-bound); the
time-free detector's detection time *decreases* as density grows — query
messages carry suspicion records to more neighbors per hop — and flattens
around ``Δ + δ`` at high density.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_grid
from ..metrics import all_detection_stats
from ..partial import validate_f_covering, validate_f_covering_fast
from ..sim.faults import uniform_crashes
from ..sim.rng import RngStreams
from ..sim.topology import manet_topology
from .api import (
    DetectorAxis,
    ExperimentSpec,
    Metric,
    ParamAxis,
    TrialAxis,
    register_experiment,
)
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["E1Params", "SPEC", "run_cell", "tabulate", "run"]

#: legacy table labels for the default comparison pair
_LABELS = {"partial": "time-free (async)", "gossip": "Friedman-Tcharny"}


def _label(detector: str) -> str:
    return _LABELS.get(detector, setup_for(detector).label)


@dataclass(frozen=True)
class E1Params:
    n: int = 50
    f: int = 5
    #: registry keys of the detectors under comparison (sweepable axis)
    detectors: tuple[str, ...] = ("partial", "gossip")
    densities: tuple[int, ...] = (7, 12, 20)
    crashes: int = 5
    crash_window: tuple[float, float] = (5.0, 20.0)
    horizon: float = 45.0
    area: float = 700.0
    transmission_range: float = 100.0
    #: independent topologies/crash schedules pooled per density row
    trials: int = 1
    seed: int = 1

    @classmethod
    def full(cls) -> "E1Params":
        return cls(n=100, densities=(7, 10, 14, 20, 28, 40), horizon=90.0, trials=3)

    @classmethod
    def large_n(cls) -> "E1Params":
        """An order of magnitude past the report's figures (n=2000).

        Only feasible on the columnar trace plane: the object recorder's
        per-change suspect snapshots alone would dwarf the simulation.
        Topology validation switches to the fast necessary checks above
        ``_MENGER_VALIDATION_MAX_N`` nodes (see ``_build_topology``).
        """
        return cls(
            n=2000,
            f=4,
            densities=(10, 16),
            crashes=4,
            crash_window=(5.0, 15.0),
            horizon=30.0,
            area=2500.0,
        )


#: above this size the Menger certification (one max-flow per node pair
#: sample) is infeasible; fall back to the cheap necessary conditions
_MENGER_VALIDATION_MAX_N = 500


def _build_topology(params: E1Params, target_density: int, attempt_seed: int):
    """Build an f-covering MANET whose density is at least the target."""
    rng = RngStreams(attempt_seed).stream("e1", "topology", target_density)
    topology = manet_topology(
        params.n,
        params.f,
        rng,
        area=params.area,
        transmission_range=params.transmission_range,
        min_neighbors=target_density - 1,
    )
    if params.n <= _MENGER_VALIDATION_MAX_N:
        validate_f_covering(topology, params.f)
    else:
        validate_f_covering_fast(topology, params.f)
    return topology


def run_cell(params: E1Params, coords: dict, seed: int) -> dict:
    # The MANET construction's acceptance restrictions are calibrated to the
    # params' own seed schedule, so the derived per-cell seed is unused: the
    # same (seed, trial) must rebuild the identical topology for both
    # detectors of a trial.
    trial_seed = params.seed + 1000 * coords["trial"]
    target = coords["target_d"]
    topology = _build_topology(params, target, trial_seed)
    victims_rng = RngStreams(trial_seed).stream("e1", "victims", target)
    victims = victims_rng.sample(sorted(topology.ids()), params.crashes)
    plan = uniform_crashes(
        victims,
        victims_rng,
        start=params.crash_window[0],
        end=params.crash_window[1],
    )
    setup = setup_for(coords["detector"]).with_(label=_label(coords["detector"]))
    if setup.kind == "partial":
        # The partial detector's quorum is d - f; d must be the topology's
        # actual range density.
        setup = setup.with_(grace=1.0, d=topology.range_density())
    cluster = run_scenario(
        setup=setup,
        topology=topology.copy(),
        f=params.f,
        horizon=params.horizon,
        fault_plan=plan,
        seed=trial_seed,
    )
    stats = all_detection_stats(cluster.trace, plan, cluster.membership)
    return {
        "actual_d": topology.range_density(),
        "latencies": [
            latency for stat in stats for latency in stat.latencies.values()
        ],
        "undetected": sum(len(stat.undetected) for stat in stats),
    }


def tabulate(params: E1Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"E1: detection time vs range density "
            f"(MANET, n={params.n}, f={params.f}, {params.crashes} crashes)"
        ),
        headers=[
            "target d",
            "actual d",
            "detector",
            "detect min (s)",
            "detect mean (s)",
            "detect max (s)",
            "undetected",
        ],
    )
    grouped: dict[tuple[int, str], dict] = {}
    densities_by_target: dict[int, list[int]] = {}
    for coords, value in zip(SPEC.cells(params), values):
        key = (coords["target_d"], coords["detector"])
        group = grouped.setdefault(key, {"latencies": [], "undetected": 0})
        group["latencies"].extend(value["latencies"])
        group["undetected"] += value["undetected"]
        if coords["detector"] == params.detectors[0]:
            densities_by_target.setdefault(coords["target_d"], []).append(
                value["actual_d"]
            )
    for target in params.densities:
        observed = densities_by_target[target]
        actual_d = round(sum(observed) / len(observed))
        for detector in params.detectors:
            group = grouped[(target, detector)]
            latencies = group["latencies"]
            table.add_row(
                target,
                actual_d,
                _label(detector),
                min(latencies) if latencies else None,
                sum(latencies) / len(latencies) if latencies else None,
                max(latencies) if latencies else None,
                group["undetected"],
            )
    table.add_note("Δ = 1 s, Θ = 2 s, one-hop δ ≈ 1 ms; suspicions flood hop by hop.")
    table.add_note(
        "expected: gossip flat within [Θ-Δ, Θ]; time-free decreasing with d towards Δ+δ."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="e1",
        title="detection time vs range density on f-covering MANETs",
        params_cls=E1Params,
        axes=(ParamAxis("target_d", field="densities"), TrialAxis(), DetectorAxis()),
        run_cell=run_cell,
        metrics=(
            Metric("actual_d", "range density of the built topology"),
            Metric("latencies", "pooled per-observer detection latencies (s)"),
            Metric("undetected", "(observer, crash) pairs never detected"),
        ),
        tabulate=tabulate,
    )
)


def run(params: E1Params = E1Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
