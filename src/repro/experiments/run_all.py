"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

``--full`` runs paper-scale parameters (minutes); the default quick presets
finish in well under a minute and show the same shapes.  ``--only T1,F2``
restricts to a comma-separated subset.  ``--markdown`` emits
EXPERIMENTS.md-ready tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    a1_grace_ablation,
    a2_loss_resilience,
    e1_density,
    e2_mobility,
    f1_detection_cdf,
    f2_delay_variance,
    f3_mp_sensitivity,
    t1_detection_vs_n,
    t2_impact_of_f,
    t3_message_load,
    t4_consensus,
)
from .report import Table

EXPERIMENTS = {
    "T1": (t1_detection_vs_n, "T1Params"),
    "T2": (t2_impact_of_f, "T2Params"),
    "T3": (t3_message_load, "T3Params"),
    "T4": (t4_consensus, "T4Params"),
    "F1": (f1_detection_cdf, "F1Params"),
    "F2": (f2_delay_variance, "F2Params"),
    "F3": (f3_mp_sensitivity, "F3Params"),
    "E1": (e1_density, "E1Params"),
    "E2": (e2_mobility, "E2Params"),
    "A1": (a1_grace_ablation, "A1Params"),
    "A2": (a2_loss_resilience, "A2Params"),
}


def run_experiment(exp_id: str, *, full: bool = False) -> list[Table]:
    """Run one experiment by id; returns its table(s)."""
    module, params_name = EXPERIMENTS[exp_id]
    params_cls = getattr(module, params_name)
    params = params_cls.full() if full else params_cls()
    result = module.run(params)
    return result if isinstance(result, list) else [result]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale parameters")
    parser.add_argument("--only", default="", help="comma-separated experiment ids")
    parser.add_argument("--markdown", action="store_true", help="markdown output")
    args = parser.parse_args(argv)
    wanted = [e.strip().upper() for e in args.only.split(",") if e.strip()] or list(
        EXPERIMENTS
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; choose from {list(EXPERIMENTS)}")
    for exp_id in wanted:
        started = time.perf_counter()
        tables = run_experiment(exp_id, full=args.full)
        elapsed = time.perf_counter() - started
        for table in tables:
            print(table.render_markdown() if args.markdown else table.render())
            print()
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
