"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Kept as a thin sequential wrapper over the experiment registry for
backwards compatibility — prefer ``python -m repro run`` (parallel
workers, result caching, JSON artifacts).  The experiment set is the
:mod:`repro.experiments.api` registry in canonical order — historically a
hard-coded module tuple sat between registration and this wrapper, so a
newly registered experiment was silently missing from ``run_all`` and the
reports until someone edited the tuple; now anything the registry knows
is included automatically (built-in auto-import is conformance-tested,
so an in-repo module cannot register without being discovered).
``--full`` runs paper-scale parameters (minutes); the
default quick presets finish in well under a minute and show the same
shapes.  ``--only T1,F2`` restricts to a comma-separated subset.
``--markdown`` emits EXPERIMENTS.md-ready tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..harness.registry import all_specs
from ..harness.runner import run_grid
from .report import Table


def run_experiment(exp_id: str, *, full: bool = False) -> list[Table]:
    """Run one experiment by id; returns its table(s)."""
    spec = all_specs()[exp_id.lower()]
    return run_grid(spec, spec.make_params(full=full)).tables()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale parameters")
    parser.add_argument("--only", default="", help="comma-separated experiment ids")
    parser.add_argument("--markdown", action="store_true", help="markdown output")
    args = parser.parse_args(argv)
    known = [exp_id.upper() for exp_id in all_specs()]
    wanted = [e.strip().upper() for e in args.only.split(",") if e.strip()] or known
    unknown = [e for e in wanted if e not in known]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; choose from {known}")
    for exp_id in wanted:
        started = time.perf_counter()
        tables = run_experiment(exp_id, full=args.full)
        elapsed = time.perf_counter() - started
        for table in tables:
            print(table.render_markdown() if args.markdown else table.render())
            print()
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
