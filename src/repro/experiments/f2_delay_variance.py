"""F2 — accuracy under asynchrony: who keeps an accuracy anchor?

No process ever crashes in these runs, so every suspicion is false.  One
process (p1) is *responsive* in the paper's RP sense: its links are 8x
faster than everyone else's (:class:`~repro.sim.latency.BiasedLatency`).
◇S only promises that *some* correct process is eventually never suspected
— that anchor is what consensus liveness consumes — so the decisive metric
is the **responsive process's** false suspicions, not the total (transient
suspicions of slow processes are by-design and self-correcting in the
time-free protocol).

* **Regime shift** (:func:`run_regime_shift`): all delays multiply by a
  factor mid-run.  Rescaling preserves response *order*, so the responsive
  process keeps winning quorums and the time-free detector never suspects
  it, at any factor.  Fixed timeouts are calibrated in absolute time: once
  the inflated delays approach Θ, even the responsive process's heartbeats
  miss the deadline — the anchor is lost.  Phi-accrual re-adapts after its
  window refills but is wrong during the transition.
* **Variance sweep** (:func:`run_variance_sweep`): log-normal delays with
  growing σ at a fixed median; same metrics, tail-driven instead of
  shift-driven.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_cells, run_grid
from ..metrics import accuracy_stabilization, mistake_stats
from ..sim.latency import (
    BiasedLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    RegimeShiftLatency,
)
from .api import (
    ConstAxis,
    DetectorAxis,
    ExperimentSpec,
    Metric,
    ParamAxis,
    Section,
    register_experiment,
)
from .report import Table
from .scenarios import DetectorSetup, run_scenario, setup_for

__all__ = [
    "F2Params",
    "SPEC",
    "run_cell",
    "tabulate",
    "run",
    "run_regime_shift",
    "run_variance_sweep",
]


#: legacy table labels for the default comparison trio
_LABELS = {
    "time-free": "time-free",
    "heartbeat": "heartbeat Θ=2s",
    "phi": "phi-accrual t=8",
}


@dataclass(frozen=True)
class F2Params:
    n: int = 15
    f: int = 3
    #: registry keys of the detectors under comparison (sweepable axis)
    detectors: tuple[str, ...] = ("time-free", "heartbeat", "phi")
    horizon: float = 60.0
    responsive: int = 1
    responsive_speedup: float = 8.0
    base_delay_mean: float = 0.005
    shift_at: float = 20.0
    shift_factors: tuple[float, ...] = (1.0, 50.0, 400.0, 2000.0)
    sigmas: tuple[float, ...] = (0.5, 1.5, 2.5)
    delay_median: float = 0.005
    seed: int = 1

    @classmethod
    def full(cls) -> "F2Params":
        return cls(
            n=30,
            f=6,
            horizon=120.0,
            shift_factors=(1.0, 10.0, 50.0, 200.0, 400.0, 1000.0, 2000.0),
            sigmas=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
        )


def _setups(params: F2Params) -> dict[str, DetectorSetup]:
    return {
        detector: setup_for(detector).with_(
            label=_LABELS.get(detector, setup_for(detector).label)
        )
        for detector in params.detectors
    }


def _biased(params: F2Params, base: LatencyModel) -> LatencyModel:
    return BiasedLatency(
        base,
        favored=frozenset({params.responsive}),
        speedup=params.responsive_speedup,
        bidirectional=True,
    )


def run_cell(params: F2Params, coords: dict, seed: int) -> dict:
    if coords["sweep"] == "shift":
        latency = _biased(
            params,
            RegimeShiftLatency(
                ExponentialLatency(params.base_delay_mean),
                shift_at=params.shift_at,
                factor=coords["stress"],
            ),
        )
    else:
        latency = _biased(params, LogNormalLatency(params.delay_median, coords["stress"]))
    cluster = run_scenario(
        setup=_setups(params)[coords["detector"]],
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        latency=latency,
        seed=seed,
    )
    correct = cluster.correct_processes()
    total = mistake_stats(cluster.trace, correct, horizon=params.horizon)
    responsive_suspicions = sum(
        len(cluster.trace.suspicion_intervals(obs, params.responsive, horizon=params.horizon))
        for obs in correct
        if obs != params.responsive
    )
    stabilization = accuracy_stabilization(cluster.trace, correct, horizon=params.horizon)
    return {
        "total": total.count,
        "responsive": responsive_suspicions,
        "anchor_ok": stabilization[params.responsive] is not None,
    }


def _headers() -> list[str]:
    return [
        "stress",
        "detector",
        "total false susp.",
        "responsive-node false susp.",
        "responsive node clear at end",
    ]


def _fill(
    table: Table, params: F2Params, grid: list[dict], values: list[dict], stress_format
) -> Table:
    setups = _setups(params)
    for coords, value in zip(grid, values):
        table.add_row(
            stress_format(coords["stress"]),
            setups[coords["detector"]].label,
            value["total"],
            value["responsive"],
            value["anchor_ok"],
        )
    return table


def _shift_table(params: F2Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"F2a: delay regime shift at t={params.shift_at}s "
            f"(n={params.n}, no crashes, p{params.responsive} responsive 8x)"
        ),
        headers=_headers(),
    )
    _fill(
        table, params, SPEC.section_cells("shift", params), values,
        lambda stress: f"x{stress:g}",
    )
    table.add_note(
        "delay rescaling preserves response order: the time-free detector "
        "never suspects the responsive node at any factor; fixed timeouts "
        "lose the anchor once inflated delays reach Θ."
    )
    table.add_note(
        "total counts include by-design transient suspicions of slow nodes "
        "(self-correcting via the mistake mechanism); ◇S consumers only need "
        "the anchor column."
    )
    return table


def _sigma_table(params: F2Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"F2b: delay variance sweep (log-normal, median="
            f"{params.delay_median * 1000:g} ms, n={params.n}, no crashes, "
            f"p{params.responsive} responsive 8x)"
        ),
        headers=_headers(),
    )
    return _fill(
        table, params, SPEC.section_cells("sigma", params), values,
        lambda stress: f"σ={stress:g}",
    )


def tabulate(params: F2Params, values: list[dict]) -> list[Table]:
    split = len(SPEC.section_cells("shift", params))
    return [
        _shift_table(params, values[:split]),
        _sigma_table(params, values[split:]),
    ]


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="f2",
        title="accuracy under asynchrony (regime shift + variance sweep)",
        params_cls=F2Params,
        axes=(
            Section(
                name="shift",
                axes=(
                    ConstAxis("sweep", value="shift"),
                    ParamAxis("stress", field="shift_factors"),
                    DetectorAxis(),
                ),
            ),
            Section(
                name="sigma",
                axes=(
                    ConstAxis("sweep", value="sigma"),
                    ParamAxis("stress", field="sigmas"),
                    DetectorAxis(),
                ),
            ),
        ),
        run_cell=run_cell,
        metrics=(
            Metric("total", "false suspicions among all correct pairs"),
            Metric("responsive", "false suspicions of the responsive (anchor) node"),
            Metric("anchor_ok", "responsive node unsuspected at the horizon"),
        ),
        tabulate=tabulate,
    )
)


def run_regime_shift(params: F2Params = F2Params()) -> Table:
    return _shift_table(
        params, run_cells(SPEC, params, SPEC.section_cells("shift", params))
    )


def run_variance_sweep(params: F2Params = F2Params()) -> Table:
    return _sigma_table(
        params, run_cells(SPEC, params, SPEC.section_cells("sigma", params))
    )


def run(params: F2Params = F2Params()) -> list[Table]:
    return run_grid(SPEC, params).tables()
