"""F1 — distribution (CDF) of crash detection time.

Pools per-observer detection latencies over many independent trials (one
crash each, fresh seed per trial) and reports quantiles for the time-free
detector and the heartbeat baseline.

Expected shape: the heartbeat CDF is a ramp supported on ``[Θ - Δ, Θ]``
(where the crash falls inside the beat/timer cycle is uniform); the
time-free CDF concentrates slightly above Δ (grace) + δ with a short tail
from quorum arrival jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_grid
from ..metrics import detection_stats
from ..sim.faults import CrashFault, FaultPlan
from .api import (
    DetectorAxis,
    ExperimentSpec,
    Metric,
    TrialAxis,
    per_detector_headers,
    register_experiment,
)
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["F1Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class F1Params:
    n: int = 20
    f: int = 4
    #: registry keys of the detectors under comparison (sweepable axis)
    detectors: tuple[str, ...] = ("time-free", "heartbeat")
    trials: int = 10
    crash_at: float = 10.0
    horizon: float = 25.0
    quantiles: tuple[float, ...] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)
    seed: int = 1

    @classmethod
    def full(cls) -> "F1Params":
        return cls(n=30, f=6, trials=50)


def run_cell(params: F1Params, coords: dict, seed: int) -> dict:
    victim = params.n  # symmetric under full mesh
    plan = FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)])
    cluster = run_scenario(
        setup=setup_for(coords["detector"]),
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        fault_plan=plan,
        seed=seed,
    )
    stats = detection_stats(
        cluster.trace, victim, params.crash_at, cluster.correct_processes()
    )
    return {"latencies": sorted(stats.latencies.values())}


def _quantile(sorted_values: list[float], q: float) -> float | None:
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def tabulate(params: F1Params, values: list[dict]) -> Table:
    pooled: dict[str, list[float]] = {detector: [] for detector in params.detectors}
    for coords, value in zip(SPEC.cells(params), values):
        pooled[coords["detector"]].extend(value["latencies"])
    series = {detector: sorted(pooled[detector]) for detector in params.detectors}
    table = Table(
        title=(
            f"F1: detection-time distribution (n={params.n}, f={params.f}, "
            f"{params.trials} trials pooled)"
        ),
        headers=["quantile", *per_detector_headers(params.detectors)],
    )
    for q in params.quantiles:
        table.add_row(
            f"p{int(q * 100)}",
            *(_quantile(series[detector], q) for detector in params.detectors),
        )
    table.add_row("min", *(series[d][0] if series[d] else None for d in params.detectors))
    table.add_row("max", *(series[d][-1] if series[d] else None for d in params.detectors))
    table.add_note("heartbeat support is [Θ-Δ, Θ] = [1, 2] s; time-free ≈ Δ + δ.")
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="f1",
        title="distribution (CDF) of crash detection time",
        params_cls=F1Params,
        axes=(DetectorAxis(), TrialAxis()),
        run_cell=run_cell,
        metrics=(
            Metric("latencies", "sorted per-observer detection latencies of the crash (s)"),
        ),
        tabulate=tabulate,
    )
)


def run(params: F1Params = F1Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
