"""C1 — consensus QoS: decision latency vs detector QoS under fault stress.

Q1 measures the detector's own QoS axes (detection time, accuracy, load);
this experiment closes the loop and measures what an *application* pays for
them.  Each cell deploys one registered detector family under one named
fault scenario and runs a self-clocking sequence of consensus instances
over it (the protocol is a registry key too — CT by default, ``-p
protocol=omega`` for the early-deciding leader variant).  The reported
numbers are the application-side QoS of Reis & Vieira's framing: decision
latency, rounds to decide, oracle-aborted rounds — next to the detector's
epoch-scored query accuracy from the very same trace, so one row links
cause (detector mistakes/stalls) to effect (stalled or churning consensus).

Expected shape: fault-free-ish scenarios (``lossburst``) decide every
instance in one round for every family; ``coordcrash`` makes the in-flight
instance pay the full crash-detection latency (query families ≈ Δ + δ,
timer families ≈ Θ), separating the families on the latency axis; the
``partition`` window (no majority side) stalls every instance until the
heal, and timer families churn aborted rounds meanwhile, separating the
nack axis.  Agreement and validity hold in every cell — safety does not
depend on detector quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..consensus import ConsensusHarness
from ..detectors import detector_keys, get_detector
from ..harness.runner import run_grid
from ..metrics import consensus_message_load, consensus_stats, epoch_mistake_stats
from ..sim.latency import LogNormalLatency
from .api import (
    Banded,
    DetectorAxis,
    ExperimentSpec,
    FaultAxis,
    Metric,
    group_values,
    register_experiment,
    stat_mean,
)
from .report import Table
from .scenarios import fault_plan_for, setup_for

__all__ = ["C1Params", "SPEC", "run_cell", "tabulate", "run"]


def _all_detectors() -> tuple[str, ...]:
    return tuple(detector_keys())


#: every fault scenario the cell grid stresses by default — coordcrash (the
#: consensus-specific one) plus the four shared presets from the fault plane
_ALL_FAULTS = ("coordcrash", "partition", "crashrec", "churn", "lossburst")


@dataclass(frozen=True)
class C1Params:
    n: int = 8
    f: int = 2
    #: registry keys under comparison — defaults to every registered family
    detectors: tuple[str, ...] = field(default_factory=_all_detectors)
    #: consensus-protocol registry key (``ct`` or ``omega``)
    protocol: str = "ct"
    #: length of the self-clocking instance sequence per run
    instances: int = 4
    #: think time between a local decision and the next propose (s)
    instance_gap: float = 6.0
    horizon: float = 40.0
    #: log-normal one-hop delays, same axis q1 stresses
    delay_median: float = 0.001
    delay_sigma: float = 0.5
    #: first propose — after the coordcrash instant, before any fault window
    propose_at: float = 0.5
    seed: int = 1
    #: fault-scenario names (see repro.experiments.scenarios); unlike q1
    #: this axis is *always* on — a consensus workload with no adversity
    #: decides in one round everywhere and separates nothing.
    faults: tuple[str, ...] = _ALL_FAULTS

    @classmethod
    def full(cls) -> "C1Params":
        return cls(n=12, f=3, instances=6, horizon=60.0, instance_gap=7.0)

    # -- single-scenario presets ------------------------------------------
    @classmethod
    def coordcrash(cls) -> "C1Params":
        """Round-1 coordinator crashes at start: detection latency on the path."""
        return cls(faults=("coordcrash",))

    @classmethod
    def partition(cls) -> "C1Params":
        """Even split (no majority side): every instance stalls to the heal."""
        return cls(faults=("partition",))

    @classmethod
    def crashrec(cls) -> "C1Params":
        """Crash-recovery episodes: volatile and persistent restarts."""
        return cls(faults=("crashrec",))

    @classmethod
    def churn(cls) -> "C1Params":
        """Dynamic membership: a late joiner plus two departures."""
        return cls(faults=("churn",))

    @classmethod
    def lossburst(cls) -> "C1Params":
        """A 25% per-link loss spike — retries pay, decisions still land."""
        return cls(faults=("lossburst",))


def run_cell(params: C1Params, coords: dict, seed: int) -> dict:
    fault = coords["fault"]
    setup = setup_for(coords["detector"])
    if "d" in get_detector(setup.kind).required:
        # Full mesh: every range is the whole system, so the density is n.
        setup = setup.with_(d=params.n)
    if setup.retry is None:
        # Same remedy as q1's stress cells: query families stall when a
        # partition or a burst eats the quorum; the lossy-channel
        # rebroadcast resumes them, and the knob is a no-op for timers.
        setup = setup.with_(retry=2.0)
    members = tuple(range(1, params.n + 1))
    plan = fault_plan_for(
        fault, members=members, f=params.f, horizon=params.horizon
    )
    harness = ConsensusHarness(
        n=params.n,
        f=params.f,
        protocol=params.protocol,
        detector=setup.kind,
        detector_params=setup.registry_params(),
        latency=LogNormalLatency(params.delay_median, params.delay_sigma),
        seed=seed,
        fault_plan=plan,
        instances=params.instances,
        propose_at=params.propose_at,
        instance_gap=params.instance_gap,
    )
    result = harness.run(until=params.horizon)
    stats = consensus_stats(result)
    trace = harness.cluster.trace
    mistakes = epoch_mistake_stats(
        trace, plan, harness.cluster.membership, horizon=params.horizon
    )
    return {
        "decided": stats.decided,
        "latency_mean": stats.latency_mean,
        "latency_max": stats.latency_max,
        "rounds_mean": stats.rounds_mean,
        "aborted_rounds": stats.aborted_rounds,
        "nacks": stats.nacks,
        "agreement": stats.agreement,
        "validity": stats.validity,
        "consensus_msgs_per_s": consensus_message_load(
            trace, horizon=params.horizon, n=params.n
        ),
        # The detector's epoch-scored accuracy from the same trace — the
        # QoS number the latency column should correlate with.
        "query_accuracy": (
            mistakes.query_accuracy_probability
            if mistakes.alive_pair_time
            else None
        ),
    }


def tabulate(params: C1Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"C1: consensus QoS over each detector — {params.protocol} protocol, "
            f"{params.instances} instances (n={params.n}, f={params.f})"
        ),
        headers=[
            "fault",
            "detector",
            "decided",
            "latency mean (s)",
            "latency max (s)",
            "rounds",
            "aborted rounds",
            "query accuracy P_A",
            "consensus msgs/s",
        ],
        precision=4,
    )
    grouped = group_values(SPEC.cells(params), values, "fault", "detector")
    for fault in params.faults:
        for detector in params.detectors:
            cells = grouped[(fault, detector)]
            decided = [v for v in cells if v["latency_mean"] is not None]
            table.add_row(
                fault,
                setup_for(detector).label,
                f"{sum(v['decided'] for v in cells)}/{params.instances * len(cells)}",
                stat_mean(v["latency_mean"] for v in decided),
                stat_mean(v["latency_max"] for v in decided),
                stat_mean(v["rounds_mean"] for v in decided),
                max(v["aborted_rounds"] for v in cells),
                stat_mean(
                    v["query_accuracy"]
                    for v in cells
                    if v["query_accuracy"] is not None
                ),
                stat_mean(v["consensus_msgs_per_s"] for v in cells),
            )
    table.add_note(
        "decision latency = first correct propose to last correct decision, "
        "per instance; aborted rounds = phase-3 nacks (oracle-abandoned "
        "rounds) of the worst correct process."
    )
    table.add_note(
        "agreement and validity held in every cell unless a metric row says "
        "otherwise — consensus safety never depends on detector quality."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="c1",
        title="Consensus QoS: decision latency vs detector QoS under fault stress",
        params_cls=C1Params,
        axes=(FaultAxis(), DetectorAxis()),
        run_cell=run_cell,
        metrics=(
            Metric("decided", "instances every correct process decided"),
            Metric("latency_mean", "mean per-instance decision latency (s)"),
            Metric("latency_max", "worst per-instance decision latency (s)"),
            Metric("rounds_mean", "mean first-decider round (1 = fast path)"),
            Metric("aborted_rounds", "worst per-process oracle-aborted rounds"),
            Metric("nacks", "total phase-3 nacks by correct processes"),
            Metric("agreement", "no two processes decided differently"),
            Metric("validity", "decisions were proposed values"),
            Metric("consensus_msgs_per_s", "consensus messages per second per process"),
            Metric("query_accuracy", "detector epoch-scored accuracy P_A, same trace"),
        ),
        shapes=(
            Banded("query_accuracy", lo=0.0, hi=1.0),
            Banded("latency_mean", lo=0.0),
            Banded("latency_max", lo=0.0),
            Banded("consensus_msgs_per_s", lo=0.0),
        ),
        tabulate=tabulate,
    )
)


def run(params: C1Params | None = None) -> Table:
    return run_grid(SPEC, params if params is not None else C1Params()).tables()[0]
