"""Declarative experiment API: generic axes, specs, and the plugin registry.

This is to experiments what :mod:`repro.detectors` is to detector families:
one declarative surface the rest of the system consumes.  An experiment is
an :class:`ExperimentSpec` — id, title, params dataclass, a declarative
**grid** (axes, expanded to cells in canonical reporting order), the cell
runner, the metrics each cell reports, and the tabulation layout — and
registers itself with :func:`register_experiment`.  The harness registry,
``run_all``, and the CLI all resolve experiments from here, so a
registered experiment reaches ``repro run``/``repro experiments``/CI with
no further wiring.  External plugins register by importing before use —
either explicitly or via the ``REPRO_PLUGINS`` environment variable
(:mod:`repro.harness.plugins`), which the registry loads alongside the
built-ins; in-repo experiment modules also take one entry in ``_BUILTIN_MODULES``
(the auto-import + canonical-order mapping — a conformance test fails if
a module registers an experiment without one).

Axes
----
A grid is the cartesian product of :class:`Axis` objects (the *last* axis
varies fastest, matching a nested ``for`` loop), or a concatenation of
:class:`Section` products for multi-part experiments (f2's regime-shift
and variance sweeps).  The shared axis kinds cover every pattern the
experiments use:

* :class:`ParamAxis` — coordinate values drawn from a params field;
* :class:`TrialAxis` — ``range(params.trials)`` repetition;
* :class:`DetectorAxis` — :mod:`repro.detectors` registry keys drawn from
  a params field, validated against the registry at expansion time;
* :class:`FixedAxis` / :class:`ConstAxis` — statically known values
  (scenario names, ablation variants, section tags).

Cell **ordering and seeding are load-bearing**: artifacts are
byte-identical across runs, and per-cell seeds are derived from the cell's
coordinates (:func:`repro.harness.spec.cell_seed`), so an axis change is
an observable experiment change.  The registry-parametrized conformance
suite pins the legacy grids to committed goldens.

Tabulation helpers
------------------
:func:`group_values`, :func:`stat_mean` and :func:`per_detector_headers`
centralise the aggregation boilerplate the hand-rolled ``tabulate``
functions used to duplicate (per-detector column layouts, mean/max stat
aggregation over trials).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from statistics import mean as _mean
from typing import Any, ClassVar, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from ..harness.spec import ScenarioSpec

__all__ = [
    "Axis",
    "ParamAxis",
    "TrialAxis",
    "DetectorAxis",
    "FaultAxis",
    "FixedAxis",
    "ConstAxis",
    "Section",
    "Metric",
    "Monotone",
    "Banded",
    "check_shapes",
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_keys",
    "group_values",
    "stat_mean",
    "per_detector_headers",
]


# ---------------------------------------------------------------------------
# axes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Axis:
    """One coordinate of an experiment grid.

    ``name`` is the coordinate key in every cell dict (and therefore part
    of the per-cell seed derivation); :meth:`expand` yields the axis's
    values under a given params instance.

    An ``optional`` axis (class-level flag) is **dropped from the grid
    entirely** when it expands to no values — the cells then carry no
    coordinate for it, so per-cell seeds and artifacts are byte-identical
    to a grid that never declared the axis.  This is how opt-in axes
    (:class:`FaultAxis`) join legacy experiments without perturbing their
    pinned goldens.
    """

    name: str
    optional: ClassVar[bool] = False

    def expand(self, params: Any) -> Sequence[Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class ParamAxis(Axis):
    """Values drawn from a params field (a tuple, e.g. ``sizes``)."""

    field: str

    def expand(self, params: Any) -> Sequence[Any]:
        return tuple(getattr(params, self.field))


@dataclass(frozen=True)
class TrialAxis(Axis):
    """``range(params.<field>)`` — independent repetitions of a cell."""

    name: str = "trial"
    field: str = "trials"

    def expand(self, params: Any) -> Sequence[Any]:
        return tuple(range(getattr(params, self.field)))


@dataclass(frozen=True)
class DetectorAxis(Axis):
    """Detector registry keys drawn from a params field.

    Keys are validated against :mod:`repro.detectors` at expansion time so
    a typo fails before any cell burns compute.  The field may be a tuple
    (``detectors``, the sweepable comparison set) or a single key string
    (``detector``).
    """

    name: str = "detector"
    field: str = "detectors"

    def expand(self, params: Any) -> Sequence[Any]:
        from ..detectors import get_detector

        raw = getattr(params, self.field)
        keys = (raw,) if isinstance(raw, str) else tuple(raw)
        for key in keys:
            get_detector(key)  # raises ConfigurationError on unknown keys
        return keys


@dataclass(frozen=True)
class FaultAxis(Axis):
    """Fault-scenario names drawn from a params field (default ``faults``).

    Values are names from the :mod:`repro.experiments.scenarios` fault
    registry (``partition``, ``crashrec``, ``churn``, ``lossburst``...),
    validated at expansion time.  The axis is *optional*: with the field
    empty (every legacy params default) it vanishes from the grid, so
    adding it to an experiment is byte-invisible until a preset or
    override opts in.
    """

    name: str = "fault"
    field: str = "faults"
    optional: ClassVar[bool] = True

    def expand(self, params: Any) -> Sequence[Any]:
        from .scenarios import get_fault_scenario

        names = tuple(getattr(params, self.field))
        for name in names:
            get_fault_scenario(name)  # raises ConfigurationError on unknown names
        return names


@dataclass(frozen=True)
class FixedAxis(Axis):
    """Statically known values (scenario names, ablation variants...)."""

    values: tuple[Any, ...]

    def expand(self, params: Any) -> Sequence[Any]:
        return self.values


@dataclass(frozen=True)
class ConstAxis(Axis):
    """A single fixed value — tags every cell of a section (e.g. ``sweep``)."""

    value: Any

    def expand(self, params: Any) -> Sequence[Any]:
        return (self.value,)


@dataclass(frozen=True)
class Section:
    """A named sub-grid: the cartesian product of its axes.

    Multi-part experiments (f2) concatenate sections; single-part
    experiments use one anonymous section (built implicitly from a flat
    axis tuple).  ``name`` lets tabulation address one section's cells
    (:meth:`ExperimentSpec.section_cells`).
    """

    axes: tuple[Axis, ...]
    name: str = ""

    def __post_init__(self) -> None:
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            # A duplicate name would silently collapse in the cell dict,
            # dropping an axis from the sweep while multiplying the grid.
            raise ConfigurationError(
                f"duplicate axis names in section {self.name or '<anonymous>'!r}: {names}"
            )

    def cells(self, params: Any) -> list[dict[str, Any]]:
        # Optional axes with no values under these params disappear from
        # the product — no coordinate key, hence unchanged cell seeds.
        axes = [
            axis
            for axis in self.axes
            if not (axis.optional and not axis.expand(params))
        ]
        values = [axis.expand(params) for axis in axes]
        return [
            {axis.name: value for axis, value in zip(axes, combo)}
            for combo in itertools.product(*values)
        ]


def _as_sections(axes: tuple) -> tuple[Section, ...]:
    """Normalise a spec's ``axes`` to sections (flat axes -> one section)."""
    if not axes:
        return ()
    if all(isinstance(item, Section) for item in axes):
        return tuple(axes)
    if all(isinstance(item, Axis) for item in axes):
        return (Section(axes=tuple(axes)),)
    raise ConfigurationError(
        "axes must be all Axis or all Section instances, not a mixture"
    )


@dataclass(frozen=True)
class _AxesGrid:
    """The ``cells`` callable derived from a spec's declarative axes."""

    sections: tuple[Section, ...]

    def __call__(self, params: Any) -> list[dict[str, Any]]:
        return [cell for section in self.sections for cell in section.cells(params)]


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Metric:
    """One value every cell of the experiment reports.

    ``name`` is the key in ``run_cell``'s returned mapping; ``help`` is a
    one-liner for docs and the CLI.  The conformance suite asserts that
    every declared metric actually appears in every cell value.
    """

    name: str
    help: str = ""


# ---------------------------------------------------------------------------
# expected shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Monotone:
    """Declares that a metric moves monotonically along one axis.

    For every fixed combination of the *other* coordinates (trials are
    averaged out first), the metric's means must be non-increasing
    (``direction="decreasing"``) or non-decreasing (``"increasing"``)
    along the ``along`` axis, up to an absolute ``tolerance`` per step.
    """

    metric: str
    along: str
    direction: str = "increasing"
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("increasing", "decreasing"):
            raise ConfigurationError(
                f"direction must be 'increasing' or 'decreasing', got {self.direction!r}"
            )

    def check(
        self, cells: Sequence[Mapping[str, Any]], values: Sequence[Mapping[str, Any]]
    ) -> list[str]:
        groups: dict[tuple, dict[Any, list[float]]] = {}
        for coords, value in zip(cells, values):
            if self.along not in coords:
                continue
            metric = value.get(self.metric)
            if metric is None:
                continue
            key = tuple(
                (name, coord)
                for name, coord in sorted(coords.items(), key=repr)
                if name not in (self.along, "trial")
            )
            series = groups.setdefault(key, {})
            series.setdefault(coords[self.along], []).append(float(metric))
        violations: list[str] = []
        for key, series in groups.items():
            points = [(along, _mean(samples)) for along, samples in series.items()]
            for (prev_at, prev), (cur_at, cur) in zip(points, points[1:]):
                drift = cur - prev if self.direction == "increasing" else prev - cur
                if drift < -self.tolerance:
                    where = dict(key) or "all cells"
                    violations.append(
                        f"{self.metric} not {self.direction} along {self.along} "
                        f"at {where}: {prev:.6g} @ {self.along}={prev_at!r} -> "
                        f"{cur:.6g} @ {self.along}={cur_at!r}"
                    )
        return violations


@dataclass(frozen=True)
class Banded:
    """Declares that a metric stays inside ``[lo, hi]`` in every cell."""

    metric: str
    lo: float | None = None
    hi: float | None = None

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise ConfigurationError("a band needs at least one of lo / hi")

    def check(
        self, cells: Sequence[Mapping[str, Any]], values: Sequence[Mapping[str, Any]]
    ) -> list[str]:
        violations: list[str] = []
        for coords, value in zip(cells, values):
            metric = value.get(self.metric)
            if metric is None:
                continue
            metric = float(metric)
            if self.lo is not None and metric < self.lo:
                violations.append(
                    f"{self.metric}={metric:.6g} below lo={self.lo:g} at {dict(coords)}"
                )
            elif self.hi is not None and metric > self.hi:
                violations.append(
                    f"{self.metric}={metric:.6g} above hi={self.hi:g} at {dict(coords)}"
                )
        return violations


def check_shapes(
    spec: "ExperimentSpec",
    params: Any,
    values: Sequence[Mapping[str, Any]],
) -> list[str]:
    """Every declared shape violation for a finished grid (empty = clean).

    ``values`` must be in ``spec.cells(params)`` order, exactly as handed
    to ``tabulate``.  The conformance suite runs this generically over
    every registered experiment.
    """
    cells = spec.cells(params)
    violations: list[str] = []
    for shape in spec.shapes:
        violations.extend(shape.check(cells, values))
    return violations


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec(ScenarioSpec):
    """A :class:`~repro.harness.spec.ScenarioSpec` declared through axes.

    ``axes``
        The grid: a tuple of :class:`Axis` (one section) or
        :class:`Section` objects (concatenated).  ``cells`` is derived
        from it — cell ordering is the sections in order, each expanded as
        a nested loop with the last axis varying fastest.  Passing an
        explicit ``cells`` callable instead remains supported.
    ``metrics``
        The values every cell reports (:class:`Metric`).
    ``shapes``
        Expected-shape declarations (:class:`Monotone`, :class:`Banded`)
        over the reported metrics, asserted generically by
        :func:`check_shapes` in the conformance suite.
    ``tabulate``
        The tabulation layout, as before: ``tabulate(params, values) ->
        Table | list[Table]`` with ``values`` in cell order.

    Declaring the grid as data (rather than a ``cells`` callable) is what
    the CLI's grid introspection (``sections()``, ``axis_names()``,
    ``grid_size()``), streaming tabulation and the conformance suite key
    off.  A minimal registration is shown in the README's
    "adding an experiment" walkthrough; ``docs/architecture.md`` lists
    the invariants (stable-name seeding, byte-identical artifacts) a new
    experiment inherits for free by going through this class.
    """

    axes: tuple = ()
    metrics: tuple[Metric, ...] = ()
    shapes: tuple = ()

    def __post_init__(self) -> None:
        sections = _as_sections(self.axes)
        if self.cells is None:
            if not sections:
                raise ConfigurationError(
                    f"experiment {self.exp_id!r} needs axes or an explicit cells callable"
                )
            object.__setattr__(self, "cells", _AxesGrid(sections))
        super().__post_init__()

    # -- grid introspection -------------------------------------------------
    def sections(self) -> tuple[Section, ...]:
        return _as_sections(self.axes)

    def section_cells(self, name: str, params: Any) -> list[dict[str, Any]]:
        """One named section's cells (in grid order)."""
        for section in self.sections():
            if section.name == name:
                return section.cells(params)
        raise ConfigurationError(
            f"experiment {self.exp_id!r} has no section {name!r}; "
            f"sections: {[s.name for s in self.sections()]}"
        )

    def axis_names(self) -> list[str]:
        """Coordinate names across all sections, first occurrence order."""
        names: list[str] = []
        for section in self.sections():
            for axis in section.axes:
                if axis.name not in names:
                    names.append(axis.name)
        return names

    def grid_size(self, *, full: bool = False) -> int:
        """Number of cells under the default (or ``full``) params."""
        return len(self.cells(self.make_params(full=full)))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ExperimentSpec] = {}

#: the built-in experiments in canonical reporting order: id -> module
#: (one mapping, so an id cannot be ordered without also being loadable).
#: :func:`all_experiments` imposes this order on iteration, with any
#: externally registered experiments appended in registration order.
_BUILTIN_MODULES = {
    "t1": "t1_detection_vs_n",
    "t2": "t2_impact_of_f",
    "t3": "t3_message_load",
    "t4": "t4_consensus",
    "f1": "f1_detection_cdf",
    "f2": "f2_delay_variance",
    "f3": "f3_mp_sensitivity",
    "e1": "e1_density",
    "e2": "e2_mobility",
    "a1": "a1_grace_ablation",
    "a2": "a2_loss_resilience",
    "q1": "q1_qos_comparison",
    "c1": "c1_consensus_qos",
}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register an experiment; the id must be new (idempotent for same spec).

    Usable directly (``SPEC = register_experiment(ExperimentSpec(...))``)
    — registration happens at module import, mirroring
    :func:`repro.detectors.register_detector`.
    """
    if not spec.exp_id or spec.exp_id != spec.exp_id.lower():
        # Lookups lowercase their query, so a mixed-case id would be
        # listed but unresolvable.
        raise ConfigurationError(
            f"experiment id must be non-empty lower-case: {spec.exp_id!r}"
        )
    existing = _REGISTRY.get(spec.exp_id)
    if existing is not None and existing is not spec:
        raise ConfigurationError(f"experiment id {spec.exp_id!r} is already registered")
    _REGISTRY[spec.exp_id] = spec
    return spec


def _ensure_builtin() -> None:
    """Import the built-in experiment modules (they register on import),
    then any ``REPRO_PLUGINS`` modules — so out-of-tree experiments reach
    every registry consumer (CLI listings, ``run_all``, distributed
    workers) exactly like built-ins.  Plugins load *after* built-ins so a
    plugin can resolve built-in specs at import time."""
    import importlib

    from ..harness.plugins import load_plugins

    for exp_id, module in _BUILTIN_MODULES.items():
        if exp_id not in _REGISTRY:
            importlib.import_module(f".{module}", package=__package__)
            if exp_id not in _REGISTRY:
                raise ConfigurationError(
                    f"module {module!r} did not register experiment {exp_id!r}; "
                    "fix the _BUILTIN_MODULES mapping or the module's exp_id"
                )
    load_plugins()


def get_experiment(exp_id: str) -> ExperimentSpec:
    """The spec registered under ``exp_id`` (case-insensitive)."""
    _ensure_builtin()
    spec = _REGISTRY.get(exp_id.lower() if isinstance(exp_id, str) else exp_id)
    if spec is None:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; choose from {sorted(_REGISTRY)}"
        )
    return spec


def all_experiments() -> dict[str, ExperimentSpec]:
    """Every registered experiment, in canonical reporting order.

    Built-ins come first (t1..t4, f1..f3, e1, e2, a1, a2, q1), then any
    externally registered experiments in registration order — the order
    ``run_all``, ``repro run`` (with no ids), and ``repro experiments``
    iterate, so a new registration can never be silently skipped.

    Ordering is imposed here, not inherited from registration order: a
    built-in module imported directly (``import
    repro.experiments.e2_mobility``) registers itself before its
    canonical predecessors, so the raw registry dict can be arbitrarily
    rotated.
    """
    _ensure_builtin()
    ordered = {exp_id: _REGISTRY[exp_id] for exp_id in _BUILTIN_MODULES}
    for exp_id, spec in _REGISTRY.items():
        if exp_id not in ordered:
            ordered[exp_id] = spec
    return ordered


def experiment_keys() -> list[str]:
    return list(all_experiments())


# ---------------------------------------------------------------------------
# shared tabulation machinery
# ---------------------------------------------------------------------------


def group_values(
    cells: Iterable[Mapping[str, Any]],
    values: Iterable[Any],
    *keys: str,
) -> dict[tuple, list[Any]]:
    """Group cell values by coordinate keys, preserving grid order.

    The returned dict maps ``tuple(coords[k] for k in keys)`` to the
    values of all matching cells, in cell order — the common "aggregate
    over trials" step of tabulation.
    """
    grouped: dict[tuple, list[Any]] = {}
    for coords, value in zip(cells, values):
        grouped.setdefault(tuple(coords[key] for key in keys), []).append(value)
    return grouped


def stat_mean(values: Iterable[float]) -> float:
    """Mean of the values, ``nan`` when empty (table-friendly)."""
    values = list(values)
    return _mean(values) if values else float("nan")


def per_detector_headers(
    detectors: Sequence[str],
    stats: Sequence[str] = (),
    template: str | None = None,
) -> list[str]:
    """The conventional per-detector column layout.

    With ``stats`` empty there is one column per detector (f1-style,
    default template ``"{detector} (s)"``); otherwise detector-major,
    stat-minor (t1-style ``mean``/``max`` pairs, default template
    ``"{detector} {stat} (s)"``).
    """
    if not stats:
        template = template if template is not None else "{detector} (s)"
        return [template.format(detector=detector) for detector in detectors]
    template = template if template is not None else "{detector} {stat} (s)"
    return [
        template.format(detector=detector, stat=stat)
        for detector in detectors
        for stat in stats
    ]
