"""F3 — how load-bearing is the MP assumption?

The algorithm's eventual weak accuracy is *conditional* on the message
pattern property: some correct process must eventually win (respond among
the first ``n - f``) every query of ``f + 1`` processes.  We realise MP to
a controllable degree with :class:`~repro.sim.latency.BiasedLatency`: the
favored process's messages are ``speedup`` times faster than everyone
else's.  Sweeping the speedup down to (and below) 1 decays its winning
ratio — and with it, the detector's accuracy *for that process*.

Reported per speedup: the favored process's measured winning ratio, whether
the MP oracle certifies the run, how often the favored process was falsely
suspected, and whether its suspicions had ceased by the horizon (the ◇S
stabilization the proof promises when MP holds).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.properties import find_mp_witness, winning_ratio
from ..harness.runner import run_grid
from ..metrics import accuracy_stabilization
from ..sim.latency import BiasedLatency, LogNormalLatency
from .api import ExperimentSpec, Metric, ParamAxis, register_experiment
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["F3Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class F3Params:
    n: int = 10
    f: int = 4
    #: registry key of the detector under test (sweepable axis)
    detector: str = "time-free"
    horizon: float = 20.0
    speedups: tuple[float, ...] = (8.0, 2.0, 1.0, 0.5)
    favored: int = 1
    delay_median: float = 0.005
    delay_sigma: float = 1.0
    #: tight grace so that round membership actually tracks response speed
    grace: float = 0.004
    idle: float = 0.1
    mp_suffix: int = 10
    seed: int = 1

    @classmethod
    def full(cls) -> "F3Params":
        return cls(
            n=12, f=5, speedups=(8.0, 4.0, 2.0, 1.5, 1.0, 0.7, 0.5), horizon=60.0
        )


def run_cell(params: F3Params, coords: dict, seed: int) -> dict:
    setup = setup_for(params.detector).with_(
        grace=params.grace, idle=params.idle, label="time-free"
    )
    latency = BiasedLatency(
        LogNormalLatency(params.delay_median, params.delay_sigma),
        favored=frozenset({params.favored}),
        speedup=coords["speedup"],
        bidirectional=True,
    )
    cluster = run_scenario(
        setup=setup,
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        latency=latency,
        seed=seed,
    )
    correct = cluster.correct_processes()
    ratio = winning_ratio(cluster.trace.rounds, params.favored)
    witness = find_mp_witness(
        cluster.trace.rounds, f=params.f, correct=correct, min_suffix=params.mp_suffix
    )
    suspicion_count = sum(
        len(cluster.trace.suspicion_intervals(obs, params.favored, horizon=params.horizon))
        for obs in correct
        if obs != params.favored
    )
    stabilization = accuracy_stabilization(cluster.trace, correct, horizon=params.horizon)
    return {
        "ratio": ratio,
        "mp_holds": witness is not None and witness.responder == params.favored,
        "suspicions": suspicion_count,
        "stable": stabilization[params.favored] is not None,
    }


def tabulate(params: F3Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"F3: accuracy vs MP strength (n={params.n}, f={params.f}, "
            f"favored process p{params.favored}, no crashes)"
        ),
        headers=[
            "speedup",
            "winning ratio",
            "MP holds (oracle)",
            "times favored suspected",
            "favored stable by end",
        ],
    )
    for speedup, value in zip(params.speedups, values):
        table.add_row(
            speedup,
            value["ratio"],
            value["mp_holds"],
            value["suspicions"],
            value["stable"],
        )
    table.add_note(
        "MP oracle: favored process wins the last "
        f"{params.mp_suffix} rounds of >= f+1 queriers."
    )
    table.add_note(
        "expected: high speedup -> ratio ≈ 1, MP certified, zero suspicions; "
        "speedup <= 1 -> ratio decays and the favored process gets suspected."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="f3",
        title="accuracy vs message-pattern (MP) strength",
        params_cls=F3Params,
        axes=(ParamAxis("speedup", field="speedups"),),
        run_cell=run_cell,
        metrics=(
            Metric("ratio", "favored process's measured round winning ratio"),
            Metric("mp_holds", "MP oracle certifies the run for the favored process"),
            Metric("suspicions", "times the favored process was falsely suspected"),
            Metric("stable", "favored process unsuspected by the horizon"),
        ),
        tabulate=tabulate,
    )
)


def run(params: F3Params = F3Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
