"""T4 — Chandra-Toueg consensus latency over each failure detector.

The detector exists to make consensus live; this experiment runs the CT
protocol (registry key ``ct``) over the time-free detector and over the
heartbeat baseline — both addressed by detector registry key through the
generic :class:`~repro.consensus.ConsensusHarness` — in a fault-free run
and with the round-1 coordinator crashed at startup.

Expected shape: fault-free, both decide in one coordinated round (network
RTTs).  With a crashed coordinator, progress requires the detector to
suspect it — the heartbeat run stalls for ~Θ while the time-free run only
waits for one query round (grace + δ), so it recovers faster by roughly
``Θ / Δ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..consensus import ConsensusHarness
from ..harness.runner import run_grid
from ..sim.faults import CrashFault, FaultPlan
from ..sim.latency import ExponentialLatency
from .api import DetectorAxis, ExperimentSpec, FixedAxis, Metric, register_experiment
from .report import Table
from .scenarios import DetectorSetup, setup_for

__all__ = ["T4Params", "SPEC", "run_cell", "tabulate", "run"]

_SCENARIOS = ("fault-free", "coordinator crash")

#: legacy table labels for the default comparison pair
_LABELS = {
    "time-free": lambda delta: f"time-free Δ={delta}s",
    "heartbeat": lambda delta: f"heartbeat Θ={2 * delta}s",
}


@dataclass(frozen=True)
class T4Params:
    n: int = 9
    f: int = 4
    #: registry keys of the detectors under comparison (sweepable axis)
    detectors: tuple[str, ...] = ("time-free", "heartbeat")
    horizon: float = 60.0
    delay_mean: float = 0.001
    #: query grace / heartbeat period; timeout is 2x
    delta: float = 0.5
    seed: int = 1

    @classmethod
    def full(cls) -> "T4Params":
        return cls(n=15, f=7)


def _setup(params: T4Params, detector: str) -> DetectorSetup:
    """Any registered family, with its timing knobs rescaled to Δ."""
    label_fn = _LABELS.get(detector, lambda delta: f"{detector} Δ={delta}s")
    return setup_for(detector).with_(
        grace=params.delta,
        period=params.delta,
        timeout=2 * params.delta,
        label=label_fn(params.delta),
    )


def run_cell(params: T4Params, coords: dict, seed: int) -> dict:
    setup = _setup(params, coords["detector"])
    if coords["scenario"] == "fault-free":
        plan = FaultPlan.none()
    else:
        # Process 1 coordinates round 1; crash it before anyone proposes.
        plan = FaultPlan.of(crashes=[CrashFault(1, 0.001)])
    harness = ConsensusHarness(
        n=params.n,
        f=params.f,
        protocol="ct",
        detector=setup.kind,
        detector_params=setup.registry_params(),
        latency=ExponentialLatency(params.delay_mean),
        seed=seed,
        fault_plan=plan,
        propose_at=0.01,
    )
    result = harness.run(until=params.horizon)
    correct_rounds = [
        r for pid, r in result.rounds_executed.items() if pid in result.correct
    ]
    return {
        "all_correct_decided": result.all_correct_decided,
        "agreement": result.agreement_holds,
        "validity": result.validity_holds,
        "decision_time": result.last_decision_time,
        "max_rounds": max(correct_rounds, default=None),
    }


def tabulate(params: T4Params, values: list[dict]) -> Table:
    table = Table(
        title=f"T4: consensus latency over each detector (n={params.n}, f={params.f})",
        headers=[
            "detector",
            "scenario",
            "all correct decided",
            "agreement",
            "validity",
            "decision time (s)",
            "max rounds",
        ],
    )
    for coords, value in zip(SPEC.cells(params), values):
        table.add_row(
            _setup(params, coords["detector"]).label,
            coords["scenario"],
            value["all_correct_decided"],
            value["agreement"],
            value["validity"],
            value["decision_time"],
            value["max_rounds"],
        )
    table.add_note(
        "with a crashed coordinator, decision time ≈ time for the detector "
        "to suspect it + one round of messages."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="t4",
        title="Chandra-Toueg consensus latency over each detector",
        params_cls=T4Params,
        axes=(DetectorAxis(), FixedAxis("scenario", values=_SCENARIOS)),
        run_cell=run_cell,
        metrics=(
            Metric("all_correct_decided", "every correct process decided"),
            Metric("agreement", "no two processes decided differently"),
            Metric("validity", "decisions were proposed values"),
            Metric("decision_time", "time of the last correct decision (s)"),
            Metric("max_rounds", "most CT rounds any correct process executed"),
        ),
        tabulate=tabulate,
    )
)


def run(params: T4Params = T4Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
