"""T4 — Chandra-Toueg consensus latency over each failure detector.

The detector exists to make consensus live; this experiment runs the CT
protocol over the time-free detector and over the heartbeat baseline, in a
fault-free run and with the round-1 coordinator crashed at startup.

Expected shape: fault-free, both decide in one coordinated round (network
RTTs).  With a crashed coordinator, progress requires the detector to
suspect it — the heartbeat run stalls for ~Θ while the time-free run only
waits for one query round (grace + δ), so it recovers faster by roughly
``Θ / Δ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..consensus import ConsensusHarness
from ..sim.faults import CrashFault, FaultPlan
from ..sim.latency import ExponentialLatency
from .report import Table
from .scenarios import HEARTBEAT, TIME_FREE, DetectorSetup

__all__ = ["T4Params", "run"]


@dataclass(frozen=True)
class T4Params:
    n: int = 9
    f: int = 4
    horizon: float = 60.0
    delay_mean: float = 0.001
    #: query grace / heartbeat period; timeout is 2x
    delta: float = 0.5
    seed: int = 1

    @classmethod
    def full(cls) -> "T4Params":
        return cls(n=15, f=7)


def _setups(params: T4Params) -> list[DetectorSetup]:
    return [
        TIME_FREE.with_(grace=params.delta, label=f"time-free Δ={params.delta}s"),
        HEARTBEAT.with_(
            period=params.delta,
            timeout=2 * params.delta,
            label=f"heartbeat Θ={2 * params.delta}s",
        ),
    ]


def run(params: T4Params = T4Params()) -> Table:
    table = Table(
        title=f"T4: consensus latency over each detector (n={params.n}, f={params.f})",
        headers=[
            "detector",
            "scenario",
            "all correct decided",
            "agreement",
            "validity",
            "decision time (s)",
            "max rounds",
        ],
    )
    scenarios = [
        ("fault-free", FaultPlan.none()),
        # Process 1 coordinates round 1; crash it before anyone proposes.
        ("coordinator crash", FaultPlan.of(crashes=[CrashFault(1, 0.001)])),
    ]
    for setup in _setups(params):
        for name, plan in scenarios:
            harness = ConsensusHarness(
                n=params.n,
                f=params.f,
                fd_driver_factory=setup.driver_factory(params.f),
                latency=ExponentialLatency(params.delay_mean),
                seed=params.seed,
                fault_plan=plan,
                propose_at=0.01,
            )
            result = harness.run(until=params.horizon)
            correct_rounds = [
                r for pid, r in result.rounds_executed.items() if pid in result.correct
            ]
            table.add_row(
                setup.label,
                name,
                result.all_correct_decided,
                result.agreement_holds,
                result.validity_holds,
                result.last_decision_time,
                max(correct_rounds, default=None),
            )
    table.add_note(
        "with a crashed coordinator, decision time ≈ time for the detector "
        "to suspect it + one round of messages."
    )
    return table
