"""E2 — false-suspicion transient under mobility (extension experiment).

Reconstruction of the follow-up report's Figure 3: one node detaches
(moves through a "disturbance region", neither sending nor receiving),
travels, and reattaches in a *different* neighborhood.  No process ever
crashes, so every suspicion in the run is false by definition; the figure
tracks the total number of wrongly-suspecting (observer, target) pairs over
time.

Expected shape: while the node is away, everyone comes to suspect it
(count → n - 1).  On reconnection it refutes itself (count falls), but it
also starts suspecting its *old* neighbors — who are alive — and those
suspicions flood (secondary spike), until the old neighbors' mistakes
propagate and the count collapses to zero.  The collapse *requires*
Algorithm 2's ``known``-eviction rule: the ablation column runs the same
scenario with the rule disabled and shows the count never settles (the
mover re-suspects its old range forever — the "ping-pong" the report
warns about).
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..errors import ExperimentError
from ..harness.runner import run_grid
from ..metrics import false_suspicion_series
from ..partial import validate_mobility_scenario
from ..sim.faults import FaultPlan, MobilityFault
from ..sim.rng import RngStreams
from ..sim.topology import Topology, manet_topology
from .api import ExperimentSpec, FixedAxis, Metric, register_experiment
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["E2Params", "SPEC", "run_cell", "tabulate", "run"]

_VARIANTS = {"alg2": "algorithm 2", "no-eviction": "ablation: no eviction"}


@dataclass(frozen=True)
class E2Params:
    n: int = 30
    f: int = 1
    #: registry key of the detector under test (sweepable axis)
    detector: str = "partial"
    target_density: int = 7
    depart: float = 30.0
    arrive: float = 90.0
    horizon: float = 130.0
    sample_step: float = 2.0
    area: float = 700.0
    transmission_range: float = 100.0
    seed: int = 1
    max_topology_attempts: int = 25

    @classmethod
    def full(cls) -> "E2Params":
        return cls(n=100, horizon=200.0, arrive=120.0, sample_step=1.0)


def _pick_scenario(params: E2Params) -> tuple[Topology, int, tuple[float, float]]:
    """Find a topology, a mover and a landing position that satisfy the
    experiment's restrictions (Section 6.2 of the report)."""
    for attempt in range(params.max_topology_attempts):
        rng = RngStreams(params.seed + attempt).stream("e2", "topology")
        topology = manet_topology(
            params.n,
            params.f,
            rng,
            area=params.area,
            transmission_range=params.transmission_range,
            min_neighbors=params.target_density - 1,
        )
        d = topology.range_density()
        for mover in sorted(topology.ids()):
            try:
                validate_mobility_scenario(topology, mover, d=d, f=params.f)
            except Exception:
                continue
            landing = _farthest_node(topology, mover)
            if landing is None:
                continue
            # Land exactly on the farthest node: its whole neighborhood
            # becomes the mover's new range.
            new_position = topology.positions[landing]
            if landing in topology.neighbors(mover):
                continue  # too close; the move must change the neighborhood
            return topology, mover, new_position
    raise ExperimentError(
        "could not build a mobility scenario satisfying the restrictions; "
        "try another seed or a denser topology"
    )


def _farthest_node(topology: Topology, mover: int):
    origin = topology.positions[mover]
    best, best_dist = None, -1.0
    for pid in sorted(topology.ids()):
        if pid == mover:
            continue
        pos = topology.positions[pid]
        dist = math.hypot(pos[0] - origin[0], pos[1] - origin[1])
        if dist > best_dist:
            best, best_dist = pid, dist
    return best


def _sample_times(params: E2Params) -> list[float]:
    times = [
        params.depart - 2 * params.sample_step + i * params.sample_step
        for i in range(
            int((params.horizon - params.depart) / params.sample_step) + 3
        )
    ]
    return [t for t in times if 0 <= t <= params.horizon]


def run_cell(params: E2Params, coords: dict, seed: int) -> dict:
    # The mobility restrictions (Section 6.2) are satisfied by the params'
    # own seed schedule; both variants must replay the *same* scenario, so
    # the derived per-cell seed is unused here.
    topology, mover, new_position = _pick_scenario(params)
    plan = FaultPlan.of(
        moves=[
            MobilityFault(
                process=mover,
                depart=params.depart,
                arrive=params.arrive,
                new_position=new_position,
            )
        ]
    )
    setup = setup_for(params.detector).with_(
        label=_VARIANTS[coords["variant"]],
        grace=1.0,
        d=topology.range_density(),
        mobility=coords["variant"] == "alg2",
    )
    cluster = run_scenario(
        setup=setup,
        topology=topology.copy(),
        f=params.f,
        horizon=params.horizon,
        fault_plan=plan,
        seed=params.seed,
    )
    series = false_suspicion_series(cluster.trace, _sample_times(params), plan)
    return {
        "mover": mover,
        "d": topology.range_density(),
        "series": [[t, count] for t, count in series],
    }


def tabulate(params: E2Params, values: list[dict]) -> Table:
    by_variant = dict(
        zip((coords["variant"] for coords in SPEC.cells(params)), values)
    )
    reference = by_variant["alg2"]
    table = Table(
        title=(
            f"E2: false suspicions under mobility (n={params.n}, d={reference['d']}, "
            f"mover p{reference['mover']} away "
            f"[{params.depart}, {params.arrive}]s, no crashes)"
        ),
        headers=["time (s)", "false suspicions (alg 2)", "false suspicions (no eviction)"],
        precision=1,
    )
    for (t, with_rule), (_, without_rule) in zip(
        reference["series"], by_variant["no-eviction"]["series"]
    ):
        table.add_row(t, with_rule, without_rule)
    table.add_note(
        "while away, all n-1 nodes come to suspect the mover; reconnection "
        "triggers the secondary spike (mover suspects its old range) before "
        "mistakes flood and the count collapses."
    )
    table.add_note(
        "the ablation column shows Algorithm 2's known-eviction rule is what "
        "lets the count settle back to zero."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="e2",
        title="false-suspicion transient under mobility",
        params_cls=E2Params,
        axes=(FixedAxis("variant", values=tuple(_VARIANTS)),),
        run_cell=run_cell,
        metrics=(
            Metric("mover", "the detaching/reattaching process id"),
            Metric("d", "range density of the built topology"),
            Metric("series", "[time, wrongly-suspecting pair count] samples"),
        ),
        tabulate=tabulate,
    )
)


def run(params: E2Params = E2Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
