"""A1 (ablation) — the evaluation's pacing improvement, quantified.

Section 6 of the paper family's evaluation inserts a delay Δ between the
quorum wait (line 7) and the suspicion computation (line 8): extra
responses arriving during Δ are credited to ``rec_from``, which "reduces
the number of false suspicions... worth remarking that this improvement
does not change the protocol correctness".

This ablation sweeps Δ from 0 (raw protocol: *every* round suspects the
f slowest responders) upward, measuring false suspicions, detection time
of a real crash, and round throughput.  The trade surfaces directly:

* Δ = 0 — maximal round rate, detection within one RTT, but a storm of
  transient (self-correcting) false suspicions;
* growing Δ — false suspicions vanish once Δ covers the straggler spread,
  while detection time grows as ≈ Δ (a crash is noticed at the end of the
  round in progress).

Correctness is unaffected at every point (the crash is detected by all,
and every false suspicion is corrected) — which is the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_grid
from ..metrics import detection_stats, mistake_stats
from ..sim.faults import CrashFault, FaultPlan
from ..sim.latency import LogNormalLatency
from .api import ExperimentSpec, Metric, Monotone, ParamAxis, register_experiment
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["A1Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class A1Params:
    n: int = 15
    f: int = 3
    #: registry key of the detector under test (sweepable axis)
    detector: str = "time-free"
    graces: tuple[float, ...] = (0.0, 0.01, 0.1, 0.5, 1.0)
    #: pacing between rounds so Δ=0 does not run hot
    idle: float = 0.1
    crash_at: float = 15.0
    horizon: float = 40.0
    delay_median: float = 0.003
    delay_sigma: float = 1.0
    seed: int = 1

    @classmethod
    def full(cls) -> "A1Params":
        return cls(n=30, f=6, graces=(0.0, 0.005, 0.02, 0.1, 0.3, 1.0, 2.0))


def run_cell(params: A1Params, coords: dict, seed: int) -> dict:
    grace = coords["grace"]
    victim = params.n
    setup = setup_for(params.detector).with_(grace=grace, idle=params.idle)
    plan = FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)])
    cluster = run_scenario(
        setup=setup,
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        latency=LogNormalLatency(params.delay_median, params.delay_sigma),
        fault_plan=plan,
        seed=seed,
        start_stagger=max(grace, params.idle),
    )
    correct = cluster.correct_processes()
    mistakes = mistake_stats(cluster.trace, correct, horizon=params.horizon)
    crash = detection_stats(cluster.trace, victim, params.crash_at, correct)
    return {
        "false_suspicions": mistakes.count,
        "unresolved": mistakes.unresolved,
        "detect_mean": crash.mean_latency,
        "detect_max": crash.max_latency,
        "rounds_per_process": len(cluster.trace.rounds) / (params.n - 1),
    }


def tabulate(params: A1Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"A1 (ablation): query-pacing grace Δ sweep "
            f"(n={params.n}, f={params.f}, 1 crash, log-normal delays)"
        ),
        headers=[
            "grace Δ (s)",
            "false suspicions",
            "uncorrected at end",
            "detect mean (s)",
            "detect max (s)",
            "rounds/process",
        ],
    )
    for grace, value in zip(params.graces, values):
        table.add_row(
            grace,
            value["false_suspicions"],
            value["unresolved"],
            value["detect_mean"],
            value["detect_max"],
            value["rounds_per_process"],
        )
    table.add_note(
        "Δ=0 is the raw protocol: the f slowest responders of every round "
        "get (transiently) suspected and corrected — correctness holds, "
        "accuracy noise is maximal."
    )
    table.add_note(
        "the paper's evaluation uses Δ=1s: zero false suspicions at the "
        "price of ≈Δ detection latency."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="a1",
        title="query-pacing grace Δ ablation",
        params_cls=A1Params,
        axes=(ParamAxis("grace", field="graces"),),
        run_cell=run_cell,
        metrics=(
            Metric("false_suspicions", "wrong suspicion intervals among correct pairs"),
            Metric("unresolved", "pairs still wrongly suspected at the horizon"),
            Metric("detect_mean", "mean crash-detection latency (s)"),
            Metric("detect_max", "max crash-detection latency (s)"),
            Metric("rounds_per_process", "completed query rounds per process"),
        ),
        shapes=(
            Monotone("false_suspicions", along="grace", direction="decreasing"),
            Monotone("rounds_per_process", along="grace", direction="decreasing"),
        ),
        tabulate=tabulate,
    )
)


def run(params: A1Params = A1Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
