"""T1 — crash detection time vs. system size n.

For each system size, one process crashes mid-run; we report the mean and
max (strong-completeness) detection latency across correct observers,
averaged over trials, for the time-free detector and the heartbeat
baseline.

Expected shape: heartbeat sits inside ``[Θ - Δ, Θ]`` independent of n (the
timeout dominates); the time-free detector tracks ``Δ + δ`` — the query
pacing plus one network hop — and does not degrade with n because every
query round refreshes all pairs at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_grid
from ..metrics import detection_stats
from ..sim.faults import CrashFault, FaultPlan
from .api import (
    Banded,
    DetectorAxis,
    ExperimentSpec,
    Metric,
    ParamAxis,
    TrialAxis,
    group_values,
    per_detector_headers,
    register_experiment,
    stat_mean,
)
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["T1Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class T1Params:
    sizes: tuple[int, ...] = (10, 20, 30)
    #: registry keys of the detectors under comparison (sweepable axis)
    detectors: tuple[str, ...] = ("time-free", "heartbeat")
    f_fraction: float = 0.2
    trials: int = 3
    crash_at: float = 15.0
    horizon: float = 40.0
    seed: int = 1

    @classmethod
    def full(cls) -> "T1Params":
        return cls(sizes=(10, 20, 30, 40, 50, 60), trials=5)


def run_cell(params: T1Params, coords: dict, seed: int) -> dict:
    n = coords["n"]
    f = max(1, int(n * params.f_fraction))
    victim = n  # crash the highest id; ids are symmetric under full mesh
    plan = FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)])
    cluster = run_scenario(
        setup=setup_for(coords["detector"]),
        n=n,
        f=f,
        horizon=params.horizon,
        fault_plan=plan,
        seed=seed,
    )
    stats = detection_stats(
        cluster.trace, victim, params.crash_at, cluster.correct_processes()
    )
    return {"mean": stats.mean_latency, "max": stats.max_latency}


def tabulate(params: T1Params, values: list[dict]) -> Table:
    table = Table(
        title="T1: crash detection time vs system size (full mesh, 1 crash)",
        headers=["n", "f", *per_detector_headers(params.detectors, ("mean", "max"))],
    )
    grouped = group_values(SPEC.cells(params), values, "n", "detector")
    for n in params.sizes:
        row: list[float] = []
        for detector in params.detectors:
            trials = [v for v in grouped[(n, detector)] if v["mean"] is not None]
            row.append(stat_mean(v["mean"] for v in trials))
            row.append(stat_mean(v["max"] for v in trials))
        table.add_row(n, max(1, int(n * params.f_fraction)), *row)
    table.add_note(
        "Δ = 1 s (query grace / heartbeat period), Θ = 2 s, δ ≈ 1 ms exponential."
    )
    table.add_note(
        "expected: heartbeat in [Θ-Δ, Θ] regardless of n; time-free ≈ Δ + δ."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="t1",
        title="crash detection time vs system size (time-free vs heartbeat)",
        params_cls=T1Params,
        axes=(ParamAxis("n", field="sizes"), DetectorAxis(), TrialAxis()),
        run_cell=run_cell,
        metrics=(
            Metric("mean", "mean detection latency across correct observers (s)"),
            Metric("max", "strong-completeness latency: last observer to detect (s)"),
        ),
        shapes=(
            Banded("mean", lo=0.0),
            Banded("max", lo=0.0),
        ),
        tabulate=tabulate,
    )
)


def run(params: T1Params = T1Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
