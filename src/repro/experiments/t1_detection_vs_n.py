"""T1 — crash detection time vs. system size n.

For each system size, one process crashes mid-run; we report the mean and
max (strong-completeness) detection latency across correct observers,
averaged over trials, for the time-free detector and the heartbeat
baseline.

Expected shape: heartbeat sits inside ``[Θ - Δ, Θ]`` independent of n (the
timeout dominates); the time-free detector tracks ``Δ + δ`` — the query
pacing plus one network hop — and does not degrade with n because every
query round refreshes all pairs at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from ..metrics import detection_stats
from ..sim.faults import CrashFault, FaultPlan
from .report import Table
from .scenarios import HEARTBEAT, TIME_FREE, DetectorSetup, run_scenario

__all__ = ["T1Params", "run"]


@dataclass(frozen=True)
class T1Params:
    sizes: tuple[int, ...] = (10, 20, 30)
    f_fraction: float = 0.2
    trials: int = 3
    crash_at: float = 15.0
    horizon: float = 40.0
    seed: int = 1

    @classmethod
    def full(cls) -> "T1Params":
        return cls(sizes=(10, 20, 30, 40, 50, 60), trials=5)


def _measure(setup: DetectorSetup, n: int, f: int, params: T1Params, trial: int):
    victim = n  # crash the highest id; ids are symmetric under full mesh
    plan = FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)])
    cluster = run_scenario(
        setup=setup,
        n=n,
        f=f,
        horizon=params.horizon,
        fault_plan=plan,
        seed=params.seed * 1000 + trial,
    )
    stats = detection_stats(
        cluster.trace, victim, params.crash_at, cluster.correct_processes()
    )
    return stats


def run(params: T1Params = T1Params()) -> Table:
    table = Table(
        title="T1: crash detection time vs system size (full mesh, 1 crash)",
        headers=[
            "n",
            "f",
            "time-free mean (s)",
            "time-free max (s)",
            "heartbeat mean (s)",
            "heartbeat max (s)",
        ],
    )
    for n in params.sizes:
        f = max(1, int(n * params.f_fraction))
        per_detector: dict[str, tuple[float, float]] = {}
        for setup in (TIME_FREE, HEARTBEAT):
            means, maxes = [], []
            for trial in range(params.trials):
                stats = _measure(setup, n, f, params, trial)
                if stats.mean_latency is not None:
                    means.append(stats.mean_latency)
                    maxes.append(stats.max_latency)
            per_detector[setup.kind] = (
                mean(means) if means else float("nan"),
                mean(maxes) if maxes else float("nan"),
            )
        table.add_row(
            n,
            f,
            per_detector["time-free"][0],
            per_detector["time-free"][1],
            per_detector["heartbeat"][0],
            per_detector["heartbeat"][1],
        )
    table.add_note(
        "Δ = 1 s (query grace / heartbeat period), Θ = 2 s, δ ≈ 1 ms exponential."
    )
    table.add_note(
        "expected: heartbeat in [Θ-Δ, Θ] regardless of n; time-free ≈ Δ + δ."
    )
    return table
