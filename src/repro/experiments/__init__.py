"""Experiment definitions: every table and figure, regenerable from code.

One module per experiment id (see DESIGN.md Section 3).  Each exposes a
``Params`` dataclass (with quick defaults; pass ``full()`` presets for
paper-scale runs), a declarative ``SPEC``
(:class:`~repro.experiments.api.ExperimentSpec`: generic axes +
``run_cell`` + metrics + ``tabulate``) registered with the
:mod:`repro.experiments.api` plugin registry at import, and a
``run(params) -> Table`` convenience wrapper that evaluates the grid
sequentially.  The registry is what ``repro run``/``repro experiments``,
``run_all`` and CI iterate; a new in-repo experiment is one
``register_experiment`` call plus one ``_BUILTIN_MODULES`` entry away
from all of them (conformance-tested), and external plugins need only
import before use.

``python -m repro run t1 e2 --workers 8 --out results/`` evaluates grids
on a process pool with content-hash caching and writes ``BENCH_<ID>.json``
artifacts; ``python -m repro.experiments.run_all`` remains as a sequential
wrapper.
"""

from .report import Table

__all__ = ["Table"]
