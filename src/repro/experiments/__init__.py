"""Experiment harness: every table and figure, regenerable from code.

One module per experiment id (see DESIGN.md Section 3).  Each exposes a
``Params`` dataclass (with quick defaults; pass ``full()`` presets for
paper-scale runs) and a ``run(params) -> Table`` function that returns the
same rows/series the evaluation reports.  ``python -m
repro.experiments.run_all`` prints everything and is the source of
EXPERIMENTS.md's measured numbers.
"""

from .report import Table

__all__ = ["Table"]
