"""Experiment definitions: every table and figure, regenerable from code.

One module per experiment id (see DESIGN.md Section 3).  Each exposes a
``Params`` dataclass (with quick defaults; pass ``full()`` presets for
paper-scale runs), a declarative grid ``SPEC``
(:class:`~repro.harness.spec.ScenarioSpec`: ``cells``/``run_cell``/
``tabulate``), and a ``run(params) -> Table`` convenience wrapper that
evaluates the grid sequentially.

``python -m repro run t1 e2 --workers 8 --out results/`` evaluates grids
on a process pool with content-hash caching and writes ``BENCH_<ID>.json``
artifacts; ``python -m repro.experiments.run_all`` remains as a sequential
wrapper.
"""

from .report import Table

__all__ = ["Table"]
