"""Plain-text tables for experiment output.

Nothing here depends on plotting; figures are reported as series tables
(x column + one column per detector), which is what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table", "fmt"]


def fmt(value: Any, *, precision: int = 3) -> str:
    """Render one cell: floats rounded, None as '-', everything else str()."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A titled table with typed rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, by header name."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[fmt(v, precision=self.precision) for v in row] for row in self.rows]
        widths = [
            max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
            for i, header in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(fmt(v, precision=self.precision) for v in row) + " |"
            )
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
