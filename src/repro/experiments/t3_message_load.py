"""T3 — message load per detector.

Messages per second per process for every detector in a quiet (crash-free)
run.  The query-response detector pays two messages per pair per round
(query out, response back) where heartbeats pay one — the price of
timer-freedom; gossip additionally grows its *payload* linearly with n
(reported as bytes/message).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_grid
from ..metrics import message_load
from .api import Banded, DetectorAxis, ExperimentSpec, Metric, Monotone, ParamAxis, register_experiment
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["T3Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class T3Params:
    sizes: tuple[int, ...] = (10, 30)
    #: registry keys of the detectors under comparison (sweepable axis)
    detectors: tuple[str, ...] = ("time-free", "heartbeat", "gossip", "phi")
    f_fraction: float = 0.2
    horizon: float = 20.0
    seed: int = 1

    @classmethod
    def full(cls) -> "T3Params":
        return cls(sizes=(10, 30, 60), horizon=60.0)

    @classmethod
    def large_n(cls) -> "T3Params":
        """Full-mesh load curves an order of magnitude past the paper.

        Every cell is Θ(n²) deliveries per round, so the horizon is short
        and phi (whose per-sample window bookkeeping dominates at this
        scale without changing the load curve's shape) is dropped.  Only
        feasible on the columnar trace plane.
        """
        return cls(
            sizes=(500, 1000, 2000),
            detectors=("time-free", "heartbeat", "gossip"),
            horizon=5.0,
        )


def run_cell(params: T3Params, coords: dict, seed: int) -> dict:
    n = coords["n"]
    f = max(1, int(n * params.f_fraction))
    cluster = run_scenario(
        setup=setup_for(coords["detector"]),
        n=n,
        f=f,
        horizon=params.horizon,
        seed=seed,
    )
    load = message_load(cluster.trace, horizon=params.horizon, n=n)
    kinds = {k: v for k, v in load.items() if k != "total"}
    dominant = max(kinds, key=kinds.get) if kinds else "-"
    return {
        "total": load["total"],
        "dominant": dominant,
        "dominant_load": kinds.get(dominant),
    }


def tabulate(params: T3Params, values: list[dict]) -> Table:
    table = Table(
        title="T3: message load (crash-free run)",
        headers=["n", "detector", "msgs/s/process", "dominant kind", "kind msgs/s/process"],
    )
    for coords, value in zip(SPEC.cells(params), values):
        table.add_row(
            coords["n"],
            setup_for(coords["detector"]).label,
            value["total"],
            value["dominant"],
            value["dominant_load"],
        )
    table.add_note(
        "time-free sends ~2(n-1) msgs per process per round (query+response); "
        "heartbeats send (n-1)/Δ."
    )
    table.add_note(
        "gossip messages carry an n-entry vector; its wire size grows with n "
        "while the others stay O(#suspicions)."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="t3",
        title="message load per detector (crash-free run)",
        params_cls=T3Params,
        axes=(ParamAxis("n", field="sizes"), DetectorAxis()),
        run_cell=run_cell,
        metrics=(
            Metric("total", "messages per second per process, all kinds"),
            Metric("dominant", "highest-volume message kind"),
            Metric("dominant_load", "msgs/s/process of the dominant kind"),
        ),
        shapes=(
            Monotone("total", along="n", direction="increasing"),
            Banded("total", lo=0.0),
            Banded("dominant_load", lo=0.0),
        ),
        tabulate=tabulate,
    )
)


def run(params: T3Params = T3Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
