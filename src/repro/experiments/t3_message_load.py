"""T3 — message load per detector.

Messages per second per process for every detector in a quiet (crash-free)
run.  The query-response detector pays two messages per pair per round
(query out, response back) where heartbeats pay one — the price of
timer-freedom; gossip additionally grows its *payload* linearly with n
(reported as bytes/message).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import message_load
from .report import Table
from .scenarios import GOSSIP, HEARTBEAT, PHI, TIME_FREE, run_scenario

__all__ = ["T3Params", "run"]


@dataclass(frozen=True)
class T3Params:
    sizes: tuple[int, ...] = (10, 30)
    f_fraction: float = 0.2
    horizon: float = 20.0
    seed: int = 1

    @classmethod
    def full(cls) -> "T3Params":
        return cls(sizes=(10, 30, 60), horizon=60.0)


def run(params: T3Params = T3Params()) -> Table:
    table = Table(
        title="T3: message load (crash-free run)",
        headers=["n", "detector", "msgs/s/process", "dominant kind", "kind msgs/s/process"],
    )
    for n in params.sizes:
        f = max(1, int(n * params.f_fraction))
        for setup in (TIME_FREE, HEARTBEAT, GOSSIP, PHI):
            cluster = run_scenario(
                setup=setup, n=n, f=f, horizon=params.horizon, seed=params.seed
            )
            load = message_load(cluster.trace, horizon=params.horizon, n=n)
            kinds = {k: v for k, v in load.items() if k != "total"}
            dominant = max(kinds, key=kinds.get) if kinds else "-"
            table.add_row(
                n,
                setup.label,
                load["total"],
                dominant,
                kinds.get(dominant),
            )
    table.add_note(
        "time-free sends ~2(n-1) msgs per process per round (query+response); "
        "heartbeats send (n-1)/Δ."
    )
    table.add_note(
        "gossip messages carry an n-entry vector; its wire size grows with n "
        "while the others stay O(#suspicions)."
    )
    return table
