"""Q1 — QoS comparison: detection time vs accuracy across *all* detectors.

The Chen-Toueg-Aguilera QoS study asks the question the per-family
experiments dodge: on one common grid, how does every registered detector
trade crash-detection speed against query accuracy?  Each cell deploys one
registry family on the same full-mesh scenario (one crash mid-run) and
reports the two QoS axes of Chen's scatter plot — detection time
(``T_D``) and accuracy (mistake rate ``λ_M`` / query accuracy probability
``P_A``) — plus the message load the family pays for them.

This is the first experiment written directly against the declarative
:mod:`repro.experiments.api`: the detector axis defaults to **every**
registered family (``detector_keys()``), so registering a new family —
crash-recovery, ADD-channel ◇P, system-level diagnosis — adds it to this
comparison with zero code changes here.  Families that require extra
deployment context declare it on their spec (``required``); the only such
knob today is the partial detector's range density ``d``, which a full
mesh pins to ``n`` (every range is the whole system).

Expected shape: the timer families' detection time tracks their timeout
(Θ-bound), the query families track Δ + δ; accuracy is ≈ 1.0 for everyone
on calm exponential delays — the interesting spread appears under ``-p``
stress (e.g. ``repro run q1 -p delay_sigma=2.0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..detectors import detector_keys, get_detector
from ..harness.runner import run_grid
from ..metrics import (
    detection_stats,
    epoch_detection_stats,
    epoch_mistake_stats,
    message_load,
    mistake_stats,
)
from ..sim.faults import CrashFault, FaultPlan
from ..sim.latency import LogNormalLatency
from .api import (
    Banded,
    DetectorAxis,
    ExperimentSpec,
    FaultAxis,
    Metric,
    TrialAxis,
    group_values,
    register_experiment,
    stat_mean,
)
from .report import Table
from .scenarios import fault_plan_for, run_scenario, setup_for

__all__ = ["Q1Params", "SPEC", "run_cell", "tabulate", "run"]


def _all_detectors() -> tuple[str, ...]:
    return tuple(detector_keys())


@dataclass(frozen=True)
class Q1Params:
    n: int = 20
    f: int = 4
    #: registry keys under comparison — defaults to every registered family
    detectors: tuple[str, ...] = field(default_factory=_all_detectors)
    trials: int = 3
    crash_at: float = 20.0
    horizon: float = 40.0
    #: log-normal one-hop delays; raise sigma to spread the accuracy axis
    delay_median: float = 0.001
    delay_sigma: float = 0.5
    seed: int = 1
    #: fault-scenario names (see repro.experiments.scenarios) — the
    #: optional stress axis; omitted from artifacts while empty, so the
    #: default grid stays byte-identical to pre-fault-plane runs.
    faults: tuple[str, ...] = field(default=(), metadata={"omit_default": True})

    @classmethod
    def full(cls) -> "Q1Params":
        return cls(n=40, f=8, trials=10, crash_at=30.0, horizon=80.0)

    # -- stress presets: the regimes where the accuracy axis separates ----
    @classmethod
    def partition(cls) -> "Q1Params":
        """Two-sided split that heals mid-run (quorums stall, timers accuse)."""
        return cls(faults=("partition",))

    @classmethod
    def crashrec(cls) -> "Q1Params":
        """Crash-recovery episodes: volatile and persistent restarts."""
        return cls(faults=("crashrec",))

    @classmethod
    def churn(cls) -> "Q1Params":
        """Dynamic membership: a late joiner plus two departures."""
        return cls(faults=("churn",))

    @classmethod
    def lossburst(cls) -> "Q1Params":
        """A 25% per-link loss spike for a fifth of the run."""
        return cls(faults=("lossburst",))


def run_cell(params: Q1Params, coords: dict, seed: int) -> dict:
    detector = coords["detector"]
    victim = params.n  # symmetric under full mesh
    setup = setup_for(detector)
    if "d" in get_detector(detector).required:
        # Full mesh: every range is the whole system, so the density is n.
        setup = setup.with_(d=params.n)
    plan = FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)])
    fault = coords.get("fault")
    if fault is not None:
        return _run_stress_cell(params, setup, plan, fault, seed)
    cluster = run_scenario(
        setup=setup,
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        latency=LogNormalLatency(params.delay_median, params.delay_sigma),
        fault_plan=plan,
        seed=seed,
    )
    correct = cluster.correct_processes()
    crash = detection_stats(cluster.trace, victim, params.crash_at, correct)
    mistakes = mistake_stats(cluster.trace, correct, horizon=params.horizon)
    # With one survivor there are no monitored pairs and no accuracy to
    # speak of (n=2, f=1 is a legal grid) — report None, not a crash.
    pairs = len(correct) * (len(correct) - 1)
    load = message_load(cluster.trace, horizon=params.horizon, n=params.n)
    return {
        "detect_mean": crash.mean_latency,
        "detect_max": crash.max_latency,
        "detected_by": len(crash.latencies),
        # Chen's lambda_M, normalised per monitored pair (per second).
        "mistake_rate": mistakes.count / params.horizon / pairs if pairs else None,
        # Chen's P_A: fraction of pair-time the output was correct.
        "query_accuracy": (
            1.0 - mistakes.total_duration / (params.horizon * pairs) if pairs else None
        ),
        "msgs_per_s": load["total"],
    }


def _run_stress_cell(
    params: Q1Params, setup, plan: FaultPlan, fault: str, seed: int
) -> dict:
    """One stress cell: the scripted crash *plus* a named fault scenario,
    scored against epoch ground truth (a suspicion of a down-but-recovering
    node is correct until the recovery instant)."""
    victim = params.n
    members = tuple(range(1, params.n + 1))
    plan = plan.merged(
        fault_plan_for(
            fault,
            members=members,
            f=params.f,
            horizon=params.horizon,
            exclude=(victim,),
        )
    )
    if setup.retry is None:
        # Query families stall when a partition or a burst eats the quorum;
        # the lossy-channel rebroadcast (QueryPacing.retry) is the standard
        # remedy and a no-op knob for the timer families.
        setup = setup.with_(retry=2.0)
    cluster = run_scenario(
        setup=setup,
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        latency=LogNormalLatency(params.delay_median, params.delay_sigma),
        fault_plan=plan,
        seed=seed,
    )
    windows = epoch_detection_stats(
        cluster.trace, plan, cluster.membership, horizon=params.horizon
    )
    crash = next(
        w for w in windows if w.crashed == victim and w.crash_time == params.crash_at
    )
    mistakes = epoch_mistake_stats(
        cluster.trace, plan, cluster.membership, horizon=params.horizon
    )
    load = message_load(cluster.trace, horizon=params.horizon, n=params.n)
    alive_time = mistakes.alive_pair_time
    return {
        "detect_mean": crash.mean_latency,
        "detect_max": crash.max_latency,
        "detected_by": len(crash.latencies),
        # Per co-alive pair-second — same unit as the calm grid's
        # per-pair-per-second rate, with epoch-aware denominators.
        "mistake_rate": mistakes.count / alive_time if alive_time else None,
        "query_accuracy": (
            mistakes.query_accuracy_probability if alive_time else None
        ),
        "msgs_per_s": load["total"],
    }


def tabulate(params: Q1Params, values: list[dict]) -> Table:
    if params.faults:
        return _tabulate_stress(params, values)
    return _tabulate_calm(params, values)


def _tabulate_stress(params: Q1Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"Q1: QoS under fault stress — {', '.join(params.faults)} "
            f"(n={params.n}, f={params.f}, 1 crash, {params.trials} trials)"
        ),
        headers=[
            "fault",
            "detector",
            "detect mean (s)",
            "detect max (s)",
            "false susp. /pair/min",
            "query accuracy P_A",
            "msgs/s/process",
        ],
        precision=4,
    )
    grouped = group_values(SPEC.cells(params), values, "fault", "detector")
    for fault in params.faults:
        for detector in params.detectors:
            trials = grouped[(fault, detector)]
            detected = [v for v in trials if v["detect_mean"] is not None]
            monitored = [v for v in trials if v["mistake_rate"] is not None]
            table.add_row(
                fault,
                setup_for(detector).label,
                stat_mean(v["detect_mean"] for v in detected),
                stat_mean(v["detect_max"] for v in detected),
                stat_mean(v["mistake_rate"] * 60.0 for v in monitored),
                stat_mean(v["query_accuracy"] for v in monitored),
                stat_mean(v["msgs_per_s"] for v in trials),
            )
    table.add_note(
        "Suspicions scored against epoch ground truth: accusing a process "
        "inside a down window (crash, pre-recovery, pre-join, departed) is "
        "correct, not a mistake."
    )
    table.add_note(
        "Query families run with retry rebroadcast (2s) so partition-stalled "
        "rounds resume after the heal."
    )
    return table


def _tabulate_calm(params: Q1Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"Q1: QoS comparison — detection time vs query accuracy "
            f"(n={params.n}, f={params.f}, 1 crash, {params.trials} trials)"
        ),
        headers=[
            "detector",
            "detect mean (s)",
            "detect max (s)",
            "false susp. /pair/min",
            "query accuracy P_A",
            "msgs/s/process",
        ],
        precision=4,
    )
    grouped = group_values(SPEC.cells(params), values, "detector")
    for detector in params.detectors:
        trials = grouped[(detector,)]
        detected = [v for v in trials if v["detect_mean"] is not None]
        monitored = [v for v in trials if v["mistake_rate"] is not None]
        table.add_row(
            setup_for(detector).label,
            stat_mean(v["detect_mean"] for v in detected),
            stat_mean(v["detect_max"] for v in detected),
            stat_mean(v["mistake_rate"] * 60.0 for v in monitored),
            stat_mean(v["query_accuracy"] for v in monitored),
            stat_mean(v["msgs_per_s"] for v in trials),
        )
    table.add_note(
        "T_D from the crash at t="
        f"{params.crash_at:g}s; λ_M and P_A over correct pairs only (Chen et al.)."
    )
    table.add_note(
        "detector axis defaults to every registered family; new registrations "
        "join this comparison automatically."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="q1",
        title="QoS comparison: detection time vs accuracy, all registered detectors",
        params_cls=Q1Params,
        axes=(FaultAxis(), DetectorAxis(), TrialAxis()),
        run_cell=run_cell,
        metrics=(
            Metric("detect_mean", "mean crash-detection latency T_D (s)"),
            Metric("detect_max", "strong-completeness latency (s)"),
            Metric("detected_by", "observers that detected the crash"),
            Metric("mistake_rate", "false suspicions per correct pair per second (λ_M)"),
            Metric("query_accuracy", "fraction of pair-time the output was correct (P_A)"),
            Metric("msgs_per_s", "messages per second per process"),
        ),
        shapes=(
            Banded("query_accuracy", lo=0.0, hi=1.0),
            Banded("detect_mean", lo=0.0),
            Banded("detect_max", lo=0.0),
            Banded("msgs_per_s", lo=0.0),
        ),
        tabulate=tabulate,
    )
)


def run(params: Q1Params | None = None) -> Table:
    return run_grid(SPEC, params if params is not None else Q1Params()).tables()[0]
