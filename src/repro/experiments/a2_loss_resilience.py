"""A2 (ablation) — behavior outside the model: lossy channels.

The paper assumes reliable links ("they do not create, alter or lose
messages").  This ablation measures what actually breaks when that
assumption fails, and what the minimal fix costs:

* without retransmission, a query round whose broadcast loses too many
  copies can stall below its ``n - f`` quorum forever — the process stops
  cycling (its detector freezes, completeness dies silently);
* with the driver-level retransmission extension (``QueryPacing.retry``),
  rounds always eventually terminate: lost queries/responses are re-asked.
  The timer involved re-transmits only — no suspicion is raised from it —
  so detection remains time-free.

Reported per (loss rate, retry setting): processes whose rounds froze,
round throughput, detection of a real crash, retransmissions sent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.runner import run_grid
from ..metrics import detection_stats
from ..sim.faults import CrashFault, FaultPlan
from .api import ExperimentSpec, Metric, ParamAxis, register_experiment
from .report import Table
from .scenarios import run_scenario, setup_for

__all__ = ["A2Params", "SPEC", "run_cell", "tabulate", "run"]


@dataclass(frozen=True)
class A2Params:
    n: int = 10
    f: int = 2
    #: registry key of the detector under test (sweepable axis)
    detector: str = "time-free"
    loss_rates: tuple[float, ...] = (0.0, 0.1, 0.3)
    retry_settings: tuple[float | None, ...] = (None, 0.5)
    crash_at: float = 20.0
    horizon: float = 60.0
    grace: float = 0.2
    seed: int = 1

    @classmethod
    def full(cls) -> "A2Params":
        return cls(n=20, f=4, loss_rates=(0.0, 0.05, 0.1, 0.2, 0.3, 0.4))


def run_cell(params: A2Params, coords: dict, seed: int) -> dict:
    victim = params.n
    setup = setup_for(params.detector).with_(
        grace=params.grace, idle=0.1, retry=coords["retry"]
    )
    cluster = run_scenario(
        setup=setup,
        n=params.n,
        f=params.f,
        horizon=params.horizon,
        seed=seed,
        fault_plan=FaultPlan.of(crashes=[CrashFault(victim, params.crash_at)]),
        loss_rate=coords["loss"],
        start_stagger=params.grace,
    )
    correct = cluster.correct_processes()
    # A process is "frozen" if it completed no round in the final
    # quarter of the run: its current query never reached quorum.
    cutoff = params.horizon * 0.75
    active = {r.querier for r in cluster.trace.rounds if r.finished_at >= cutoff}
    frozen = len([pid for pid in correct if pid not in active])
    retransmissions = sum(
        getattr(driver, "retries_sent", 0) for driver in cluster.drivers.values()
    )
    crash = detection_stats(cluster.trace, victim, params.crash_at, correct)
    return {
        "frozen": frozen,
        "rounds_per_process": len(cluster.trace.rounds) / (params.n - 1),
        "retransmissions": retransmissions,
        "detected_by": f"{len(crash.latencies)}/{len(correct)}",
    }


def tabulate(params: A2Params, values: list[dict]) -> Table:
    table = Table(
        title=(
            f"A2 (ablation): message loss vs round liveness "
            f"(n={params.n}, f={params.f}, 1 crash at t={params.crash_at:g}s)"
        ),
        headers=[
            "loss rate",
            "retry (s)",
            "frozen processes",
            "rounds/process",
            "retransmissions",
            "crash detected by",
        ],
    )
    for coords, value in zip(SPEC.cells(params), values):
        table.add_row(
            coords["loss"],
            coords["retry"] if coords["retry"] is not None else "off",
            value["frozen"],
            value["rounds_per_process"],
            value["retransmissions"],
            value["detected_by"],
        )
    table.add_note(
        "reliable channels (loss 0) never need retries; with loss, rounds "
        "stall without retransmission and recover with it."
    )
    return table


SPEC = register_experiment(
    ExperimentSpec(
        exp_id="a2",
        title="message loss vs round liveness (retry ablation)",
        params_cls=A2Params,
        axes=(ParamAxis("loss", field="loss_rates"), ParamAxis("retry", field="retry_settings")),
        run_cell=run_cell,
        metrics=(
            Metric("frozen", "correct processes whose rounds stalled"),
            Metric("rounds_per_process", "completed query rounds per process"),
            Metric("retransmissions", "driver-level retries sent"),
            Metric("detected_by", "observers that detected the crash / correct"),
        ),
        tabulate=tabulate,
    )
)


def run(params: A2Params = A2Params()) -> Table:
    return run_grid(SPEC, params).tables()[0]
