"""Time-free detection with unknown participants (extension Algorithm 1+2).

``PartialTimeFreeDetector`` differs from the core detector in exactly the
ways the follow-up report describes:

* no membership parameter: ``known_i`` starts empty and accretes every
  process a query is received from (line 20);
* the query termination quorum is ``d - f`` (``d`` = range density), and a
  node's broadcast only reaches its 1-hop neighbors — the hosting network
  decides reachability, the detector does not know the topology;
* end-of-round suspicion applies to ``known_i \\ rec_from_i`` (line 9) —
  a node can only suspect processes it has actually met;
* with ``mobility=True``, adopting a *relayed* mistake about ``p_x`` from a
  sender ``p_j != p_x`` evicts ``p_x`` from ``known_i`` (lines 36-38):
  ``p_x`` must live in a remote range now, and keeping it in ``known_i``
  would re-suspect it forever (the ping-pong effect).

The suspicion/mistake merge rules are byte-identical to the core's — both
delegate to :class:`repro.core.tags.SuspicionState`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.classes import FailureDetector
from ..core.effects import Broadcast, SendTo
from ..core.messages import Query, Response
from ..core.protocol import QueryRoundOutcome
from ..core.tags import MergeOutcome, SuspicionState
from ..errors import ConfigurationError, ProtocolError
from ..ids import ProcessId

__all__ = ["PartialDetectorConfig", "PartialTimeFreeDetector", "partial_driver_factory"]


@dataclass(frozen=True)
class PartialDetectorConfig:
    """Static parameters: the node's id, the range density ``d`` and ``f``.

    ``d`` and ``f`` are the only global knowledge the extension assumes
    (Section 3 of the report: both are known to every process).  The quorum
    is ``d - f``; an f-covering network guarantees ``d > f + 1`` so the
    quorum is at least 2 (the node itself plus one correct neighbor).
    """

    process_id: ProcessId
    range_density: int
    f: int

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ConfigurationError(f"f must be >= 0, got {self.f}")
        if self.range_density <= self.f:
            raise ConfigurationError(
                f"need d > f for a positive quorum, got d={self.range_density}, f={self.f}"
            )

    @property
    def quorum(self) -> int:
        """``d - f`` responses terminate a query."""
        return self.range_density - self.f


class PartialTimeFreeDetector(FailureDetector):
    """Sans-I/O detector for unknown, partially-connected networks.

    Satisfies the same driver protocol as the core detector, so
    :class:`repro.sim.node.QueryResponseDriver` hosts both.
    """

    def __init__(self, config: PartialDetectorConfig, *, mobility: bool = True) -> None:
        self._config = config
        self._state = SuspicionState(owner=config.process_id)
        self._known: set[ProcessId] = set()
        self._mobility = mobility
        self._round_id = 0
        self._collecting = False
        self._responders: list[ProcessId] = []
        self._responder_set: set[ProcessId] = set()
        self._rounds_completed = 0
        # Config-constant, cached off the property chain (checked per response).
        self._quorum = config.quorum
        # Reused while peers query with the same round id (Response is
        # frozen; receivers never rely on object identity).
        self._response_cache: Response | None = None

    # -- introspection ---------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._config.process_id

    @property
    def config(self) -> PartialDetectorConfig:
        return self._config

    @property
    def collecting(self) -> bool:
        return self._collecting

    @property
    def counter(self) -> int:
        return self._state.counter

    @property
    def rounds_completed(self) -> int:
        return self._rounds_completed

    @property
    def state(self) -> SuspicionState:
        return self._state

    def known(self) -> frozenset[ProcessId]:
        """``known_i``: processes this node has received a query from."""
        return frozenset(self._known)

    def suspects(self) -> frozenset[ProcessId]:
        return self._state.suspected.ids()

    def mistakes(self) -> frozenset[ProcessId]:
        return self._state.mistakes.ids()

    # -- task T1 -----------------------------------------------------------
    def start_round(self) -> Broadcast:
        if self._collecting:
            raise ProtocolError(
                f"{self.process_id!r}: previous query not yet terminated"
            )
        self._round_id += 1
        self._collecting = True
        self._responders = [self.process_id]
        self._responder_set = {self.process_id}
        query = Query(
            sender=self.process_id,
            round_id=self._round_id,
            suspected=self._state.suspected.snapshot(),
            mistakes=self._state.mistakes.snapshot(),
        )
        return Broadcast(query)

    def on_response(self, response: Response) -> bool:
        if not self._collecting or response.round_id != self._round_id:
            return False
        if response.sender in self._responder_set:
            return False
        self._responder_set.add(response.sender)
        self._responders.append(response.sender)
        return True

    def quorum_reached(self) -> bool:
        return self._collecting and len(self._responders) >= self._quorum

    def finish_round(self) -> QueryRoundOutcome:
        if not self._collecting:
            raise ProtocolError(f"{self.process_id!r}: no round in progress")
        if not self.quorum_reached():
            raise ProtocolError(
                f"{self.process_id!r}: round {self._round_id} has "
                f"{len(self._responders)}/{self._config.quorum} responses"
            )
        newly: list[ProcessId] = []
        # Line 9: only *known* processes can be suspected.  In steady state
        # every known process responded, so the common case sorts nothing.
        missing = self._known - self._responder_set
        if missing:
            for pj in sorted(missing, key=repr):
                result = self._state.suspect_locally(pj)
                if result.outcome is MergeOutcome.SUSPICION_ADOPTED:
                    newly.append(pj)
        counter_after = self._state.end_round()
        winners = frozenset(self._responders[: self._quorum])
        outcome = QueryRoundOutcome(
            round_id=self._round_id,
            responders=tuple(self._responders),
            winners=winners,
            newly_suspected=tuple(newly),
            counter_after=counter_after,
            suspects_after=self.suspects(),
        )
        self._collecting = False
        self._rounds_completed += 1
        return outcome

    def abort_round(self) -> None:
        self._collecting = False
        self._responders = []
        self._responder_set = set()

    # -- task T2 -----------------------------------------------------------
    def on_query(self, query: Query) -> SendTo | None:
        if query.sender == self.process_id:
            return None
        # Line 20: learn the sender.
        self._known.add(query.sender)
        # Batched T2 merge (same fused pass as the core detector); the
        # compact delta then drives the mobility rule below.
        delta = self._state.merge_query(query.suspected, query.mistakes)
        if self._mobility and delta.mistakes_adopted:
            # Algorithm 2, lines 36-38: a relayed mistake about a process we
            # did not hear it from directly means that process now lives in
            # a remote range — forget it, or we would suspect it forever.
            sender = query.sender
            owner = self.process_id
            for pid in delta.mistakes_adopted:
                if pid != sender and pid != owner:
                    self._known.discard(pid)
        response = self._response_cache
        if response is None or response.round_id != query.round_id:
            response = Response(sender=self.process_id, round_id=query.round_id)
            self._response_cache = response
        return SendTo(query.sender, response)


def partial_driver_factory(
    d: int,
    f: int,
    pacing=None,
    *,
    mobility: bool = True,
):
    """Driver factory for :class:`repro.sim.cluster.SimCluster`.

    ``d`` must be the topology's actual range density (use
    ``topology.range_density()``); a larger value deadlocks rounds on the
    sparsest node, a smaller one weakens detection.
    """
    from ..sim.node import QueryPacing, QueryResponseDriver

    pacing = pacing if pacing is not None else QueryPacing()

    def factory(process, cluster) -> QueryResponseDriver:
        config = PartialDetectorConfig(process_id=process.pid, range_density=d, f=f)
        detector = PartialTimeFreeDetector(config, mobility=mobility)
        return QueryResponseDriver(process, detector, pacing)

    return factory
