"""f-covering validation utilities (Definition 3 + Menger's theorem).

A network is *f-covering* iff it is ``(f + 1)``-connected; by Menger's
theorem that is equivalent to ``f + 1`` vertex-independent paths between
every pair of nodes, so removing any ``f`` nodes leaves the survivors
connected.  These helpers certify experiment topologies before a run —
the extension's completeness proof silently assumes the property, so a run
on a non-covering network would produce garbage, not insight.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..ids import ProcessId
from ..sim.topology import Topology

__all__ = [
    "independent_path_count",
    "validate_f_covering",
    "validate_f_covering_fast",
    "validate_mobility_scenario",
]


def independent_path_count(topology: Topology, a: ProcessId, b: ProcessId) -> int:
    """Number of vertex-independent paths between ``a`` and ``b``."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(topology.ids())
    graph.add_edges_from(topology.edges())
    if topology.has_edge(a, b):
        # Local connectivity is defined for non-adjacent pairs; an edge is
        # itself one independent path plus the non-adjacent count without it.
        graph.remove_edge(a, b)
        return 1 + nx.connectivity.local_node_connectivity(graph, a, b)
    return nx.connectivity.local_node_connectivity(graph, a, b)


def validate_f_covering(topology: Topology, f: int) -> None:
    """Raise :class:`TopologyError` unless the network is f-covering.

    Also checks the derived density requirement ``d > f + 1`` the report
    states for f-covering networks.
    """
    connectivity = topology.node_connectivity()
    if connectivity < f + 1:
        raise TopologyError(
            f"network is not {f}-covering: node connectivity {connectivity} < {f + 1}"
        )
    density = topology.range_density()
    if density <= f + 1:
        raise TopologyError(
            f"f-covering network must have range density d > f + 1; "
            f"got d={density}, f={f}"
        )


def validate_f_covering_fast(topology: Topology, f: int) -> None:
    """Necessary-condition screen for f-covering, without Menger.

    Checks connectivity (one BFS), minimum degree >= f + 1 and the report's
    density requirement d > f + 1 — all O(nodes + edges).  These are
    *necessary* for (f + 1)-connectivity but not sufficient; the large-n
    experiment presets use this screen because the exact certification in
    :func:`validate_f_covering` runs one max-flow per node pair and is
    infeasible past a few hundred nodes.
    """
    ids = topology.ids()
    if not ids:
        raise TopologyError("empty topology cannot be f-covering")
    start = next(iter(ids))
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier: list[ProcessId] = []
        for pid in frontier:
            for neighbor in topology.neighbors(pid):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if len(seen) != len(ids):
        raise TopologyError(
            f"network is not {f}-covering: it is disconnected "
            f"({len(seen)}/{len(ids)} nodes reachable)"
        )
    min_degree = min(len(topology.neighbors(pid)) for pid in ids)
    if min_degree < f + 1:
        raise TopologyError(
            f"network cannot be {f}-covering: minimum degree {min_degree} < {f + 1}"
        )
    density = topology.range_density()
    if density <= f + 1:
        raise TopologyError(
            f"f-covering network must have range density d > f + 1; "
            f"got d={density}, f={f}"
        )


def validate_mobility_scenario(
    topology: Topology,
    mover: ProcessId,
    *,
    d: int,
    f: int,
) -> None:
    """Check the mobility experiment's stated restriction (Section 6.2).

    Every neighbor of the mover must keep at least ``d - f`` *other*
    neighbors once the mover departs, so their queries still terminate
    ("all neighbors of m must have d - f + 1 neighbors").
    """
    for neighbor in sorted(topology.neighbors(mover), key=repr):
        remaining = len(topology.neighbors(neighbor) - {mover})
        if remaining < d - f:
            raise TopologyError(
                f"neighbor {neighbor!r} of mover {mover!r} would keep only "
                f"{remaining} neighbors (< d - f = {d - f}); its queries "
                "could never terminate after the move"
            )
