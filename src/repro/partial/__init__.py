"""Extension: unknown membership, partial connectivity, mobility.

This subpackage implements the follow-up generalization of the DSN 2003
algorithm (INRIA RR-6088 / arXiv cs/0701015) on top of the same
counter-tagged machinery:

* membership is *learned*: ``known_i`` collects the processes a node has
  ever received a query from (the membership property MP makes this
  well-founded);
* the response quorum becomes ``d - f`` where ``d`` is the network's *range
  density* (the smallest 1-hop neighborhood size), and queries only reach
  1-hop neighbors — suspicion/mistake records *flood* hop by hop;
* correctness needs the network to be **f-covering** ((f+1)-connected);
* mobility support (Algorithm 2) adds a single eviction rule that breaks
  the suspicion ping-pong between a mover and its old neighborhood.

The DSN 2003 core is recovered exactly by running this detector on a full
mesh with ``d = n``.
"""

from .covering import (
    independent_path_count,
    validate_f_covering,
    validate_f_covering_fast,
    validate_mobility_scenario,
)
from .protocol import (
    PartialDetectorConfig,
    PartialTimeFreeDetector,
    partial_driver_factory,
)

__all__ = [
    "PartialDetectorConfig",
    "PartialTimeFreeDetector",
    "independent_path_count",
    "partial_driver_factory",
    "validate_f_covering",
    "validate_f_covering_fast",
    "validate_mobility_scenario",
]
