"""Leader election as an asyncio service (Omega over the runtime).

``LeaderElectorService`` extends :class:`~repro.runtime.service.DetectorService`
with the accusation-counter Omega layer (:mod:`repro.core.omega`): counters
ride the query/response piggyback slot, each completed round accuses the
processes that missed it, and ``leader()`` returns the current common
choice.  Under the strengthened message pattern (some correct process
eventually wins everyone's quorums) all correct services converge on the
same correct leader — the oracle leader-based protocols (Paxos-style
ballots, primary-backup) consume.
"""

from __future__ import annotations

import asyncio

from ..core.omega import OmegaElector
from ..core.protocol import DetectorConfig, QueryRoundOutcome, TimeFreeDetector
from ..ids import ProcessId
from .service import DetectorService, ServicePacing
from .transport import Transport

__all__ = ["LeaderElectorService"]


class LeaderElectorService(DetectorService):
    """A detector service that additionally elects an eventual leader."""

    def __init__(
        self,
        config: DetectorConfig,
        transport: Transport,
        *,
        pacing: ServicePacing = ServicePacing(),
    ) -> None:
        super().__init__(config, transport, pacing=pacing)
        self.elector = OmegaElector(config)
        # Rebuild the detector with the elector's piggyback hooks; the base
        # constructor created a plain one.
        self.detector = TimeFreeDetector(
            config,
            extra_provider=self.elector.payload,
            extra_consumer=self.elector.consume,
        )
        self._leader_watchers: list[asyncio.Queue] = []
        self._last_leader: ProcessId | None = None

    # ------------------------------------------------------------------
    def leader(self) -> ProcessId:
        """The currently trusted leader."""
        return self.elector.leader()

    def watch_leader(self) -> asyncio.Queue:
        """A queue receiving every subsequent leader change."""
        queue: asyncio.Queue = asyncio.Queue()
        self._leader_watchers.append(queue)
        return queue

    async def wait_for_leader(
        self, predicate, *, timeout: float | None = None
    ) -> ProcessId:
        """Block until ``predicate(leader)`` holds; returns that leader."""
        if predicate(self.leader()):
            return self.leader()
        queue = self.watch_leader()
        try:
            async with asyncio.timeout(timeout):
                while True:
                    leader = await queue.get()
                    if predicate(leader):
                        return leader
        finally:
            self._leader_watchers.remove(queue)

    # ------------------------------------------------------------------
    def _after_round(self, outcome: QueryRoundOutcome) -> None:
        self.elector.observe_round(outcome)
        self._notify_leader_change()

    def _on_message(self, src: ProcessId, message: object) -> None:
        super()._on_message(src, message)
        # Gossiped accusations may have shifted the argmin.
        self._notify_leader_change()

    def _notify_leader_change(self) -> None:
        leader = self.elector.leader()
        if leader == self._last_leader:
            return
        self._last_leader = leader
        for queue in self._leader_watchers:
            queue.put_nowait(leader)
