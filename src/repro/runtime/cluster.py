"""LocalCluster: a whole detector deployment in one asyncio process.

The quickstart surface of the library::

    cluster = LocalCluster(n=5, f=2)
    await cluster.start()
    cluster.crash(3)
    await cluster.until_suspected(observer=1, target=3)
    await cluster.stop()

Any registered detector family deploys the same way::

    cluster = LocalCluster(
        n=5, f=2, detector="heartbeat",
        detector_params={"period": 0.05, "timeout": 0.2},
    )
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from ..core.protocol import DetectorConfig
from ..errors import ConfigurationError
from ..ids import ProcessId, make_membership
from ..sim.latency import LatencyModel
from .memory import MemoryHub
from .service import DetectorService, ServicePacing

__all__ = ["LocalCluster"]


class LocalCluster:
    """``n`` detector services over an in-process :class:`MemoryHub`.

    ``detector`` is a :mod:`repro.detectors` registry key (default: the
    paper's ``time-free``); ``detector_params`` are the family's typed
    knobs, in real seconds.
    """

    def __init__(
        self,
        n: int,
        f: int,
        *,
        detector: str = "time-free",
        detector_params: Mapping[str, Any] | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        pacing: ServicePacing | None = None,
        seed: int = 1,
    ) -> None:
        if n < 2:
            raise ConfigurationError("a cluster needs at least 2 processes")
        self.membership = frozenset(make_membership(n))
        self.f = f
        self.detector_kind = detector
        from ..detectors import PACING_PARAMS, get_detector

        self.hub = MemoryHub(latency=latency, loss_rate=loss_rate, seed=seed)
        params = dict(detector_params) if detector_params is not None else {}
        # Pacing resolution: an explicit `pacing` wins (from_registry raises
        # if detector_params also carries pacing knobs).  Otherwise pacing
        # knobs in detector_params are merged over LocalCluster's classic
        # real-time default (20 ms grace) — setting one knob must not reset
        # the others to the registry's simulated-seconds defaults.
        if pacing is None:
            knobs = {
                name: params.pop(name)
                for name in PACING_PARAMS
                if name in params and name in get_detector(detector).param_names()
            }
            pacing = ServicePacing(
                grace=knobs.get("grace", 0.02),
                idle=knobs.get("idle", 0.0),
                retry=knobs.get("retry", None),
            )
        self.services: dict[ProcessId, DetectorService] = {}
        for pid in sorted(self.membership):
            config = DetectorConfig(process_id=pid, membership=self.membership, f=f)
            transport = self.hub.create_transport(pid)
            self.services[pid] = DetectorService.from_registry(
                detector, config, transport, pacing=pacing, **params
            )

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await asyncio.gather(*(service.start() for service in self.services.values()))

    async def stop(self) -> None:
        await asyncio.gather(*(service.stop() for service in self.services.values()))

    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Fail-stop ``pid``: silence it at the hub and kill its service."""
        if pid not in self.services:
            raise ConfigurationError(f"unknown process {pid!r}")
        self.hub.crash(pid)
        service = self.services[pid]
        if service._task is not None:
            service._task.cancel()

    def suspects_of(self, pid: ProcessId) -> frozenset[ProcessId]:
        return self.services[pid].suspects()

    async def until_suspected(
        self, observer: ProcessId, target: ProcessId, *, timeout: float | None = 30.0
    ) -> frozenset[ProcessId]:
        """Wait until ``observer`` suspects ``target``."""
        return await self.services[observer].wait_until_suspected(target, timeout=timeout)

    async def until_all_suspect(
        self, target: ProcessId, *, timeout: float | None = 30.0
    ) -> None:
        """Wait until every live service suspects ``target``."""
        waiters = [
            service.wait_until_suspected(target, timeout=timeout)
            for pid, service in self.services.items()
            if pid != target and not self.hub.is_crashed(pid)
        ]
        await asyncio.gather(*waiters)
