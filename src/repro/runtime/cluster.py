"""LocalCluster: a whole detector deployment in one asyncio process.

The quickstart surface of the library::

    cluster = LocalCluster(n=5, f=2)
    await cluster.start()
    cluster.crash(3)
    await cluster.until_suspected(observer=1, target=3)
    await cluster.stop()
"""

from __future__ import annotations

import asyncio

from ..core.protocol import DetectorConfig
from ..errors import ConfigurationError
from ..ids import ProcessId, make_membership
from ..sim.latency import LatencyModel
from .memory import MemoryHub
from .service import DetectorService, ServicePacing

__all__ = ["LocalCluster"]


class LocalCluster:
    """``n`` detector services over an in-process :class:`MemoryHub`."""

    def __init__(
        self,
        n: int,
        f: int,
        *,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        pacing: ServicePacing | None = None,
        seed: int = 1,
    ) -> None:
        if n < 2:
            raise ConfigurationError("a cluster needs at least 2 processes")
        self.membership = frozenset(make_membership(n))
        self.f = f
        self.hub = MemoryHub(latency=latency, loss_rate=loss_rate, seed=seed)
        pacing = pacing if pacing is not None else ServicePacing(grace=0.02)
        self.services: dict[ProcessId, DetectorService] = {}
        for pid in sorted(self.membership):
            config = DetectorConfig(process_id=pid, membership=self.membership, f=f)
            transport = self.hub.create_transport(pid)
            self.services[pid] = DetectorService(config, transport, pacing=pacing)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await asyncio.gather(*(service.start() for service in self.services.values()))

    async def stop(self) -> None:
        await asyncio.gather(*(service.stop() for service in self.services.values()))

    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Fail-stop ``pid``: silence it at the hub and kill its service."""
        if pid not in self.services:
            raise ConfigurationError(f"unknown process {pid!r}")
        self.hub.crash(pid)
        service = self.services[pid]
        if service._task is not None:
            service._task.cancel()

    def suspects_of(self, pid: ProcessId) -> frozenset[ProcessId]:
        return self.services[pid].suspects()

    async def until_suspected(
        self, observer: ProcessId, target: ProcessId, *, timeout: float | None = 30.0
    ) -> frozenset[ProcessId]:
        """Wait until ``observer`` suspects ``target``."""
        return await self.services[observer].wait_until_suspected(target, timeout=timeout)

    async def until_all_suspect(
        self, target: ProcessId, *, timeout: float | None = 30.0
    ) -> None:
        """Wait until every live service suspects ``target``."""
        waiters = [
            service.wait_until_suspected(target, timeout=timeout)
            for pid, service in self.services.items()
            if pid != target and not self.hub.is_crashed(pid)
        ]
        await asyncio.gather(*waiters)
