"""Abstract transport: how runtime services reach their peers."""

from __future__ import annotations

import abc
from typing import Callable, Iterable

from ..ids import ProcessId

__all__ = ["Transport", "MessageHandler"]

#: Called (synchronously, on the event loop) for each delivered message.
MessageHandler = Callable[[ProcessId, object], None]


class Transport(abc.ABC):
    """Message transport bound to one process identity.

    Implementations deliver *registered wire messages* (see
    :mod:`repro.core.messages`); whether they serialise them (UDP) or pass
    object references (memory hub) is their business.  Delivery calls the
    handler installed via :meth:`set_handler` on the event loop thread; the
    handler must not block.
    """

    def __init__(self, process_id: ProcessId) -> None:
        self._process_id = process_id
        self._handler: MessageHandler | None = None

    @property
    def process_id(self) -> ProcessId:
        return self._process_id

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def _dispatch(self, src: ProcessId, message: object) -> None:
        if self._handler is not None:
            self._handler(src, message)

    # -- lifecycle -----------------------------------------------------------
    @abc.abstractmethod
    async def start(self) -> None:
        """Bind/connect; must be called before :meth:`send`."""

    @abc.abstractmethod
    async def close(self) -> None:
        """Release resources; pending deliveries may be dropped."""

    # -- I/O --------------------------------------------------------------------
    @abc.abstractmethod
    async def send(self, dst: ProcessId, message: object) -> bool:
        """Best-effort transmission; returns whether it was put on the wire."""

    async def broadcast(self, peers: Iterable[ProcessId], message: object) -> int:
        """Send to each peer; returns the number put on the wire."""
        sent = 0
        for dst in peers:
            if dst == self._process_id:
                continue
            if await self.send(dst, message):
                sent += 1
        return sent
