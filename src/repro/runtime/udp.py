"""UDP transport: JSON datagrams between real processes.

Each endpoint binds a local UDP socket and knows its peers' addresses.
Messages are (de)serialised with the shared codec
(:mod:`repro.core.messages`), so any registered message — detector queries,
heartbeats, consensus ballots — travels unchanged.  UDP's fire-and-forget
semantics match the model's *fair-lossy at worst* channels; the detector's
query-response rounds are naturally idempotent, and the reproduction
scenarios assume reliable delivery on a LAN.
"""

from __future__ import annotations

import asyncio
from typing import Mapping

from ..core.messages import decode_message, encode_message
from ..errors import TransportError
from ..ids import ProcessId
from .transport import Transport

__all__ = ["UdpTransport"]

Address = tuple[str, int]


class _DatagramProtocol(asyncio.DatagramProtocol):
    def __init__(self, transport: "UdpTransport") -> None:
        self._owner = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._on_datagram(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - OS dependent
        self._owner._last_error = exc


class UdpTransport(Transport):
    """A UDP endpoint with a static peer directory."""

    def __init__(
        self,
        process_id: ProcessId,
        bind: Address,
        peers: Mapping[ProcessId, Address],
    ) -> None:
        super().__init__(process_id)
        self._bind = bind
        self._peers = dict(peers)
        self._udp: asyncio.DatagramTransport | None = None
        self._last_error: Exception | None = None

    @property
    def local_address(self) -> Address | None:
        if self._udp is None:
            return None
        return self._udp.get_extra_info("sockname")[:2]

    async def start(self) -> None:
        if self._udp is not None:
            return
        loop = asyncio.get_running_loop()
        self._udp, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self), local_addr=self._bind
        )

    async def close(self) -> None:
        if self._udp is not None:
            self._udp.close()
            self._udp = None

    async def send(self, dst: ProcessId, message: object) -> bool:
        if self._udp is None:
            raise TransportError(f"transport of {self.process_id!r} is not started")
        addr = self._peers.get(dst)
        if addr is None:
            return False
        self._udp.sendto(encode_message(message), addr)
        return True

    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes) -> None:
        try:
            message = decode_message(data)
        except TransportError:
            return  # garbage datagram: drop, never crash the service
        sender = getattr(message, "sender", None)
        if sender is None:
            return
        self._dispatch(sender, message)
