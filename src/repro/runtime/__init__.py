"""asyncio runtime: run the detector as a real networked service.

The simulator answers *experimental* questions; this package is what a
downstream user deploys: the same sans-I/O detector cores driven by real
transports —

* :class:`~repro.runtime.memory.MemoryHub` — in-process transport with
  injected delay/loss, for tests and single-process demos;
* :class:`~repro.runtime.udp.UdpTransport` — JSON datagrams over UDP for
  actual multi-process clusters;
* :class:`~repro.runtime.service.DetectorService` — the query-response loop
  as an asyncio task, exposing ``suspects()`` and an async ``watch()``
  stream of suspicion changes;
* :class:`~repro.runtime.cluster.LocalCluster` — n services over a memory
  hub in one call (the quickstart entry point).

A note on fidelity: under CPython's GIL, wall-clock timing of an in-process
cluster is only approximate — fine for the detector (it is *time-free*; its
correctness never depends on delay bounds), but quantitative latency
measurements belong on the simulator.
"""

from .cluster import LocalCluster
from .leader import LeaderElectorService
from .memory import MemoryHub, MemoryTransport
from .service import DetectorService, ServicePacing
from .transport import Transport
from .udp import UdpTransport

__all__ = [
    "DetectorService",
    "LeaderElectorService",
    "LocalCluster",
    "MemoryHub",
    "MemoryTransport",
    "ServicePacing",
    "Transport",
    "UdpTransport",
]
