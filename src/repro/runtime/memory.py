"""In-process asyncio transport with injected delays and loss.

The asyncio twin of :class:`repro.sim.network.SimNetwork`: messages between
transports sharing a :class:`MemoryHub` are delayed by a
:class:`~repro.sim.latency.LatencyModel` (scaled real ``asyncio.sleep``) and
optionally dropped.  Crashing a process at the hub silences it both ways —
exactly the fail-stop model.
"""

from __future__ import annotations

import asyncio

from ..errors import TransportError
from ..ids import ProcessId
from ..sim.latency import ConstantLatency, LatencyModel
from ..sim.rng import RngStreams
from .transport import Transport

__all__ = ["MemoryHub", "MemoryTransport"]


class MemoryHub:
    """Shared in-process message bus for :class:`MemoryTransport` endpoints."""

    def __init__(
        self,
        *,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        seed: int = 1,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise TransportError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.latency = latency if latency is not None else ConstantLatency(0.0001)
        self.loss_rate = loss_rate
        self._rng = RngStreams(seed)
        self._delay_rng = self._rng.stream("hub", "delay")
        self._loss_rng = self._rng.stream("hub", "loss")
        self._transports: dict[ProcessId, MemoryTransport] = {}
        self._crashed: set[ProcessId] = set()
        self._inflight: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    def create_transport(self, pid: ProcessId) -> "MemoryTransport":
        if pid in self._transports:
            raise TransportError(f"{pid!r} already has a transport on this hub")
        transport = MemoryTransport(pid, self)
        self._transports[pid] = transport
        return transport

    def crash(self, pid: ProcessId) -> None:
        """Fail-stop ``pid``: all its traffic (both directions) is dropped."""
        self._crashed.add(pid)

    def is_crashed(self, pid: ProcessId) -> bool:
        return pid in self._crashed

    # ------------------------------------------------------------------
    def submit(self, src: ProcessId, dst: ProcessId, message: object) -> bool:
        if src in self._crashed or dst in self._crashed:
            return False
        if dst not in self._transports:
            return False
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            return False
        delay = self.latency.sample(self._delay_rng, src, dst)
        task = asyncio.get_running_loop().create_task(
            self._deliver_later(delay, src, dst, message)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        return True

    async def _deliver_later(
        self, delay: float, src: ProcessId, dst: ProcessId, message: object
    ) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if dst in self._crashed or src in self._crashed:
            return
        transport = self._transports.get(dst)
        if transport is not None and transport.started:
            transport._dispatch(src, message)

    async def drain(self) -> None:
        """Await all in-flight deliveries (test helper)."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)


class MemoryTransport(Transport):
    """One endpoint on a :class:`MemoryHub`."""

    def __init__(self, process_id: ProcessId, hub: MemoryHub) -> None:
        super().__init__(process_id)
        self._hub = hub
        self.started = False

    async def start(self) -> None:
        self.started = True

    async def close(self) -> None:
        self.started = False

    async def send(self, dst: ProcessId, message: object) -> bool:
        if not self.started:
            raise TransportError(f"transport of {self.process_id!r} is not started")
        return self._hub.submit(self.process_id, dst, message)
