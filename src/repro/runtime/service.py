"""Failure detectors as asyncio services — generic over any registered core.

``DetectorService`` owns a sans-I/O detector core and a
:class:`~repro.runtime.transport.Transport` and drives the core as an
asyncio task.  Two drive strategies, picked by the core's protocol shape:

* **query cores** (:class:`~repro.core.protocol.TimeFreeDetector` — the
  default — or the partial extension) run task T1's loop.  **No step of
  failure detection awaits a timeout**: the loop awaits the response
  quorum *event*, then (optionally) sleeps a pacing grace to harvest
  extra responses — pacing affects traffic and false-positive pressure,
  never correctness.
* **timed cores** (any :class:`~repro.detectors.facade.DetectorCore`, e.g.
  the heartbeat/gossip/phi baselines) run an event-loop-clocked wake-up
  loop: sleep until ``next_wakeup()`` or an incoming message, feed the
  core, execute its effects.

:meth:`DetectorService.from_registry` builds either kind from a
:mod:`repro.detectors` registry key, so heartbeat/gossip/phi run over the
real memory/UDP transports exactly like the time-free detector does.

The suspect list is exposed synchronously (``suspects()``), as a change
stream (``watch()``), and as awaitable predicates
(``wait_until_suspected``), which is the shape applications like the
consensus example consume.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from ..core.effects import Broadcast, SendTo
from ..core.messages import Query, Response
from ..core.protocol import DetectorConfig, QueryRoundOutcome, TimeFreeDetector
from ..errors import ConfigurationError
from ..ids import ProcessId
from .transport import Transport

__all__ = ["ServicePacing", "DetectorService"]


@dataclass(frozen=True)
class ServicePacing:
    """Real-time pacing of query rounds (mirrors the simulator's pacing).

    ``retry`` — optional lossy-channel extension (see
    :class:`repro.sim.node.QueryPacing`): rebroadcast the pending query if
    the quorum is still outstanding after this many seconds.  Useful over
    UDP; it re-transmits only and never raises a suspicion, so detection
    stays time-free.
    """

    grace: float = 0.05
    idle: float = 0.0
    retry: float | None = None

    def __post_init__(self) -> None:
        if self.grace < 0 or self.idle < 0:
            raise ConfigurationError(f"pacing delays must be >= 0: {self}")
        if self.retry is not None and self.retry <= 0:
            raise ConfigurationError(f"retry must be > 0 when set: {self}")


class DetectorService:
    """Runs any registered failure-detector core over a transport.

    By default the core is the paper's :class:`TimeFreeDetector`; pass
    ``core=`` (any query or timed core built for ``config``'s identity and
    membership) or use :meth:`from_registry` to deploy another family.
    """

    def __init__(
        self,
        config: DetectorConfig,
        transport: Transport,
        *,
        pacing: ServicePacing = ServicePacing(),
        core: Any | None = None,
    ) -> None:
        if transport.process_id != config.process_id:
            raise ConfigurationError(
                f"transport identity {transport.process_id!r} does not match "
                f"detector identity {config.process_id!r}"
            )
        self.config = config
        self.detector = core if core is not None else TimeFreeDetector(config)
        if getattr(self.detector, "process_id", config.process_id) != config.process_id:
            raise ConfigurationError(
                f"core identity {self.detector.process_id!r} does not match "
                f"service identity {config.process_id!r}"
            )
        #: query cores speak start_round/on_query/on_response; anything else
        #: must speak the unified timed facade (start/on_wakeup/next_wakeup).
        self._query_mode = hasattr(self.detector, "start_round")
        if not self._query_mode and not hasattr(self.detector, "next_wakeup"):
            raise ConfigurationError(
                f"{type(self.detector).__name__} is neither a query core nor a "
                "timed core; see repro.detectors.facade.DetectorCore"
            )
        self.transport = transport
        self.pacing = pacing
        self._peers = list(config.peers_sorted)
        self._quorum_event = asyncio.Event()
        self._wake = asyncio.Event()
        self._elector = None
        self._task: asyncio.Task | None = None
        self._watchers: list[asyncio.Queue] = []
        self._send_tasks: set[asyncio.Task] = set()
        self.rounds_completed = 0
        self.retries_sent = 0
        transport.set_handler(self._on_message)

    @classmethod
    def from_registry(
        cls,
        detector: str,
        config: DetectorConfig,
        transport: Transport,
        *,
        pacing: ServicePacing | None = None,
        **params: Any,
    ) -> "DetectorService":
        """Build a service for any :mod:`repro.detectors` registry key.

        ``params`` are the family's typed knobs (e.g. ``period=0.05,
        timeout=0.2`` for ``heartbeat``), interpreted in *real seconds*
        here, not simulated ones.  For query families the pacing knobs
        (``grace``/``idle``/``retry``) become the service's
        :class:`ServicePacing`; passing both those knobs and an explicit
        ``pacing`` is a configuration error (one would silently win).
        """
        from ..detectors import (
            PACING_PARAMS,
            DetectorContext,
            DetectorMode,
            get_detector,
            pacing_fields,
        )

        spec = get_detector(detector)
        if (
            pacing is not None
            and spec.mode is DetectorMode.QUERY
            and any(name in params for name in PACING_PARAMS)
        ):
            raise ConfigurationError(
                f"pass either pacing= or the {list(PACING_PARAMS)} params "
                f"for detector {detector!r}, not both"
            )
        resolved = spec.make_params(**params)
        spec.check_required(resolved)
        context = DetectorContext(
            process_id=config.process_id, membership=config.membership, f=config.f
        )
        built = spec.build(context, resolved)
        if spec.mode is DetectorMode.QUERY:
            if pacing is None:
                pacing = ServicePacing(**pacing_fields(resolved))
            service = cls(config, transport, pacing=pacing, core=built.core)
            service._elector = built.elector
            return service
        return cls(
            config, transport, pacing=pacing or ServicePacing(), core=built.core
        )

    # -- observation ---------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self.config.process_id

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def suspects(self) -> frozenset[ProcessId]:
        return self.detector.suspects()

    def watch(self) -> asyncio.Queue:
        """A queue receiving every subsequent suspect-set change."""
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.append(queue)
        return queue

    async def wait_until_suspected(
        self, target: ProcessId, *, timeout: float | None = None
    ) -> frozenset[ProcessId]:
        """Block until ``target`` appears in the suspect list."""
        return await self.wait_for(lambda suspects: target in suspects, timeout=timeout)

    async def wait_until_cleared(
        self, target: ProcessId, *, timeout: float | None = None
    ) -> frozenset[ProcessId]:
        """Block until ``target`` is no longer suspected."""
        return await self.wait_for(lambda suspects: target not in suspects, timeout=timeout)

    async def wait_for(self, predicate, *, timeout: float | None = None):
        """Block until ``predicate(suspects)`` holds; returns the suspect set."""
        if predicate(self.suspects()):
            return self.suspects()
        queue = self.watch()
        try:
            async with asyncio.timeout(timeout):
                while True:
                    suspects = await queue.get()
                    if predicate(suspects):
                        return suspects
        finally:
            self._watchers.remove(queue)

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        await self.transport.start()
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"detector-{self.process_id}"
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for task in list(self._send_tasks):
            task.cancel()
        await self.transport.close()

    # -- drive loops --------------------------------------------------------------
    async def _run(self) -> None:
        if self._query_mode:
            await self._run_query()
        else:
            await self._run_timed()

    async def _run_query(self) -> None:
        """Task T1's loop: quorum is an awaited *event*, never a timeout."""
        peers = self._peers
        while True:
            before = self.detector.suspects()
            self._quorum_event.clear()
            broadcast = self.detector.start_round()
            await self.transport.broadcast(peers, broadcast.message)
            await self._await_quorum(peers, broadcast.message)
            if self.pacing.grace > 0:
                await asyncio.sleep(self.pacing.grace)
            outcome = self.detector.finish_round()
            self.rounds_completed += 1
            self._after_round(outcome)
            self._notify_if_changed(before)
            if self.pacing.idle > 0:
                await asyncio.sleep(self.pacing.idle)

    async def _await_quorum(self, peers, query) -> None:
        """Block until ``n - f`` responses are in.

        Without ``pacing.retry`` this is a pure event wait — the time-free
        wait of line 7.  With it, the pending query is periodically
        re-broadcast (lossy-channel liveness; no suspicion results from the
        timer).
        """
        while not self.detector.quorum_reached():
            if self.pacing.retry is None:
                await self._quorum_event.wait()
                return
            try:
                async with asyncio.timeout(self.pacing.retry):
                    await self._quorum_event.wait()
                    return
            except TimeoutError:
                if not self.detector.quorum_reached():
                    self.retries_sent += 1
                    await self.transport.broadcast(peers, query)

    def _after_round(self, outcome: QueryRoundOutcome) -> None:
        """Extension point for subclasses (e.g. leader election)."""
        if self._elector is not None:
            self._elector.observe_round(outcome)

    async def _run_timed(self) -> None:
        """Drive a unified/timed core: honour ``next_wakeup`` deadlines.

        The timers here belong to the *core's own algorithm* (heartbeat
        emission, timeout expiry, query-round pacing when a query core is
        wrapped in the unified facade) — the service adds none of its own.
        Messages are handled synchronously by ``_on_message``; it pokes
        ``_wake`` so the loop re-reads the (possibly moved) next deadline.
        """
        loop = asyncio.get_running_loop()
        before = self.detector.suspects()
        self._execute(self.detector.start(loop.time()))
        self._notify_if_changed(before)
        while True:
            deadline = self.detector.next_wakeup()
            if deadline is None:
                await self._wake.wait()
                self._wake.clear()
                continue
            delay = deadline - loop.time()
            if delay > 0:
                try:
                    async with asyncio.timeout(delay):
                        await self._wake.wait()
                    self._wake.clear()
                    continue  # a message moved the deadlines; recompute
                except TimeoutError:
                    pass
            before = self.detector.suspects()
            self._execute(self.detector.on_wakeup(loop.time()))
            self._notify_if_changed(before)

    # -- message handling -------------------------------------------------------
    def _on_message(self, src: ProcessId, message: object) -> None:
        if not self._query_mode:
            now = asyncio.get_running_loop().time()
            before = self.detector.suspects()
            self._execute(self.detector.on_message(now, src, message))
            self._notify_if_changed(before)
            self._wake.set()
            return
        if isinstance(message, Query):
            # Queries run the batched T2 merge and may change the suspect
            # set; responses never do (QueryDetectorCore contract), so the
            # watcher notification check runs for queries only.
            before = self.detector.suspects()
            effect = self.detector.on_query(message)
            if effect is not None:
                self._send_soon(effect.destination, effect.message)
            self._notify_if_changed(before)
        elif isinstance(message, Response):
            self.detector.on_response(message)
            if self.detector.quorum_reached():
                self._quorum_event.set()

    def _execute(self, effects) -> None:
        """Put core effects on the wire (fire-and-forget send tasks)."""
        if effects is None:
            return
        if not isinstance(effects, list):
            effects = [effects]
        for effect in effects:
            if isinstance(effect, Broadcast):
                self._broadcast_soon(effect.message)
            elif isinstance(effect, SendTo):
                self._send_soon(effect.destination, effect.message)
            else:
                raise ConfigurationError(f"unknown effect {effect!r}")

    def _broadcast_soon(self, message: object) -> None:
        task = asyncio.get_running_loop().create_task(
            self.transport.broadcast(self._peers, message)
        )
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def _send_soon(self, dst: ProcessId, message: object) -> None:
        task = asyncio.get_running_loop().create_task(self.transport.send(dst, message))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def _notify_if_changed(self, before: frozenset[ProcessId]) -> None:
        after = self.detector.suspects()
        if after == before:
            return
        for queue in self._watchers:
            queue.put_nowait(after)
