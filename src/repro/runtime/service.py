"""The detector as an asyncio service.

``DetectorService`` owns a :class:`~repro.core.protocol.TimeFreeDetector`
and a :class:`~repro.runtime.transport.Transport` and runs task T1's loop
as an asyncio task.  **No step of failure detection awaits a timeout**: the
loop awaits the response quorum *event*, then (optionally) sleeps a pacing
grace to harvest extra responses — pacing affects traffic and false-positive
pressure, never correctness.

The suspect list is exposed synchronously (``suspects()``), as a change
stream (``watch()``), and as awaitable predicates
(``wait_until_suspected``), which is the shape applications like the
consensus example consume.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..core.messages import Query, Response
from ..core.protocol import DetectorConfig, QueryRoundOutcome, TimeFreeDetector
from ..errors import ConfigurationError
from ..ids import ProcessId
from .transport import Transport

__all__ = ["ServicePacing", "DetectorService"]


@dataclass(frozen=True)
class ServicePacing:
    """Real-time pacing of query rounds (mirrors the simulator's pacing).

    ``retry`` — optional lossy-channel extension (see
    :class:`repro.sim.node.QueryPacing`): rebroadcast the pending query if
    the quorum is still outstanding after this many seconds.  Useful over
    UDP; it re-transmits only and never raises a suspicion, so detection
    stays time-free.
    """

    grace: float = 0.05
    idle: float = 0.0
    retry: float | None = None

    def __post_init__(self) -> None:
        if self.grace < 0 or self.idle < 0:
            raise ConfigurationError(f"pacing delays must be >= 0: {self}")
        if self.retry is not None and self.retry <= 0:
            raise ConfigurationError(f"retry must be > 0 when set: {self}")


class DetectorService:
    """Runs the time-free failure detector over a transport."""

    def __init__(
        self,
        config: DetectorConfig,
        transport: Transport,
        *,
        pacing: ServicePacing = ServicePacing(),
    ) -> None:
        if transport.process_id != config.process_id:
            raise ConfigurationError(
                f"transport identity {transport.process_id!r} does not match "
                f"detector identity {config.process_id!r}"
            )
        self.config = config
        self.detector = TimeFreeDetector(config)
        self.transport = transport
        self.pacing = pacing
        self._quorum_event = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._watchers: list[asyncio.Queue] = []
        self._send_tasks: set[asyncio.Task] = set()
        self.rounds_completed = 0
        self.retries_sent = 0
        transport.set_handler(self._on_message)

    # -- observation ---------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self.config.process_id

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def suspects(self) -> frozenset[ProcessId]:
        return self.detector.suspects()

    def watch(self) -> asyncio.Queue:
        """A queue receiving every subsequent suspect-set change."""
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.append(queue)
        return queue

    async def wait_until_suspected(
        self, target: ProcessId, *, timeout: float | None = None
    ) -> frozenset[ProcessId]:
        """Block until ``target`` appears in the suspect list."""
        return await self.wait_for(lambda suspects: target in suspects, timeout=timeout)

    async def wait_until_cleared(
        self, target: ProcessId, *, timeout: float | None = None
    ) -> frozenset[ProcessId]:
        """Block until ``target`` is no longer suspected."""
        return await self.wait_for(lambda suspects: target not in suspects, timeout=timeout)

    async def wait_for(self, predicate, *, timeout: float | None = None):
        """Block until ``predicate(suspects)`` holds; returns the suspect set."""
        if predicate(self.suspects()):
            return self.suspects()
        queue = self.watch()
        try:
            async with asyncio.timeout(timeout):
                while True:
                    suspects = await queue.get()
                    if predicate(suspects):
                        return suspects
        finally:
            self._watchers.remove(queue)

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        await self.transport.start()
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"detector-{self.process_id}"
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for task in list(self._send_tasks):
            task.cancel()
        await self.transport.close()

    # -- the T1 loop --------------------------------------------------------------
    async def _run(self) -> None:
        peers = sorted(self.config.membership - {self.process_id}, key=repr)
        while True:
            before = self.detector.suspects()
            self._quorum_event.clear()
            broadcast = self.detector.start_round()
            await self.transport.broadcast(peers, broadcast.message)
            await self._await_quorum(peers, broadcast.message)
            if self.pacing.grace > 0:
                await asyncio.sleep(self.pacing.grace)
            outcome = self.detector.finish_round()
            self.rounds_completed += 1
            self._after_round(outcome)
            self._notify_if_changed(before)
            if self.pacing.idle > 0:
                await asyncio.sleep(self.pacing.idle)

    async def _await_quorum(self, peers, query) -> None:
        """Block until ``n - f`` responses are in.

        Without ``pacing.retry`` this is a pure event wait — the time-free
        wait of line 7.  With it, the pending query is periodically
        re-broadcast (lossy-channel liveness; no suspicion results from the
        timer).
        """
        while not self.detector.quorum_reached():
            if self.pacing.retry is None:
                await self._quorum_event.wait()
                return
            try:
                async with asyncio.timeout(self.pacing.retry):
                    await self._quorum_event.wait()
                    return
            except TimeoutError:
                if not self.detector.quorum_reached():
                    self.retries_sent += 1
                    await self.transport.broadcast(peers, query)

    def _after_round(self, outcome: QueryRoundOutcome) -> None:
        """Extension point for subclasses (e.g. leader election)."""

    # -- message handling -------------------------------------------------------
    def _on_message(self, src: ProcessId, message: object) -> None:
        before = self.detector.suspects()
        if isinstance(message, Query):
            effect = self.detector.on_query(message)
            if effect is not None:
                self._send_soon(effect.destination, effect.message)
        elif isinstance(message, Response):
            self.detector.on_response(message)
            if self.detector.quorum_reached():
                self._quorum_event.set()
        self._notify_if_changed(before)

    def _send_soon(self, dst: ProcessId, message: object) -> None:
        task = asyncio.get_running_loop().create_task(self.transport.send(dst, message))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def _notify_if_changed(self, before: frozenset[ProcessId]) -> None:
        after = self.detector.suspects()
        if after == before:
            return
        for queue in self._watchers:
            queue.put_nowait(after)
