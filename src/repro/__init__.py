"""repro — a time-free (asynchronous) implementation of failure detectors.

Reproduction of **"Asynchronous Implementation of Failure Detectors"**
(DSN 2003): unreliable failure detectors of class ◇S built from a
query-response message pattern instead of timeouts, for asynchronous
crash-prone message-passing systems.  See DESIGN.md for the paper-identity
note and the full system inventory.

Quick tour
----------

Run the detector as a real asyncio service::

    from repro import LocalCluster

    cluster = LocalCluster(n=5, f=2)
    await cluster.start()
    cluster.crash(3)
    await cluster.until_all_suspect(3)

Reproduce an experiment on the deterministic simulator::

    from repro.experiments import t1_detection_vs_n

    print(t1_detection_vs_n.run())

Packages
--------

==================  =====================================================
``repro.core``      the paper's algorithm (sans-I/O), FD classes, Omega
``repro.detectors`` pluggable detector registry + unified core facade
``repro.partial``   unknown membership / partial connectivity / mobility
``repro.sim``       deterministic discrete-event simulation substrate
``repro.runtime``   asyncio runtime (in-memory and UDP transports)
``repro.baselines`` heartbeat, gossip and phi-accrual comparators
``repro.consensus`` Chandra-Toueg ◇S consensus on top of any detector
``repro.metrics``   failure-detector QoS from run traces
``repro.experiments`` every table/figure, regenerable from code
==================  =====================================================

Deploy any registered family — say phi-accrual — the same way::

    cluster = LocalCluster(n=5, f=2, detector="phi",
                           detector_params={"period": 0.05, "threshold": 4.0})
"""

from .core import (
    DetectorConfig,
    FailureDetector,
    FDClass,
    Query,
    QueryRoundOutcome,
    Response,
    TimeFreeDetector,
)
from .errors import ReproError
from .ids import ProcessId, make_membership
from .runtime import DetectorService, LocalCluster, ServicePacing

__version__ = "1.1.0"

__all__ = [
    "DetectorConfig",
    "DetectorService",
    "FDClass",
    "FailureDetector",
    "LocalCluster",
    "ProcessId",
    "Query",
    "QueryRoundOutcome",
    "ReproError",
    "Response",
    "ServicePacing",
    "TimeFreeDetector",
    "__version__",
    "make_membership",
]
