"""Declarative consensus-protocol specifications for the plugin registry.

Mirrors :mod:`repro.detectors.spec`: a :class:`ConsensusSpec` is the single
declarative object the rest of the system consumes for one consensus
protocol — a stable key, a frozen dataclass of typed knobs, and a factory
that builds a sans-I/O participant state machine for one process.

The factory signature is ``factory(context, params, oracle) ->
participant``.  :class:`ConsensusContext` carries the deployment facts
(identity, membership, crash bound) — the same three the detector registry
uses — and :class:`ConsensusOracle` carries the failure-detector coupling:
two zero-argument callbacks, ``suspects()`` and ``leader()``, pulled by the
participant on every wait evaluation.  This is Lynch & Sastry's
FD-as-oracle framing made concrete: a protocol declares which oracle view
it consults (:attr:`ConsensusSpec.oracle`) and the harness wires that view
from *any* registered detector — ``leader()`` falls back to the standard
Ω-from-◇S emulation (smallest unsuspected member) when the deployed
detector has no native elector.

Participants returned by factories satisfy the informal protocol of
:class:`~repro.consensus.protocol.ChandraTouegConsensus`: ``propose`` /
``on_message`` / ``poke`` entry points returning effect lists, plus the
``proposed`` / ``decided`` / ``decision`` / ``round`` / ``rounds_executed``
/ ``nacks_sent`` / ``decision_round`` introspection surface the harness and
the conformance suite rely on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = [
    "ConsensusContext",
    "ConsensusOracle",
    "ConsensusSpec",
    "SuspectsSource",
    "oracle_from_suspects",
]

SuspectsSource = Callable[[], frozenset]

#: the two oracle views a protocol may declare it consults
ORACLE_VIEWS = ("suspects", "leader")


@dataclass(frozen=True)
class ConsensusContext:
    """Deployment context every consensus factory receives."""

    process_id: ProcessId
    membership: frozenset[ProcessId]
    f: int

    @property
    def n(self) -> int:
        return len(self.membership)


@dataclass(frozen=True)
class ConsensusOracle:
    """The failure-detector coupling, as two pull callbacks.

    ``suspects()`` is the raw ◇S-style suspect list of the co-hosted
    detector; ``leader()`` is an Ω-style single trusted process.  Both are
    evaluated lazily on every phase-3 wait, never cached by the protocol —
    the formal oracle-query model.
    """

    suspects: SuspectsSource
    leader: Callable[[], ProcessId]


def oracle_from_suspects(
    membership: frozenset[ProcessId],
    suspects_source: SuspectsSource,
    *,
    leader_source: Callable[[], ProcessId] | None = None,
) -> ConsensusOracle:
    """Build the full oracle view from a suspect-list callback.

    When ``leader_source`` is ``None`` the leader is *derived* from the
    suspect list — the textbook Ω-from-◇S emulation: the smallest member
    not currently suspected (falling back to the smallest member outright
    if everyone is).  Under eventual strong accuracy all correct processes
    converge on the same unsuspected survivor, which is exactly Ω's
    contract.
    """
    ordered = sorted(membership, key=repr)

    def derived_leader() -> ProcessId:
        suspects = suspects_source()
        for pid in ordered:
            if pid not in suspects:
                return pid
        return ordered[0]

    return ConsensusOracle(
        suspects=suspects_source,
        leader=leader_source if leader_source is not None else derived_leader,
    )


@dataclass(frozen=True)
class ConsensusSpec:
    """One pluggable consensus protocol.

    ``key``
        Stable lower-case registry key (``"ct"``, ``"omega"`` ...): what
        experiment params and ``repro protocols`` name.
    ``title``
        Human-readable protocol name for tables and the CLI listing.
    ``params_cls``
        Frozen dataclass of the protocol's typed knobs, all defaulted.
    ``factory``
        ``factory(context, params, oracle) -> participant`` building the
        sans-I/O state machine for one process.
    ``oracle``
        Which oracle view the protocol consults — ``"suspects"`` (◇S
        style) or ``"leader"`` (Ω style).  Informational for tables, and
        the harness's cue to wire extra leader-change pokes when the
        detector carries a native elector.
    ``summary``
        One-line description (mechanism + liveness assumption) for
        docs/CLI tables.
    """

    key: str
    title: str
    params_cls: type
    factory: Callable[[ConsensusContext, Any, ConsensusOracle], Any]
    oracle: str = "suspects"
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.key or self.key != self.key.lower():
            raise ConfigurationError(
                f"consensus protocol key must be non-empty lower-case: {self.key!r}"
            )
        if not dataclasses.is_dataclass(self.params_cls):
            raise ConfigurationError(
                f"{self.key!r}: params_cls must be a dataclass, got {self.params_cls!r}"
            )
        if self.oracle not in ORACLE_VIEWS:
            raise ConfigurationError(
                f"{self.key!r}: oracle must be one of {ORACLE_VIEWS}, got {self.oracle!r}"
            )

    # ------------------------------------------------------------------
    def param_names(self) -> frozenset[str]:
        """The protocol's parameter field names."""
        return frozenset(f.name for f in dataclasses.fields(self.params_cls))

    def make_params(self, params: Any | None = None, /, **overrides: Any) -> Any:
        """Typed params from defaults (or ``params``) plus ``overrides``."""
        if params is not None and overrides:
            raise ConfigurationError("pass either a params instance or keyword overrides")
        if params is not None:
            if not isinstance(params, self.params_cls):
                raise ConfigurationError(
                    f"{self.key!r} expects {self.params_cls.__name__} params, "
                    f"got {type(params).__name__}"
                )
            return params
        unknown = sorted(set(overrides) - self.param_names())
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {unknown} for consensus protocol {self.key!r}; "
                f"valid: {sorted(self.param_names())}"
            )
        return self.params_cls(**overrides)

    def build(
        self,
        context: ConsensusContext,
        oracle: ConsensusOracle,
        params: Any | None = None,
        /,
        **overrides: Any,
    ) -> Any:
        """Construct one process's participant state machine."""
        return self.factory(context, self.make_params(params, **overrides), oracle)
