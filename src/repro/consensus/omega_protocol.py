"""Ω-based early-deciding rotating-coordinator consensus.

The second registered consensus protocol — the one that proves the
:class:`~repro.consensus.spec.ConsensusSpec` abstraction is real.  It keeps
the Chandra-Toueg locking machinery (majority estimates with maximal ``ts``
in rounds > 1, ack/nack resolution, reliable ``DECIDE`` broadcast) but
consults a **leader oracle** instead of a suspect list:

* Phase 3 nacks when ``leader() != coordinator`` — the classic Ω trust
  condition (Chandra-Hadzilacos-Toueg showed Ω is the weakest detector for
  consensus), instead of ◇S's ``coordinator in suspects()``.
* **Early decision**: round 1 skips phase 1 entirely.  Nothing can be
  locked before the first round, so the round-1 coordinator may propose its
  *own* initial value without collecting a majority of estimates — one
  message delay less on the fault-free fast path.  Rounds > 1 collect
  estimates exactly like CT, which is what preserves agreement across
  coordinator changes.

The leader oracle is supplied as a callback.  Over a ◇S-style detector the
harness derives it by the standard Ω-from-◇S emulation (smallest
unsuspected member); when the deployed detector carries a real
:class:`~repro.core.omega.OmegaElector` (time-free with ``with_omega``),
its accusation-ranked ``leader()`` is used directly.

Safety holds for **any** leader oracle output (even one that disagrees at
every process); liveness needs the oracle to eventually stabilise on one
correct process, i.e. Ω.
"""

from __future__ import annotations

from typing import Any, Callable

from ..ids import ProcessId
from .protocol import ChandraTouegConsensus, ConsensusConfig

__all__ = ["OmegaConsensus", "LeaderSource"]

LeaderSource = Callable[[], ProcessId]

_NO_SUSPECTS: frozenset = frozenset()


class OmegaConsensus(ChandraTouegConsensus):
    """One process's participant state machine, leader-oracle flavoured."""

    def __init__(
        self,
        config: ConsensusConfig,
        leader_source: LeaderSource,
        *,
        fast_round: bool = True,
    ) -> None:
        # The ◇S callback is never consulted: _wants_nack is overridden.
        super().__init__(config, lambda: _NO_SUSPECTS)
        self._leader = leader_source
        self._fast_round = fast_round

    @property
    def leader(self) -> ProcessId:
        """The oracle's current pick (introspection for tests/tables)."""
        return self._leader()

    # -- oracle hooks --------------------------------------------------------
    def _wants_nack(self, coordinator: ProcessId) -> bool:
        return self._leader() != coordinator

    def _collects_estimates(self, round_number: int) -> bool:
        return round_number > 1 or not self._fast_round

    # intentionally no other overrides: estimates/acks/locking are CT's
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state: Any = "decided" if self.decided else f"round {self.round}"
        return f"OmegaConsensus(pid={self.process_id!r}, {state})"
