"""Wire messages of the Chandra-Toueg rotating-coordinator protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.messages import register_message
from ..ids import ProcessId

__all__ = ["Estimate", "Proposal", "Ack", "Nack", "Decide"]


@register_message("ct.estimate")
@dataclass(frozen=True, slots=True)
class Estimate:
    """Phase 1: a participant's current estimate, sent to the coordinator.

    ``ts`` is the round in which the estimate was last adopted from a
    coordinator (0 for the initial value); the coordinator picks an
    estimate with maximal ``ts`` — the locking rule behind agreement.
    """

    sender: ProcessId
    round: int
    value: Any
    ts: int


@register_message("ct.proposal")
@dataclass(frozen=True, slots=True)
class Proposal:
    """Phase 2: the coordinator's proposal for its round."""

    sender: ProcessId
    round: int
    value: Any


@register_message("ct.ack")
@dataclass(frozen=True, slots=True)
class Ack:
    """Phase 3: the participant adopted the round's proposal."""

    sender: ProcessId
    round: int


@register_message("ct.nack")
@dataclass(frozen=True, slots=True)
class Nack:
    """Phase 3: the participant suspected the coordinator and moved on."""

    sender: ProcessId
    round: int


@register_message("ct.decide")
@dataclass(frozen=True, slots=True)
class Decide:
    """Reliable broadcast of the decision (relayed once by every receiver)."""

    sender: ProcessId
    value: Any
