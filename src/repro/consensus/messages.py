"""Wire messages of the rotating-coordinator consensus protocols.

The five ballot kinds (``ct.*``) are shared by every registered protocol —
they carry round-scoped payloads, not protocol identity.  Multi-instance
runs wrap the ballots of instances ≥ 2 in an :class:`InstanceEnvelope`
(kind ``consensus.instance``) so one pair of co-hosted stacks can run a
whole sequence of consensus instances over the same transport; instance 1
stays bare on the wire, keeping single-instance traces (and the t4 golden)
byte-identical to the pre-envelope format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.messages import register_message
from ..ids import ProcessId

__all__ = ["Estimate", "Proposal", "Ack", "Nack", "Decide", "InstanceEnvelope"]


@register_message("ct.estimate")
@dataclass(frozen=True, slots=True)
class Estimate:
    """Phase 1: a participant's current estimate, sent to the coordinator.

    ``ts`` is the round in which the estimate was last adopted from a
    coordinator (0 for the initial value); the coordinator picks an
    estimate with maximal ``ts`` — the locking rule behind agreement.
    """

    sender: ProcessId
    round: int
    value: Any
    ts: int


@register_message("ct.proposal")
@dataclass(frozen=True, slots=True)
class Proposal:
    """Phase 2: the coordinator's proposal for its round."""

    sender: ProcessId
    round: int
    value: Any


@register_message("ct.ack")
@dataclass(frozen=True, slots=True)
class Ack:
    """Phase 3: the participant adopted the round's proposal."""

    sender: ProcessId
    round: int


@register_message("ct.nack")
@dataclass(frozen=True, slots=True)
class Nack:
    """Phase 3: the participant suspected the coordinator and moved on."""

    sender: ProcessId
    round: int


@register_message("ct.decide")
@dataclass(frozen=True, slots=True)
class Decide:
    """Reliable broadcast of the decision (relayed once by every receiver)."""

    sender: ProcessId
    value: Any


@register_message("consensus.instance")
@dataclass(frozen=True, slots=True)
class InstanceEnvelope:
    """A ballot of consensus instance ``instance`` (≥ 2), enveloped.

    The payload is one of the five ballot kinds above; the composite node
    driver routes it to the matching participant, buffering ballots that
    arrive before the local participant has proposed (CT drops pre-propose
    ballots, which would strand early deciders' next-instance traffic).
    """

    instance: int
    payload: Any
