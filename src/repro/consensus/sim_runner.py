"""Run consensus over any registered failure detector on the simulator.

Each simulated node co-hosts two protocol stacks: the failure detector
(driven by its usual driver, built from the :mod:`repro.detectors` registry
or any custom driver factory) and a *sequence* of consensus participants —
one per instance of a repeated multi-instance run.  The composite driver
dispatches incoming messages by type, executes consensus effects, and
*pokes* the consensus state machines whenever the local detector's suspect
list changes — that is the oracle coupling, and it matches the formal model
(consensus queries the detector, the detector never pushes state).

Multi-instance semantics (the "heavy traffic" shape):

* Instance 1's participant exists from node construction and proposes at
  ``propose_at`` — exactly the legacy single-instance behaviour.
* A node proposes instance ``k + 1`` when its instance ``k`` decides
  locally (after an optional ``instance_gap`` think time), so the sequence
  is self-clocking: fast detectors chain instances quickly, stalled
  instances hold the sequence back.
* Ballots of instances ≥ 2 travel in an
  :class:`~repro.consensus.messages.InstanceEnvelope`; the driver buffers
  envelopes that arrive before the local participant proposed and replays
  them at propose time (the CT state machine drops pre-propose ballots,
  which would strand traffic from early deciders).
* Every decision is recorded into a per-instance
  :class:`InstanceOutcome` ledger — proposals, decision values/times,
  rounds, nacks — which :func:`repro.metrics.consensus_stats` summarises.
* Decisions are **anti-entropied on the oracle's word**: when the local
  detector withdraws a suspicion (the peer recovered, joined late, or the
  partition healed), the driver re-sends every locally decided instance's
  ``DECIDE`` to the returning process.  The sans-I/O state machines stay
  pure crash-stop CT; retransmission is an I/O-layer concern, and keying
  it to suspicion retraction needs no timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.effects import Broadcast, Effect, SendTo
from ..errors import ConfigurationError
from ..ids import ProcessId
from ..sim.cluster import DriverFactory, SimCluster, time_free_driver_factory
from ..sim.faults import FaultPlan
from ..sim.latency import LatencyModel
from ..sim.node import SimProcess
from .messages import Ack, Decide, Estimate, InstanceEnvelope, Nack, Proposal
from .registry import get_protocol
from .spec import ConsensusContext, ConsensusSpec, oracle_from_suspects

__all__ = [
    "ConsensusNodeDriver",
    "ConsensusHarness",
    "ConsensusRunResult",
    "InstanceOutcome",
]

_CONSENSUS_KINDS = (Estimate, Proposal, Ack, Nack, Decide)

#: callbacks: (pid, instance, value, time)
InstanceEvent = Callable[[ProcessId, int, Any, float], None]


class ConsensusNodeDriver:
    """Co-hosts a detector driver and a sequence of consensus participants."""

    def __init__(
        self,
        process: SimProcess,
        fd_driver,
        participant_factory: Callable[[int], Any],
        proposal_for: Callable[[int], Any],
        *,
        instances: int = 1,
        propose_at: float = 0.0,
        instance_gap: float = 0.0,
        on_propose: InstanceEvent | None = None,
        on_decide: InstanceEvent | None = None,
    ) -> None:
        self.process = process
        self.fd_driver = fd_driver
        self.instances = instances
        self.propose_at = propose_at
        self.instance_gap = instance_gap
        self._participant_factory = participant_factory
        self._proposal_for = proposal_for
        self._on_propose = on_propose
        self._on_decide = on_decide
        # Instance 1 exists from construction (legacy single-instance shape);
        # later instances are created lazily at their propose time.
        self.participants: dict[int, Any] = {1: participant_factory(1)}
        self._pending: dict[int, list[tuple[ProcessId, Any]]] = {}
        self._reported: set[int] = set()
        self._last_suspects: frozenset = frozenset(fd_driver.suspects())
        # Suspicion changes unblock phase-3 waits on a crashed coordinator.
        fd_driver.suspicion_listeners.append(self._on_suspicion_change)

    # -- driver surface ----------------------------------------------------
    def on_start(self) -> None:
        self.fd_driver.on_start()
        self.process.scheduler.schedule_at(
            max(self.propose_at, self.process.scheduler.now),
            lambda: self._propose(1),
        )

    def on_message(self, src: ProcessId, message: object) -> None:
        if isinstance(message, _CONSENSUS_KINDS):
            self._deliver(1, src, message)
        elif isinstance(message, InstanceEnvelope):
            self._deliver(message.instance, src, message.payload)
        else:
            self.fd_driver.on_message(src, message)

    def on_crash(self) -> None:
        self.fd_driver.on_crash()

    def on_detach(self) -> None:
        self.fd_driver.on_detach()

    def on_attach(self) -> None:
        self.fd_driver.on_attach()

    def on_recover(self) -> None:
        # Persistent-state restart: participants survived with the driver.
        self.fd_driver.on_recover()

    def on_leave(self) -> None:
        self.fd_driver.on_leave()

    def suspects(self) -> frozenset:
        return self.fd_driver.suspects()

    # -- consensus plumbing ---------------------------------------------------
    def _deliver(self, instance: int, src: ProcessId, payload: Any) -> None:
        participant = self.participants.get(instance)
        if instance != 1 and (participant is None or not participant.proposed):
            # The state machine drops pre-propose ballots; buffer and replay
            # at propose time so early deciders' traffic is not lost.
            # Instance 1 keeps the legacy direct-delivery semantics.
            self._pending.setdefault(instance, []).append((src, payload))
            return
        self._run(instance, lambda: participant.on_message(src, payload))

    def _propose(self, instance: int) -> None:
        if not self.process.alive or instance > self.instances:
            return
        participant = self.participants.get(instance)
        if participant is None:
            participant = self._participant_factory(instance)
            self.participants[instance] = participant
        if participant.proposed:
            return  # a join/restart re-ran on_start; the sequence is live
        value = self._proposal_for(instance)
        if self._on_propose is not None:
            self._on_propose(
                self.process.pid, instance, value, self.process.scheduler.now
            )
        self._run(instance, lambda: participant.propose(value))
        for src, payload in self._pending.pop(instance, ()):
            self._run(instance, lambda s=src, p=payload: participant.on_message(s, p))

    def _on_suspicion_change(self, pid: ProcessId, suspects: frozenset) -> None:
        # Read the driver directly: elector round listeners reuse this hook
        # with a placeholder suspect set.
        current = frozenset(self.fd_driver.suspects())
        returned = self._last_suspects - current
        self._last_suspects = current
        if returned:
            self._push_decisions(returned)
        for instance in sorted(self.participants):
            self._run(instance, self.participants[instance].poke)

    def _push_decisions(self, returned: frozenset) -> None:
        """Oracle-driven anti-entropy: re-send decisions to returning peers.

        A suspicion retraction means a process that was unreachable
        (crashed-and-recovered, late joiner, the far side of a healed
        partition) is back; the CT state machines halt after deciding and
        never retransmit, so the driver re-sends every locally decided
        instance's ``DECIDE`` to it.  Retransmission on the detector's
        word — no timers — and a no-op in runs where no suspicion is ever
        withdrawn (every legacy t4 scenario).
        """
        if not self.process.alive:
            return
        effects: list[Effect] = []
        for instance in sorted(self._reported):
            message = Decide(
                sender=self.process.pid, value=self.participants[instance].decision
            )
            for pid in sorted(returned, key=repr):
                effect: Effect = SendTo(pid, message)
                if instance != 1:
                    effect = self._enveloped(instance, effect)
                effects.append(effect)
        if effects:
            self.process.execute(effects)

    def _run(self, instance: int, step: Callable[[], list[Effect]]) -> None:
        if not self.process.alive:
            return
        participant = self.participants[instance]
        effects = step()
        if instance == 1:
            self.process.execute(effects)
        else:
            self.process.execute([self._enveloped(instance, e) for e in effects])
        if participant.decided and instance not in self._reported:
            self._reported.add(instance)
            now = self.process.scheduler.now
            if self._on_decide is not None:
                self._on_decide(self.process.pid, instance, participant.decision, now)
            if instance < self.instances:
                if self.instance_gap > 0.0:
                    self.process.scheduler.schedule_at(
                        now + self.instance_gap,
                        lambda k=instance + 1: self._propose(k),
                    )
                else:
                    self._propose(instance + 1)

    @staticmethod
    def _enveloped(instance: int, effect: Effect) -> Effect:
        if isinstance(effect, SendTo):
            return SendTo(
                effect.destination,
                InstanceEnvelope(instance=instance, payload=effect.message),
            )
        if isinstance(effect, Broadcast):
            return Broadcast(InstanceEnvelope(instance=instance, payload=effect.message))
        raise ConfigurationError(f"unknown consensus effect {effect!r}")


@dataclass
class InstanceOutcome:
    """The decision ledger of one consensus instance across the cluster."""

    instance: int
    proposals: dict[ProcessId, Any] = field(default_factory=dict)
    propose_times: dict[ProcessId, float] = field(default_factory=dict)
    decisions: dict[ProcessId, Any] = field(default_factory=dict)
    decision_times: dict[ProcessId, float] = field(default_factory=dict)
    decision_rounds: dict[ProcessId, int] = field(default_factory=dict)
    rounds_executed: dict[ProcessId, int] = field(default_factory=dict)
    nacks_sent: dict[ProcessId, int] = field(default_factory=dict)
    correct: frozenset = frozenset()

    @property
    def agreement_holds(self) -> bool:
        """No two processes decided different values in this instance."""
        return len(set(self.decisions.values())) <= 1

    @property
    def validity_holds(self) -> bool:
        """Every decided value was actually proposed by somebody."""
        proposed = set(self.proposals.values())
        return all(value in proposed for value in self.decisions.values())

    @property
    def all_correct_decided(self) -> bool:
        return all(pid in self.decisions for pid in self.correct)

    @property
    def first_propose_time(self) -> float | None:
        times = [t for pid, t in self.propose_times.items() if pid in self.correct]
        return min(times, default=None)

    @property
    def last_decision_time(self) -> float | None:
        times = [t for pid, t in self.decision_times.items() if pid in self.correct]
        return max(times, default=None)

    @property
    def decision_latency(self) -> float | None:
        """First correct propose to last correct decision (``None`` if open)."""
        if not self.all_correct_decided or not self.correct:
            return None
        start, end = self.first_propose_time, self.last_decision_time
        if start is None or end is None:
            return None
        return end - start

    @property
    def rounds_to_decide(self) -> int | None:
        """The round in which the value was first decided (1 = fast path).

        The *first* correct decider's round — later deciders may have
        churned ahead while the reliable-broadcast relay was in flight,
        which is progress noise, not protocol cost.
        """
        rounds = [r for pid, r in self.decision_rounds.items() if pid in self.correct]
        return min(rounds, default=None)

    @property
    def aborted_rounds(self) -> int:
        """Rounds abandoned on the oracle's word (max per correct process).

        A phase-3 nack is exactly one aborted round: the participant gave
        up on the round's coordinator because its oracle denounced it.
        Waiting rounds that a ``DECIDE`` relay short-circuits are not
        counted — they cost latency, which :attr:`decision_latency` shows.
        """
        return max(
            (n for pid, n in self.nacks_sent.items() if pid in self.correct),
            default=0,
        )

    @property
    def nacks(self) -> int:
        """Total phase-3 nacks issued by correct processes."""
        return sum(n for pid, n in self.nacks_sent.items() if pid in self.correct)


@dataclass
class ConsensusRunResult:
    """Outcome of one simulated consensus run.

    The flat fields describe **instance 1** — the legacy single-instance
    surface every existing caller reads; ``instances`` is the full
    per-instance ledger of a multi-instance run (a one-element list for
    single-instance runs).
    """

    proposals: dict[ProcessId, Any]
    decisions: dict[ProcessId, Any] = field(default_factory=dict)
    decision_times: dict[ProcessId, float] = field(default_factory=dict)
    rounds_executed: dict[ProcessId, int] = field(default_factory=dict)
    correct: frozenset = frozenset()
    instances: list[InstanceOutcome] = field(default_factory=list)

    @property
    def agreement_holds(self) -> bool:
        """No two processes decided different values (any instance)."""
        first = len(set(self.decisions.values())) <= 1
        return first and all(out.agreement_holds for out in self.instances)

    @property
    def validity_holds(self) -> bool:
        """Every decided value was somebody's proposal (any instance)."""
        proposed = set(self.proposals.values())
        first = all(value in proposed for value in self.decisions.values())
        return first and all(out.validity_holds for out in self.instances[1:])

    @property
    def all_correct_decided(self) -> bool:
        """Termination of instance 1 for every correct participant."""
        return all(pid in self.decisions for pid in self.correct)

    @property
    def last_decision_time(self) -> float | None:
        correct_times = [t for pid, t in self.decision_times.items() if pid in self.correct]
        return max(correct_times, default=None)

    @property
    def decided_instances(self) -> int:
        """Instances every correct process decided."""
        return sum(1 for out in self.instances if out.all_correct_decided)


class ConsensusHarness:
    """Build-and-run helper for consensus workloads (t4/c1) and tests.

    The detector side accepts either a **registry key** (``detector=`` plus
    optional ``detector_params`` knob dict, resolved through
    :func:`repro.detectors.sim_driver_factory` — any registered family) or
    a raw ``fd_driver_factory`` for custom drivers; the consensus side is a
    **protocol registry key** (``protocol=``, default CT).  The two are
    joined by a :class:`~repro.consensus.spec.ConsensusOracle` built from
    the per-node driver: ``suspects()`` is pulled straight from the
    detector, ``leader()`` uses the native Omega elector when the driver
    carries one and the Ω-from-◇S emulation otherwise.
    """

    def __init__(
        self,
        *,
        n: int,
        f: int,
        protocol: str = "ct",
        protocol_params: Any | None = None,
        detector: str | None = None,
        detector_params: dict | None = None,
        fd_driver_factory: DriverFactory | None = None,
        latency: LatencyModel | None = None,
        seed: int = 1,
        fault_plan: FaultPlan | None = None,
        proposals: dict[ProcessId, Any] | None = None,
        proposal_for: Callable[[ProcessId, int], Any] | None = None,
        instances: int = 1,
        propose_at: float = 0.0,
        instance_gap: float = 0.0,
        start_stagger: float = 0.0,
    ) -> None:
        if n < 2:
            raise ConfigurationError("consensus needs at least 2 processes")
        if instances < 1:
            raise ConfigurationError("a consensus run needs at least 1 instance")
        if detector is not None and fd_driver_factory is not None:
            raise ConfigurationError(
                "pass either a registry detector key or a raw fd_driver_factory"
            )
        if detector is not None:
            from ..detectors import sim_driver_factory

            fd_factory = sim_driver_factory(detector, f, **(detector_params or {}))
        elif fd_driver_factory is not None:
            fd_factory = fd_driver_factory
        else:
            fd_factory = time_free_driver_factory(f)
        spec: ConsensusSpec = get_protocol(protocol)
        if protocol_params is None:
            resolved_protocol_params = spec.make_params()
        elif isinstance(protocol_params, dict):
            resolved_protocol_params = spec.make_params(**protocol_params)
        else:
            resolved_protocol_params = spec.make_params(protocol_params)
        membership = frozenset(range(1, n + 1))
        self.protocol = spec
        self.proposals: dict[ProcessId, Any] = (
            dict(proposals)
            if proposals is not None
            else {pid: f"value-{pid}" for pid in sorted(membership)}
        )
        missing = membership - set(self.proposals)
        if missing:
            raise ConfigurationError(f"missing proposals for {sorted(missing, key=repr)}")
        self._proposal_for = proposal_for
        self._outcomes = {
            k: InstanceOutcome(instance=k) for k in range(1, instances + 1)
        }
        self.result = ConsensusRunResult(
            proposals=dict(self.proposals),
            instances=[self._outcomes[k] for k in sorted(self._outcomes)],
        )
        self._drivers: dict[ProcessId, ConsensusNodeDriver] = {}

        def composite_factory(process: SimProcess, cluster: SimCluster):
            fd_driver = fd_factory(process, cluster)
            context = ConsensusContext(
                process_id=process.pid, membership=membership, f=f
            )
            elector = getattr(fd_driver, "elector", None)
            oracle = oracle_from_suspects(
                membership,
                fd_driver.suspects,
                leader_source=elector.leader if elector is not None else None,
            )
            driver = ConsensusNodeDriver(
                process,
                fd_driver,
                lambda instance: spec.build(context, oracle, resolved_protocol_params),
                lambda instance: self._value_for(process.pid, instance),
                instances=instances,
                propose_at=propose_at,
                instance_gap=instance_gap,
                on_propose=self._record_propose,
                on_decide=self._record_decision,
            )
            if spec.oracle == "leader" and elector is not None:
                # A native elector can change leaders without a suspicion
                # change (accusation gossip); completed query rounds are its
                # clock, so poke the participants on each round outcome.
                round_listeners = getattr(fd_driver, "round_listeners", None)
                if round_listeners is not None:
                    round_listeners.append(
                        lambda *_args: driver._on_suspicion_change(
                            process.pid, frozenset()
                        )
                    )
            self._drivers[process.pid] = driver
            return driver

        self.cluster = SimCluster(
            n=n,
            driver_factory=composite_factory,
            latency=latency,
            seed=seed,
            fault_plan=fault_plan,
            start_stagger=start_stagger,
        )
        self.result.correct = self.cluster.correct_processes()
        for outcome in self.result.instances:
            outcome.correct = self.result.correct

    # ------------------------------------------------------------------
    def _value_for(self, pid: ProcessId, instance: int) -> Any:
        if self._proposal_for is not None:
            return self._proposal_for(pid, instance)
        if instance == 1:
            return self.proposals[pid]
        return f"value-{pid}.{instance}"

    def _record_propose(self, pid: ProcessId, instance: int, value: Any, time: float) -> None:
        outcome = self._outcomes[instance]
        # A volatile restart re-proposes; the ledger keeps the first attempt.
        outcome.proposals.setdefault(pid, value)
        outcome.propose_times.setdefault(pid, time)

    def _record_decision(self, pid: ProcessId, instance: int, value: Any, time: float) -> None:
        outcome = self._outcomes[instance]
        outcome.decisions.setdefault(pid, value)
        outcome.decision_times.setdefault(pid, time)
        if instance == 1:
            self.result.decisions.setdefault(pid, value)
            self.result.decision_times.setdefault(pid, time)

    def run(self, until: float) -> ConsensusRunResult:
        self.cluster.run(until=until)
        for pid, driver in self._drivers.items():
            for instance, participant in driver.participants.items():
                outcome = self._outcomes.get(instance)
                if outcome is None:
                    continue
                outcome.rounds_executed[pid] = participant.rounds_executed
                outcome.nacks_sent[pid] = participant.nacks_sent
                if participant.decision_round is not None:
                    outcome.decision_rounds[pid] = participant.decision_round
        self.result.rounds_executed = dict(self._outcomes[1].rounds_executed)
        return self.result
