"""Run consensus over any failure detector on the simulator.

Each simulated node co-hosts two protocol stacks: the failure detector
(driven by its usual driver) and a :class:`ChandraTouegConsensus`
participant.  The composite driver dispatches incoming messages by type,
executes consensus effects, and *pokes* the consensus state machine whenever
the local detector's suspect list changes — that is the only coupling, and
it matches the formal model (consensus queries the detector as an oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.effects import Effect
from ..errors import ConfigurationError
from ..ids import ProcessId
from ..sim.cluster import DriverFactory, SimCluster, time_free_driver_factory
from ..sim.faults import FaultPlan
from ..sim.latency import LatencyModel
from ..sim.node import SimProcess
from .messages import Ack, Decide, Estimate, Nack, Proposal
from .protocol import ChandraTouegConsensus, ConsensusConfig

__all__ = ["ConsensusNodeDriver", "ConsensusHarness", "ConsensusRunResult"]

_CONSENSUS_KINDS = (Estimate, Proposal, Ack, Nack, Decide)


class ConsensusNodeDriver:
    """Co-hosts a detector driver and a consensus participant."""

    def __init__(
        self,
        process: SimProcess,
        fd_driver,
        consensus: ChandraTouegConsensus,
        propose_value: Any,
        *,
        propose_at: float = 0.0,
        on_decide: Callable[[ProcessId, Any, float], None] | None = None,
    ) -> None:
        self.process = process
        self.fd_driver = fd_driver
        self.consensus = consensus
        self.propose_value = propose_value
        self.propose_at = propose_at
        self._on_decide = on_decide
        self._decision_reported = False
        # Suspicion changes unblock phase-3 waits on a crashed coordinator.
        fd_driver.suspicion_listeners.append(self._on_suspicion_change)

    # -- driver surface ----------------------------------------------------
    def on_start(self) -> None:
        self.fd_driver.on_start()
        self.process.scheduler.schedule_at(
            max(self.propose_at, self.process.scheduler.now), self._propose
        )

    def on_message(self, src: ProcessId, message: object) -> None:
        if isinstance(message, _CONSENSUS_KINDS):
            self._run_consensus(lambda: self.consensus.on_message(src, message))
        else:
            self.fd_driver.on_message(src, message)

    def on_crash(self) -> None:
        self.fd_driver.on_crash()

    def on_detach(self) -> None:
        self.fd_driver.on_detach()

    def on_attach(self) -> None:
        self.fd_driver.on_attach()

    def suspects(self) -> frozenset:
        return self.fd_driver.suspects()

    # -- consensus plumbing ---------------------------------------------------
    def _propose(self) -> None:
        if not self.process.alive:
            return
        self._run_consensus(lambda: self.consensus.propose(self.propose_value))

    def _on_suspicion_change(self, pid: ProcessId, suspects: frozenset) -> None:
        self._run_consensus(self.consensus.poke)

    def _run_consensus(self, step: Callable[[], list[Effect]]) -> None:
        if not self.process.alive:
            return
        effects = step()
        self.process.execute(effects)
        if self.consensus.decided and not self._decision_reported:
            self._decision_reported = True
            if self._on_decide is not None:
                self._on_decide(
                    self.process.pid,
                    self.consensus.decision,
                    self.process.scheduler.now,
                )


@dataclass
class ConsensusRunResult:
    """Outcome of one simulated consensus run."""

    proposals: dict[ProcessId, Any]
    decisions: dict[ProcessId, Any] = field(default_factory=dict)
    decision_times: dict[ProcessId, float] = field(default_factory=dict)
    rounds_executed: dict[ProcessId, int] = field(default_factory=dict)
    correct: frozenset = frozenset()

    @property
    def agreement_holds(self) -> bool:
        """No two processes decided different values."""
        return len(set(self.decisions.values())) <= 1

    @property
    def validity_holds(self) -> bool:
        """Every decided value was somebody's proposal."""
        proposed = set(self.proposals.values())
        return all(value in proposed for value in self.decisions.values())

    @property
    def all_correct_decided(self) -> bool:
        """Termination for every correct participant."""
        return all(pid in self.decisions for pid in self.correct)

    @property
    def last_decision_time(self) -> float | None:
        correct_times = [t for pid, t in self.decision_times.items() if pid in self.correct]
        return max(correct_times, default=None)


class ConsensusHarness:
    """Build-and-run helper for consensus experiments (T4) and tests."""

    def __init__(
        self,
        *,
        n: int,
        f: int,
        fd_driver_factory: DriverFactory | None = None,
        latency: LatencyModel | None = None,
        seed: int = 1,
        fault_plan: FaultPlan | None = None,
        proposals: dict[ProcessId, Any] | None = None,
        propose_at: float = 0.0,
        start_stagger: float = 0.0,
    ) -> None:
        if n < 2:
            raise ConfigurationError("consensus needs at least 2 processes")
        fd_factory = (
            fd_driver_factory
            if fd_driver_factory is not None
            else time_free_driver_factory(f)
        )
        membership = frozenset(range(1, n + 1))
        self.proposals: dict[ProcessId, Any] = (
            dict(proposals)
            if proposals is not None
            else {pid: f"value-{pid}" for pid in sorted(membership)}
        )
        missing = membership - set(self.proposals)
        if missing:
            raise ConfigurationError(f"missing proposals for {sorted(missing, key=repr)}")
        self.result = ConsensusRunResult(proposals=dict(self.proposals))
        self._participants: dict[ProcessId, ChandraTouegConsensus] = {}

        def composite_factory(process: SimProcess, cluster: SimCluster):
            fd_driver = fd_factory(process, cluster)
            config = ConsensusConfig(process_id=process.pid, membership=membership, f=f)
            consensus = ChandraTouegConsensus(config, fd_driver.suspects)
            self._participants[process.pid] = consensus
            return ConsensusNodeDriver(
                process,
                fd_driver,
                consensus,
                self.proposals[process.pid],
                propose_at=propose_at,
                on_decide=self._record_decision,
            )

        self.cluster = SimCluster(
            n=n,
            driver_factory=composite_factory,
            latency=latency,
            seed=seed,
            fault_plan=fault_plan,
            start_stagger=start_stagger,
        )
        self.result.correct = self.cluster.correct_processes()

    def _record_decision(self, pid: ProcessId, value: Any, time: float) -> None:
        self.result.decisions[pid] = value
        self.result.decision_times[pid] = time

    def run(self, until: float) -> ConsensusRunResult:
        self.cluster.run(until=until)
        self.result.rounds_executed = {
            pid: participant.rounds_executed
            for pid, participant in self._participants.items()
        }
        return self.result
