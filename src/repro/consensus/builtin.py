"""The two built-in consensus protocols, registered with the plugin registry.

==========  =======  ==================================================
key         oracle   mechanism / liveness assumption
==========  =======  ==================================================
``ct``      suspects Chandra-Toueg '96 rotating coordinator: phase-1
                     estimates, majority proposal with maximal ``ts``,
                     ack/nack, reliable DECIDE.  Safe always; live under
                     ◇S with ``f < n/2``.
``omega``   leader   Same locking machinery, but phase 3 trusts the
                     elected leader (nack when ``leader() !=
                     coordinator``) and round 1 skips phase 1 — the
                     coordinator proposes its own value directly (early
                     decision).  Safe always; live under Ω.
==========  =======  ==================================================

Each protocol's knobs live in a frozen params dataclass; validation of
knob *values* stays in the state machines — the registry only validates
knob names, mirroring the detector registry's contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from .omega_protocol import OmegaConsensus
from .protocol import ChandraTouegConsensus, ConsensusConfig
from .registry import register_protocol
from .spec import ConsensusContext, ConsensusOracle, ConsensusSpec

__all__ = ["ChandraTouegParams", "OmegaParams", "CT_SPEC", "OMEGA_SPEC"]


@dataclass(frozen=True)
class ChandraTouegParams:
    """CT has no tunables — the protocol is fully determined by (n, f)."""


@dataclass(frozen=True)
class OmegaParams:
    """``fast_round`` skips phase 1 in round 1 (early decision); turning it
    off yields a leader-oracle CT useful for apples-to-apples round counts."""

    fast_round: bool = True


def _config(context: ConsensusContext) -> ConsensusConfig:
    return ConsensusConfig(
        process_id=context.process_id, membership=context.membership, f=context.f
    )


def _build_ct(
    context: ConsensusContext, params: ChandraTouegParams, oracle: ConsensusOracle
) -> ChandraTouegConsensus:
    return ChandraTouegConsensus(_config(context), oracle.suspects)


def _build_omega(
    context: ConsensusContext, params: OmegaParams, oracle: ConsensusOracle
) -> OmegaConsensus:
    return OmegaConsensus(_config(context), oracle.leader, fast_round=params.fast_round)


CT_SPEC = register_protocol(
    ConsensusSpec(
        key="ct",
        title="Chandra-Toueg ◇S rotating coordinator",
        params_cls=ChandraTouegParams,
        factory=_build_ct,
        oracle="suspects",
        summary="4-phase rotating coordinator over a ◇S suspect list; "
        "safe under any detector output, live under ◇S with f < n/2",
    )
)

OMEGA_SPEC = register_protocol(
    ConsensusSpec(
        key="omega",
        title="Ω early-deciding rotating coordinator",
        params_cls=OmegaParams,
        factory=_build_omega,
        oracle="leader",
        summary="CT locking machinery over an Ω leader oracle; round 1 skips "
        "phase 1 (coordinator proposes its own value), live under Ω",
    )
)
