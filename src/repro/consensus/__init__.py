"""Chandra-Toueg ◇S consensus — the application the detector exists for.

Chandra & Toueg proved that consensus is solvable in an asynchronous system
augmented with a ◇S failure detector when a majority of processes is
correct.  This package implements their rotating-coordinator protocol as a
sans-I/O state machine (:mod:`repro.consensus.protocol`) that *pulls* the
suspect list from any :class:`repro.core.classes.FailureDetector`, plus a
simulation harness (:mod:`repro.consensus.sim_runner`) that co-hosts the
detector and the consensus participant on each simulated node.

The T4 experiment runs this consensus over the time-free detector and over
every baseline, fault-free and with a crashed coordinator.
"""

from .messages import Ack, Decide, Estimate, Nack, Proposal
from .protocol import ChandraTouegConsensus, ConsensusConfig
from .sim_runner import ConsensusHarness, ConsensusRunResult

__all__ = [
    "Ack",
    "ChandraTouegConsensus",
    "ConsensusConfig",
    "ConsensusHarness",
    "ConsensusRunResult",
    "Decide",
    "Estimate",
    "Nack",
    "Proposal",
]
