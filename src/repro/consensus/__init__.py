"""Consensus — the workload plane the detector exists for.

Chandra & Toueg proved that consensus is solvable in an asynchronous system
augmented with a ◇S failure detector when a majority of processes is
correct.  This package implements their rotating-coordinator protocol as a
sans-I/O state machine (:mod:`repro.consensus.protocol`), an Ω-based
early-deciding variant (:mod:`repro.consensus.omega_protocol`), and a
string-keyed plugin registry (:mod:`repro.consensus.registry`) mirroring
the detector registry: protocols are :class:`ConsensusSpec` entries with
typed params and a ``factory(context, params, oracle)`` building one
process's participant.

The simulation harness (:mod:`repro.consensus.sim_runner`) co-hosts any
registered detector with any registered protocol on each simulated node and
supports repeated multi-instance runs with a per-instance decision ledger.
The t4 experiment compares decision latency across detectors; c1 measures
decision latency and aborted rounds against detector QoS under the fault
scenarios.
"""

from .builtin import CT_SPEC, OMEGA_SPEC, ChandraTouegParams, OmegaParams
from .messages import Ack, Decide, Estimate, InstanceEnvelope, Nack, Proposal
from .omega_protocol import OmegaConsensus
from .protocol import ChandraTouegConsensus, ConsensusConfig
from .registry import (
    all_protocols,
    build_protocol,
    get_protocol,
    protocol_keys,
    register_protocol,
)
from .sim_runner import (
    ConsensusHarness,
    ConsensusNodeDriver,
    ConsensusRunResult,
    InstanceOutcome,
)
from .spec import ConsensusContext, ConsensusOracle, ConsensusSpec, oracle_from_suspects

__all__ = [
    "Ack",
    "CT_SPEC",
    "ChandraTouegConsensus",
    "ChandraTouegParams",
    "ConsensusConfig",
    "ConsensusContext",
    "ConsensusHarness",
    "ConsensusNodeDriver",
    "ConsensusOracle",
    "ConsensusRunResult",
    "ConsensusSpec",
    "Decide",
    "Estimate",
    "InstanceEnvelope",
    "InstanceOutcome",
    "Nack",
    "OMEGA_SPEC",
    "OmegaConsensus",
    "OmegaParams",
    "Proposal",
    "all_protocols",
    "build_protocol",
    "get_protocol",
    "oracle_from_suspects",
    "protocol_keys",
    "register_protocol",
]
