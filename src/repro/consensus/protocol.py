"""The Chandra-Toueg ◇S consensus state machine (CT'96, Figure 6).

Sans-I/O and event-driven: every entry point (:meth:`propose`,
:meth:`on_message`, :meth:`poke`) returns the effects to transmit, and
internally runs a *progress loop* that advances through as many phases as
the buffered state allows.  The suspect list is **pulled** from a callback
on every evaluation of the phase-3 wait, so any detector satisfying the
:class:`repro.core.classes.FailureDetector` surface plugs in.

Round structure (round ``r``, coordinator ``c = ((r - 1) mod n) + 1``-th
member in sorted order):

* **Phase 1** — everyone sends its ``(estimate, ts)`` to ``c``.
* **Phase 2** — ``c`` gathers a majority of estimates and proposes one with
  maximal ``ts``.
* **Phase 3** — everyone waits for ``c``'s proposal *or* for its detector
  to suspect ``c``; it then acks (adopting the proposal with ``ts = r``) or
  nacks, and enters round ``r + 1``.
* **Phase 4** — ``c`` gathers a majority of acks/nacks; if all are acks the
  value is *locked*: ``c`` reliably broadcasts ``DECIDE``.

Safety (validity + agreement) holds under any detector output whatsoever;
liveness needs ◇S and ``f < n / 2`` — exactly the paper's motivation for
building a ◇S detector without timers.

The class doubles as the **base** of the rotating-coordinator family: a
subclass can override :meth:`~ChandraTouegConsensus._wants_nack` (which
oracle condition lets phase 3 give up on the coordinator) and
:meth:`~ChandraTouegConsensus._collects_estimates` (whether a round runs
phase 1 at all) without touching the locking machinery that carries
agreement.  :class:`repro.consensus.omega_protocol.OmegaConsensus` is the
in-tree example; both are registered with the
:mod:`repro.consensus.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.effects import Effect, SendTo
from ..errors import ConfigurationError, ConsensusError
from ..ids import ProcessId, coordinator_of_round, validate_membership
from .messages import Ack, Decide, Estimate, Nack, Proposal

__all__ = ["ConsensusConfig", "ChandraTouegConsensus"]

SuspectsSource = Callable[[], frozenset]


@dataclass(frozen=True)
class ConsensusConfig:
    """Membership and the crash bound for one consensus instance."""

    process_id: ProcessId
    membership: frozenset[ProcessId]
    f: int

    def __post_init__(self) -> None:
        members = validate_membership(self.membership, process_id=self.process_id, f=self.f)
        object.__setattr__(self, "membership", members)
        if 2 * self.f >= len(members):
            raise ConfigurationError(
                f"Chandra-Toueg consensus needs a correct majority (f < n/2); "
                f"got f={self.f}, n={len(members)}"
            )

    @property
    def n(self) -> int:
        return len(self.membership)

    @property
    def majority(self) -> int:
        return self.n // 2 + 1

    def coordinator(self, round_number: int) -> ProcessId:
        return coordinator_of_round(round_number, sorted(self.membership, key=repr))


class ChandraTouegConsensus:
    """One process's participant state machine."""

    def __init__(self, config: ConsensusConfig, suspects_source: SuspectsSource) -> None:
        self._config = config
        self._suspects = suspects_source
        self._round = 0
        self._estimate: Any = None
        self._ts = 0
        self._proposed = False
        self._decided = False
        self._decision: Any = None
        self._decide_relayed = False
        # Buffered mailboxes, keyed by round.
        self._estimates: dict[int, dict[ProcessId, Estimate]] = {}
        self._replies: dict[int, dict[ProcessId, bool]] = {}  # True = ack
        self._proposals: dict[int, Proposal] = {}
        # Phase bookkeeping for the current round.
        self._phase3_done = False
        self._coordinator_proposed = False
        self._coordinator_resolved = False
        self._rounds_executed = 0
        self._nacks_sent = 0
        self._decision_round: int | None = None

    # -- introspection ------------------------------------------------------
    @property
    def process_id(self) -> ProcessId:
        return self._config.process_id

    @property
    def round(self) -> int:
        return self._round

    @property
    def rounds_executed(self) -> int:
        """Rounds this process has fully moved through (≥ decision round)."""
        return self._rounds_executed

    @property
    def proposed(self) -> bool:
        return self._proposed

    @property
    def nacks_sent(self) -> int:
        """Phase-3 nacks this process issued (aborted-round accounting)."""
        return self._nacks_sent

    @property
    def decision_round(self) -> int | None:
        """The round this process was in when it decided (``None`` before)."""
        return self._decision_round

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def decision(self) -> Any:
        if not self._decided:
            raise ConsensusError(f"{self.process_id!r} has not decided")
        return self._decision

    # -- entry points -------------------------------------------------------
    def propose(self, value: Any) -> list[Effect]:
        """Start participating with initial estimate ``value``."""
        if self._proposed:
            raise ConsensusError(f"{self.process_id!r} already proposed")
        self._proposed = True
        self._estimate = value
        self._ts = 0
        self._round = 1
        self._enter_round()
        effects: list[Effect] = []
        self._send_estimate(effects)
        self._progress(effects)
        return effects

    def on_message(self, sender: ProcessId, message: object) -> list[Effect]:
        """Feed one received consensus message; returns effects."""
        effects: list[Effect] = []
        if isinstance(message, Decide):
            self._on_decide(message.value, effects)
            return effects
        if self._decided or not self._proposed:
            return effects
        if isinstance(message, Estimate):
            self._estimates.setdefault(message.round, {})[sender] = message
        elif isinstance(message, Proposal):
            self._proposals.setdefault(message.round, message)
        elif isinstance(message, Ack):
            self._replies.setdefault(message.round, {})[sender] = True
        elif isinstance(message, Nack):
            self._replies.setdefault(message.round, {})[sender] = False
        else:
            raise ConsensusError(f"foreign message {message!r}")
        self._progress(effects)
        return effects

    def poke(self) -> list[Effect]:
        """Re-evaluate waits after the failure detector's output changed."""
        effects: list[Effect] = []
        if self._proposed and not self._decided:
            self._progress(effects)
        return effects

    # -- progress loop --------------------------------------------------------
    def _progress(self, effects: list[Effect]) -> None:
        # Keep advancing phases until nothing more can move; every step
        # fires at most once per round (guarded by flags) so the loop
        # terminates.
        moved = True
        while moved and not self._decided:
            moved = False
            moved = self._coordinator_phase2(effects) or moved
            moved = self._phase3(effects) or moved
            moved = self._coordinator_phase4(effects) or moved
            moved = self._maybe_advance(effects) or moved

    def _is_coordinator(self) -> bool:
        return self._config.coordinator(self._round) == self.process_id

    # -- subclass hooks -----------------------------------------------------
    def _wants_nack(self, coordinator: ProcessId) -> bool:
        """Oracle condition letting phase 3 give up on ``coordinator``.

        CT consults a ◇S suspect list; an Ω variant compares against the
        elected leader.  Called only for a *remote* coordinator.
        """
        return coordinator in self._suspects()

    def _collects_estimates(self, round_number: int) -> bool:
        """Whether round ``round_number`` runs phase 1 at all.

        Always true for CT.  An early-deciding variant may skip phase 1 in
        round 1 — nothing can be locked before the first round, so the
        coordinator may propose its own initial value directly.
        """
        return True

    # -- phases -------------------------------------------------------------
    def _coordinator_phase2(self, effects: list[Effect]) -> bool:
        """Propose once a majority of estimates is buffered."""
        if not self._is_coordinator() or self._coordinator_proposed:
            return False
        if self._collects_estimates(self._round):
            estimates = self._estimates.get(self._round, {})
            if len(estimates) < self._config.majority:
                return False
            value = max(estimates.values(), key=lambda e: e.ts).value
        else:
            value = self._estimate
        self._coordinator_proposed = True
        proposal = Proposal(sender=self.process_id, round=self._round, value=value)
        self._broadcast(proposal, effects)
        return True

    def _phase3(self, effects: list[Effect]) -> bool:
        """Everyone: adopt the proposal (ack) or denounce the coordinator (nack)."""
        if self._phase3_done:
            return False
        coordinator = self._config.coordinator(self._round)
        proposal = self._proposals.get(self._round)
        if proposal is not None:
            self._estimate = proposal.value
            self._ts = self._round
            self._send(coordinator, Ack(sender=self.process_id, round=self._round), effects)
        elif coordinator != self.process_id and self._wants_nack(coordinator):
            self._nacks_sent += 1
            self._send(coordinator, Nack(sender=self.process_id, round=self._round), effects)
        else:
            return False  # still waiting: proposal or the oracle's verdict
        self._phase3_done = True
        return True

    def _coordinator_phase4(self, effects: list[Effect]) -> bool:
        """Coordinator: resolve once a majority of acks/nacks is buffered."""
        if not self._is_coordinator() or self._coordinator_resolved:
            return False
        if not self._coordinator_proposed:
            return False
        replies = self._replies.get(self._round, {})
        if len(replies) < self._config.majority:
            return False
        self._coordinator_resolved = True
        if all(replies.values()):
            proposal = self._proposals.get(self._round)
            if proposal is None:
                raise ConsensusError("coordinator resolved without own proposal")
            self._on_decide(proposal.value, effects)
        return True

    def _maybe_advance(self, effects: list[Effect]) -> bool:
        """Enter the next round once this round's duties are discharged.

        Non-coordinators move on right after phase 3; the coordinator also
        waits out phase 4 (its reply collection belongs to this round).
        """
        if not self._phase3_done:
            return False
        if self._is_coordinator() and not self._coordinator_resolved:
            return False
        self._rounds_executed += 1
        self._round += 1
        self._enter_round()
        self._send_estimate(effects)
        return True

    def _enter_round(self) -> None:
        self._phase3_done = False
        self._coordinator_proposed = False
        self._coordinator_resolved = False

    # -- decision ---------------------------------------------------------------
    def _on_decide(self, value: Any, effects: list[Effect]) -> None:
        if not self._decide_relayed:
            # Reliable broadcast: relay once before halting, so a crashed
            # original sender cannot leave the decision half-delivered.
            self._decide_relayed = True
            self._broadcast(Decide(sender=self.process_id, value=value), effects)
        if not self._decided:
            self._decided = True
            self._decision = value
            self._decision_round = self._round

    # -- transmission helpers ------------------------------------------------------
    def _send_estimate(self, effects: list[Effect]) -> None:
        if not self._collects_estimates(self._round):
            return
        coordinator = self._config.coordinator(self._round)
        estimate = Estimate(
            sender=self.process_id, round=self._round, value=self._estimate, ts=self._ts
        )
        self._send(coordinator, estimate, effects)

    def _send(self, dst: ProcessId, message: object, effects: list[Effect]) -> None:
        if dst == self.process_id:
            self._accept_local(message)
        else:
            effects.append(SendTo(dst, message))

    def _broadcast(self, message: object, effects: list[Effect]) -> None:
        for dst in sorted(self._config.membership, key=repr):
            self._send(dst, message, effects)

    def _accept_local(self, message: object) -> None:
        """Self-addressed messages bypass the network."""
        if isinstance(message, Estimate):
            self._estimates.setdefault(message.round, {})[self.process_id] = message
        elif isinstance(message, Proposal):
            self._proposals.setdefault(message.round, message)
        elif isinstance(message, Ack):
            self._replies.setdefault(message.round, {})[self.process_id] = True
        elif isinstance(message, Nack):
            self._replies.setdefault(message.round, {})[self.process_id] = False
        elif isinstance(message, Decide):
            if not self._decided:
                self._decided = True
                self._decision = message.value
                self._decision_round = self._round
