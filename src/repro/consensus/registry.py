"""String-keyed plugin registry of consensus protocols.

The consensus twin of :mod:`repro.detectors.registry`: a protocol registers
a :class:`~repro.consensus.spec.ConsensusSpec` under a stable lower-case
key, and every consumer — the generic
:class:`~repro.consensus.sim_runner.ConsensusHarness`, the ``c1``/``t4``
experiments, the ``repro protocols`` CLI listing, the registry-parametrized
conformance battery — resolves protocols by key instead of importing
concrete classes.

The two built-in protocols (:mod:`repro.consensus.builtin`: Chandra-Toueg
◇S and Ω early-deciding) are registered on first lookup; external code can
register additional protocols (e.g. Paxos-style or chain-replication
variants) at import time with :func:`register_protocol` and they become
runnable over every registered detector for free.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from .spec import ConsensusContext, ConsensusOracle, ConsensusSpec

__all__ = [
    "register_protocol",
    "get_protocol",
    "all_protocols",
    "protocol_keys",
    "build_protocol",
]

_REGISTRY: dict[str, ConsensusSpec] = {}


def register_protocol(spec: ConsensusSpec) -> ConsensusSpec:
    """Register a consensus protocol under ``spec.key``.

    Returns ``spec``, so it composes with assignment.  Re-registering the
    *same* spec object is a no-op (safe under repeated module import); a
    different spec under an existing key raises
    :class:`~repro.errors.ConfigurationError` — pick a new key rather than
    shadowing a built-in.
    """
    existing = _REGISTRY.get(spec.key)
    if existing is not None and existing is not spec:
        raise ConfigurationError(f"consensus protocol key {spec.key!r} is already registered")
    _REGISTRY[spec.key] = spec
    return spec


def _ensure_builtin() -> None:
    from . import builtin  # noqa: F401  (registers on import)


def get_protocol(key: str) -> ConsensusSpec:
    """The spec registered under ``key`` (case-insensitive)."""
    _ensure_builtin()
    spec = _REGISTRY.get(key.lower() if isinstance(key, str) else key)
    if spec is None:
        raise ConfigurationError(
            f"unknown consensus protocol {key!r}; registered: {sorted(_REGISTRY)}"
        )
    return spec


def all_protocols() -> dict[str, ConsensusSpec]:
    """Every registered protocol, keyed and sorted by registry key."""
    _ensure_builtin()
    return {key: _REGISTRY[key] for key in sorted(_REGISTRY)}


def protocol_keys() -> list[str]:
    return list(all_protocols())


def build_protocol(
    key: str,
    context: ConsensusContext,
    oracle: ConsensusOracle,
    params: Any | None = None,
    /,
    **overrides: Any,
) -> Any:
    """Build one process's participant for the protocol registered under ``key``."""
    return get_protocol(key).build(context, oracle, params, **overrides)
