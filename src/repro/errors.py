"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from the standard
library, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MembershipError",
    "ProtocolError",
    "SimulationError",
    "TopologyError",
    "TransportError",
    "ConsensusError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters."""


class MembershipError(ConfigurationError):
    """A process identifier is not part of the configured membership."""


class ProtocolError(ReproError):
    """A protocol state machine was driven in an illegal order.

    For instance finishing a query round that was never started, or feeding a
    response to a detector that is not currently collecting responses.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was misused or reached an illegal state."""


class TopologyError(ReproError):
    """A network topology does not satisfy a required structural property."""


class TransportError(ReproError):
    """An asyncio transport failed to deliver or encode a message."""


class ConsensusError(ReproError):
    """A consensus participant was driven into an illegal state."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
