"""Deterministic discrete-event simulation substrate.

The paper evaluates its detector on OMNeT++; this package is the equivalent
substrate built from scratch: a seeded, deterministic event scheduler
(:mod:`repro.sim.engine`), pluggable message-latency models
(:mod:`repro.sim.latency`), network topologies including the paper's
f-covering MANET construction (:mod:`repro.sim.topology`), a simulated
radio/packet network (:mod:`repro.sim.network`), crash and mobility fault
injection (:mod:`repro.sim.faults`), structured run traces
(:mod:`repro.sim.trace`), and drivers that host the sans-I/O detector cores
on all of it (:mod:`repro.sim.node`, :mod:`repro.sim.cluster`).

Determinism contract: a simulation constructed from the same parameters and
seed produces the *identical* trace (event order, timestamps, suspicions) on
every run — property-tested in ``tests/property/test_determinism.py``.
"""

from .cluster import SimCluster, heartbeat_driver_factory, time_free_driver_factory
from .engine import EventHandle, Scheduler
from .faults import CrashFault, FaultPlan, MobilityFault
from .latency import (
    BiasedLatency,
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    PairwiseLatency,
    ParetoLatency,
    RegimeShiftLatency,
    TimeAwareLatency,
    UniformLatency,
)
from .monitors import MessagePatternMonitor
from .network import SimNetwork
from .node import QueryPacing, QueryResponseDriver, SimProcess, TimedDriver
from .rng import RngStreams
from .topology import Topology, full_mesh, grid, manet_topology, random_geometric, ring
from .trace import RoundRecord, SuspicionChange, TraceRecorder

__all__ = [
    "BiasedLatency",
    "ConstantLatency",
    "CrashFault",
    "EventHandle",
    "ExponentialLatency",
    "FaultPlan",
    "LatencyModel",
    "LogNormalLatency",
    "MessagePatternMonitor",
    "MobilityFault",
    "PairwiseLatency",
    "ParetoLatency",
    "QueryPacing",
    "RegimeShiftLatency",
    "TimeAwareLatency",
    "QueryResponseDriver",
    "RngStreams",
    "RoundRecord",
    "Scheduler",
    "SimCluster",
    "SimNetwork",
    "SimProcess",
    "SuspicionChange",
    "TimedDriver",
    "Topology",
    "TraceRecorder",
    "UniformLatency",
    "full_mesh",
    "grid",
    "heartbeat_driver_factory",
    "manet_topology",
    "random_geometric",
    "ring",
    "time_free_driver_factory",
]
