"""Message-latency models.

The system model is *asynchronous*: there is no bound on transfer delays.
Concretely the simulator draws each message's delay from a configurable
distribution.  Two models matter for the experiments:

* heavy-tailed models (:class:`LogNormalLatency`, :class:`ParetoLatency`)
  stress timer-based detectors — any fixed timeout is eventually wrong;
* :class:`BiasedLatency` makes a chosen set of processes systematically
  faster responders, which is exactly how the behavioral property **MP**
  ("some correct process eventually wins every quorum of f+1 queriers") is
  realised or broken on demand (experiment F3).

All models sample via an explicit :class:`random.Random` so determinism is
inherited from :mod:`repro.sim.rng`.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = [
    "LatencyModel",
    "TimeAwareLatency",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "ParetoLatency",
    "BiasedLatency",
    "PairwiseLatency",
    "RegimeShiftLatency",
]


class LatencyModel(abc.ABC):
    """Draws the one-way delay of a message from ``src`` to ``dst``."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        """A strictly positive delay in simulated time units."""

    def sample_at(
        self, rng: random.Random, src: ProcessId, dst: ProcessId, now: float
    ) -> float:
        """Delay for a message sent at virtual time ``now``.

        The simulated network always calls this entry point.  Stationary
        models ignore ``now``; :class:`TimeAwareLatency` subclasses override
        it, and wrapper models propagate it to their base.
        """
        return self.sample(rng, src, dst)

    def sample_many(
        self,
        rng: random.Random,
        src: ProcessId,
        dsts: Sequence[ProcessId],
        now: float,
    ) -> list[float]:
        """Delays for one message from ``src`` to each of ``dsts``, in order.

        This is the broadcast entry point: one call samples all ``n - 1``
        per-destination delays, replacing ``len(dsts)`` virtual
        :meth:`sample_at` dispatches with a single one.  Implementations
        MUST consume ``rng`` exactly as the equivalent sequence of
        :meth:`sample_at` calls would — batch sampling changes cost, never
        the random stream, so traces stay bit-for-bit identical.
        """
        sample_at = self.sample_at
        return [sample_at(rng, src, dst, now) for dst in dsts]

    def mean(self) -> float:
        """Analytic mean delay where defined; models may override."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form mean")


class TimeAwareLatency(LatencyModel):
    """A latency model whose distribution depends on the simulation time.

    The simulated network recognises these and calls :meth:`sample_at` with
    the current virtual time; the plain :meth:`sample` entry point is
    rejected to catch misuse outside a simulation.
    """

    @abc.abstractmethod
    def sample_at(
        self, rng: random.Random, src: ProcessId, dst: ProcessId, now: float
    ) -> float:
        """A strictly positive delay for a message sent at ``now``."""

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        raise ConfigurationError(
            f"{type(self).__name__} is time-dependent; it can only be used "
            "inside a simulated network that supplies the current time"
        )


class ConstantLatency(LatencyModel):
    """Fixed delay, optionally with uniform jitter in ``[delay, delay + jitter]``."""

    def __init__(self, delay: float, jitter: float = 0.0) -> None:
        if delay <= 0:
            raise ConfigurationError(f"delay must be > 0, got {delay}")
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.delay = delay
        self.jitter = jitter

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        if self.jitter == 0.0:
            return self.delay
        return self.delay + rng.random() * self.jitter

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        if self.jitter == 0.0:
            return [self.delay] * len(dsts)
        delay, jitter, uniform = self.delay, self.jitter, rng.random
        return [delay + uniform() * jitter for _ in dsts]

    def mean(self) -> float:
        return self.delay + self.jitter / 2.0


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return rng.uniform(self.low, self.high)

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        low, high, uniform = self.low, self.high, rng.uniform
        return [uniform(low, high) for _ in dsts]

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class ExponentialLatency(LatencyModel):
    """Exponential delay with the given mean, shifted by ``floor``.

    The paper's evaluation uses a one-hop delay "equal to 1 ms in average";
    ``ExponentialLatency(mean=0.001)`` is the canonical reading.
    """

    def __init__(self, mean: float, floor: float = 0.0) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        if floor < 0:
            raise ConfigurationError(f"floor must be >= 0, got {floor}")
        self._mean = mean
        self.floor = floor

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return self.floor + rng.expovariate(1.0 / self._mean)

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        floor, lambd, expovariate = self.floor, 1.0 / self._mean, rng.expovariate
        return [floor + expovariate(lambd) for _ in dsts]

    def mean(self) -> float:
        return self.floor + self._mean


class LogNormalLatency(LatencyModel):
    """Log-normal delay: median ``median``, shape ``sigma`` (heavy tail).

    Increasing ``sigma`` at a fixed median keeps typical messages fast while
    producing ever-larger stragglers — the regime in which timeouts misfire
    but the time-free detector keeps its accuracy (experiment F2).
    """

    def __init__(self, median: float, sigma: float, floor: float = 0.0) -> None:
        if median <= 0:
            raise ConfigurationError(f"median must be > 0, got {median}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if floor < 0:
            raise ConfigurationError(f"floor must be >= 0, got {floor}")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return self.floor + rng.lognormvariate(self._mu, self.sigma)

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        floor, mu, sigma, lognorm = self.floor, self._mu, self.sigma, rng.lognormvariate
        return [floor + lognorm(mu, sigma) for _ in dsts]

    def mean(self) -> float:
        return self.floor + math.exp(self._mu + self.sigma**2 / 2.0)


class ParetoLatency(LatencyModel):
    """Pareto delay with minimum ``scale`` and tail index ``shape``.

    ``shape <= 1`` has an infinite mean — maximal asynchrony.
    """

    def __init__(self, scale: float, shape: float) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        if shape <= 0:
            raise ConfigurationError(f"shape must be > 0, got {shape}")
        self.scale = scale
        self.shape = shape

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return self.scale * rng.paretovariate(self.shape)

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        scale, shape, pareto = self.scale, self.shape, rng.paretovariate
        return [scale * pareto(shape) for _ in dsts]

    def mean(self) -> float:
        if self.shape <= 1:
            return math.inf
        return self.scale * self.shape / (self.shape - 1)


class BiasedLatency(LatencyModel):
    """Speed up (or slow down) the messages of a favored set of processes.

    This is how the *responsiveness property* RP is realised in a
    simulation: "communication between some node and its neighborhood is
    always faster than the other communications of this neighborhood".
    With ``bidirectional=True`` (the faithful reading of RP) both legs of a
    query-response involving a favored process are accelerated, so its
    responses systematically arrive among the first ``n - f`` — giving MP
    whenever at least one favored process is correct.  With
    ``bidirectional=False`` only messages *sent by* favored processes are
    fast (heartbeat-style one-way traffic).  ``speedup < 1`` sabotages a
    process instead.
    """

    def __init__(
        self,
        base: LatencyModel,
        favored: frozenset[ProcessId],
        speedup: float,
        *,
        bidirectional: bool = True,
    ) -> None:
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be > 0, got {speedup}")
        self.base = base
        self.favored = frozenset(favored)
        self.speedup = speedup
        self.bidirectional = bidirectional

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        delay = self.base.sample(rng, src, dst)
        return self._apply(delay, src, dst)

    def sample_at(
        self, rng: random.Random, src: ProcessId, dst: ProcessId, now: float
    ) -> float:
        delay = self.base.sample_at(rng, src, dst, now)
        return self._apply(delay, src, dst)

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        delays = self.base.sample_many(rng, src, dsts, now)
        apply = self._apply
        return [apply(delay, src, dst) for delay, dst in zip(delays, dsts)]

    def _apply(self, delay: float, src: ProcessId, dst: ProcessId) -> float:
        if src in self.favored or (self.bidirectional and dst in self.favored):
            return delay / self.speedup
        return delay


class RegimeShiftLatency(TimeAwareLatency):
    """All delays multiply by ``factor`` from ``shift_at`` onwards.

    Models a network-wide slowdown (congestion, route change).  The crucial
    property: a uniform rescaling of delays leaves *relative* response
    orderings untouched, so the time-free detector's output is invariant —
    while any fixed timeout calibrated for the fast regime misfires.  This
    is the F2 experiment's stressor.
    """

    def __init__(self, base: LatencyModel, shift_at: float, factor: float) -> None:
        if shift_at < 0:
            raise ConfigurationError(f"shift_at must be >= 0, got {shift_at}")
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        self.base = base
        self.shift_at = shift_at
        self.factor = factor

    def sample_at(
        self, rng: random.Random, src: ProcessId, dst: ProcessId, now: float
    ) -> float:
        delay = self.base.sample(rng, src, dst)
        if now >= self.shift_at:
            return delay * self.factor
        return delay

    def sample_many(
        self, rng: random.Random, src: ProcessId, dsts: Sequence[ProcessId], now: float
    ) -> list[float]:
        sample = self.base.sample
        if now >= self.shift_at:
            factor = self.factor
            return [sample(rng, src, dst) * factor for dst in dsts]
        return [sample(rng, src, dst) for dst in dsts]


class PairwiseLatency(LatencyModel):
    """Per-(src, dst) overrides on top of a default model.

    Used to engineer exact message patterns in integration tests (e.g. one
    asymmetric slow link).
    """

    def __init__(
        self,
        default: LatencyModel,
        overrides: Mapping[tuple[ProcessId, ProcessId], LatencyModel],
    ) -> None:
        self.default = default
        self.overrides = dict(overrides)

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        model = self.overrides.get((src, dst), self.default)
        return model.sample(rng, src, dst)

    def sample_at(
        self, rng: random.Random, src: ProcessId, dst: ProcessId, now: float
    ) -> float:
        model = self.overrides.get((src, dst), self.default)
        return model.sample_at(rng, src, dst, now)
