"""Structured run traces: the single source of truth for every metric.

Nodes and drivers append typed records; :mod:`repro.metrics` computes
detection times, mistake statistics and message loads from them.  Message
records are aggregated (counters) by default to keep memory bounded on long
runs; suspicion changes and rounds are kept in full since every experiment
needs their timelines.

Two storage backends sit behind one query surface:

``backend="columnar"`` (default)
    A compact columnar store.  Process ids are interned to dense ints; the
    global change log is a pair of parallel ``array('d')``/``array('i')``
    time/observer columns plus per-change added/removed deltas stored as
    small tuples of dense ints.  No per-change ``suspects`` snapshot is
    materialized — instead each observer keeps periodic *checkpoints* of
    its suspect set (every ``checkpoint_interval`` changes, plus a forced
    checkpoint whenever a record's ``before`` disagrees with the previous
    ``after``), so ``suspects_at`` costs O(log c + k) and a cell's trace
    memory is O(changes) instead of O(n * changes).  Rounds are stored the
    same way: scalar columns plus responders/winners flattened into shared
    int arrays with offset columns.

``backend="object"``
    The original list-of-dataclasses recorder with a lazily built
    per-observer index.  It is the audited oracle: the property suite in
    ``tests/property/test_trace_backends.py`` drives both backends through
    identical scripts and asserts equal query results (the same pattern
    that pins the timer wheel to the heap scheduler).

Both backends serve ``trace.suspicion_changes`` / ``trace.rounds`` as
plain lists.  The object backend returns its live store; the columnar
backend materializes a cached view on first access and re-ingests it when
callers replace or truncate it in place (test fixtures do both) — the sim
itself never touches the views, so runs never pay for materialization.
The index/columns assume what the simulator guarantees: records are
appended in non-decreasing time order.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass

from ..ids import ProcessId

__all__ = [
    "SuspicionChange",
    "RoundRecord",
    "CrashEvent",
    "MobilityEvent",
    "RecoveryEvent",
    "MembershipEvent",
    "TraceRecorder",
]

_EMPTY: frozenset = frozenset()

#: how many changes an observer accumulates between suspect-set checkpoints
DEFAULT_CHECKPOINT_INTERVAL = 64


@dataclass(frozen=True, slots=True)
class SuspicionChange:
    """One observer's suspect list changed at ``time``."""

    time: float
    observer: ProcessId
    added: frozenset[ProcessId]
    removed: frozenset[ProcessId]
    suspects: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """One completed query round (feeds the MP/RP property oracles)."""

    querier: ProcessId
    round_id: int
    started_at: float
    quorum_at: float
    finished_at: float
    responders: tuple[ProcessId, ...]
    winners: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    time: float
    process: ProcessId


@dataclass(frozen=True, slots=True)
class MobilityEvent:
    time: float
    process: ProcessId
    kind: str  # "detach" | "attach"


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    time: float
    process: ProcessId
    incarnation: int


@dataclass(frozen=True, slots=True)
class MembershipEvent:
    time: float
    process: ProcessId
    kind: str  # "join" | "leave"


class _Interner:
    """Process-id interning table shared by a recorder's columnar stores."""

    __slots__ = ("dense", "pids")

    def __init__(self) -> None:
        self.dense: dict[ProcessId, int] = {}
        self.pids: list[ProcessId] = []

    def intern(self, pid: ProcessId) -> int:
        d = self.dense.get(pid)
        if d is None:
            d = self.dense[pid] = len(self.pids)
            self.pids.append(pid)
        return d


class _ObserverColumn:
    """One observer's slice of the columnar change log.

    ``times`` mirrors the global time column for bisection; ``added`` /
    ``removed`` hold the observer's delta tuples (the same tuple objects
    the global log orders, so per-pair scans pay no indirection).
    Checkpoints are (count, suspect-set) pairs meaning "after the first
    ``count`` changes of this observer the suspect set is exactly this";
    ``running`` is the live suspect set (dense ids) after all changes.
    """

    __slots__ = (
        "times",
        "added",
        "removed",
        "transitions",
        "trans_len",
        "ckpt_counts",
        "ckpt_sets",
        "running",
        "last_after",
        "targets",
        "memo_pos",
        "memo_state",
    )

    def __init__(self) -> None:
        self.times = array("d")
        self.added: list[tuple[int, ...]] = []
        self.removed: list[tuple[int, ...]] = []
        #: inverted per-target transition index: dense target id -> packed
        #: ``local_position << 2 | kind`` codes (kind bit 0 = added, bit 1
        #: = removed), so per-pair queries walk just that pair's history.
        #: Built lazily from the delta columns on first per-pair query and
        #: extended incrementally; ``trans_len`` is how many records it has
        #: absorbed.  The record path never pays for it.
        self.transitions: dict[int, array] = {}
        self.trans_len = 0
        self.ckpt_counts: list[int] = []
        self.ckpt_sets: list[frozenset[int]] = []
        self.running: set[int] = set()
        self.last_after: frozenset[ProcessId] = _EMPTY
        self.targets: set[int] = set()
        #: last state materialized by ``_state_dense`` — time-increasing
        #: query sweeps (the plotting pattern) resume the delta replay here
        #: instead of from the latest checkpoint, amortizing a sweep to one
        #: pass over the log
        self.memo_pos = 0
        self.memo_state: set[int] = set()


class _ColumnarChanges:
    """Delta-encoded suspicion-change store (see module doc)."""

    __slots__ = (
        "_interner",
        "_ckpt_every",
        "_times",
        "_observers",
        "_obs",
        "_view",
        "_view_len",
    )

    def __init__(self, interner: _Interner, checkpoint_interval: int) -> None:
        self._interner = interner
        self._ckpt_every = max(1, checkpoint_interval)
        self._times = array("d")
        self._observers = array("i")
        self._obs: list[_ObserverColumn] = []
        #: cached materialized list served as ``trace.suspicion_changes``;
        #: kept append-consistent so held references behave like the object
        #: backend's live list, re-ingested when its length drifts (in-place
        #: truncation) or it is replaced wholesale
        self._view: list[SuspicionChange] | None = None
        self._view_len = 0

    # -- store maintenance -------------------------------------------------
    def _col_of(self, dense: int) -> _ObserverColumn:
        obs = self._obs
        while len(obs) <= dense:
            obs.append(_ObserverColumn())
        return obs[dense]

    def _lookup(self, observer: ProcessId) -> _ObserverColumn | None:
        dense = self._interner.dense.get(observer)
        if dense is None or dense >= len(self._obs):
            return None
        col = self._obs[dense]
        return col if col.times else None

    def _sync(self) -> None:
        view = self._view
        if view is not None and len(view) != self._view_len:
            self._reingest(view)
            self._view_len = len(view)

    def _clear(self) -> None:
        self._times = array("d")
        self._observers = array("i")
        self._obs = []

    def _reingest(self, changes: list[SuspicionChange]) -> None:
        self._clear()
        for change in changes:
            self._ingest_literal(change)

    # -- recording ---------------------------------------------------------
    def record(
        self,
        time: float,
        observer: ProcessId,
        before: frozenset[ProcessId],
        after: frozenset[ProcessId],
    ) -> SuspicionChange:
        self._sync()
        intern = self._interner.intern
        dense = intern(observer)
        col = self._col_of(dense)
        added = after - before
        removed = before - after
        last = col.last_after
        consistent = before is last or before == last
        added_t = tuple(map(intern, added)) if added else ()
        removed_t = tuple(map(intern, removed)) if removed else ()
        self._times.append(time)
        self._observers.append(dense)
        col.times.append(time)
        col.added.append(added_t)
        col.removed.append(removed_t)
        running = col.running
        if consistent:
            running.difference_update(removed_t)
            running.update(added_t)
        else:
            # A test-authored jump: the delta replay would diverge from the
            # literal ``after``, so pin the state with a forced checkpoint.
            running.clear()
            running.update(map(intern, after))
        col.targets.update(added_t)
        count = len(col.times)
        if not consistent or count % self._ckpt_every == 0:
            col.ckpt_counts.append(count)
            col.ckpt_sets.append(frozenset(running))
        col.last_after = after
        change = SuspicionChange(
            time=time, observer=observer, added=added, removed=removed, suspects=after
        )
        view = self._view
        if view is not None:
            view.append(change)
            self._view_len += 1
        return change

    def _ingest_literal(self, change: SuspicionChange) -> None:
        """Re-ingest a materialized change, trusting its literal fields."""
        intern = self._interner.intern
        dense = intern(change.observer)
        col = self._col_of(dense)
        added_t = tuple(map(intern, change.added)) if change.added else ()
        removed_t = tuple(map(intern, change.removed)) if change.removed else ()
        self._times.append(change.time)
        self._observers.append(dense)
        col.times.append(change.time)
        col.added.append(added_t)
        col.removed.append(removed_t)
        running = col.running
        running.difference_update(removed_t)
        running.update(added_t)
        suspects_dense = frozenset(map(intern, change.suspects))
        consistent = running == suspects_dense
        if not consistent:
            running.clear()
            running.update(suspects_dense)
        col.targets.update(added_t)
        count = len(col.times)
        if not consistent or count % self._ckpt_every == 0:
            col.ckpt_counts.append(count)
            col.ckpt_sets.append(frozenset(running))
        col.last_after = change.suspects

    # -- view --------------------------------------------------------------
    def view(self) -> list[SuspicionChange]:
        self._sync()
        if self._view is None:
            self._view = self._materialize()
            self._view_len = len(self._view)
        return self._view

    def replace(self, value: list[SuspicionChange]) -> None:
        self._reingest(value)
        self._view = value
        self._view_len = len(value)

    def _materialize(self) -> list[SuspicionChange]:
        pids = self._interner.pids
        times = self._times
        observers = self._observers
        cols = self._obs
        states: list[set[int]] = [set() for _ in cols]
        counts = [0] * len(cols)
        ckpt_at = [0] * len(cols)
        out: list[SuspicionChange] = []
        for g in range(len(times)):
            dense = observers[g]
            col = cols[dense]
            local = counts[dense]
            added_t = col.added[local]
            removed_t = col.removed[local]
            state = states[dense]
            state.difference_update(removed_t)
            state.update(added_t)
            counts[dense] += 1
            ci = ckpt_at[dense]
            if ci < len(col.ckpt_counts) and col.ckpt_counts[ci] == counts[dense]:
                ckpt_at[dense] = ci + 1
                snap = col.ckpt_sets[ci]
                if snap != state:
                    states[dense] = state = set(snap)
            out.append(
                SuspicionChange(
                    time=times[g],
                    observer=pids[dense],
                    added=frozenset(pids[d] for d in added_t),
                    removed=frozenset(pids[d] for d in removed_t),
                    suspects=frozenset(pids[d] for d in state),
                )
            )
        return out

    # -- queries -----------------------------------------------------------
    def _state_dense(self, col: _ObserverColumn, pos: int):
        """Dense suspect set after ``pos`` changes of ``col`` (do not mutate)."""
        if pos == 0:
            return ()
        if pos == len(col.times):
            return col.running
        ckpt_counts = col.ckpt_counts
        at = bisect_right(ckpt_counts, pos) - 1
        if at >= 0:
            base = ckpt_counts[at]
            if base == pos:
                return col.ckpt_sets[at]
            snap = col.ckpt_sets[at]
        else:
            base = 0
            snap = ()
        # Every record in (base, pos] is delta-consistent: inconsistent
        # records force a checkpoint at their own position, so the latest
        # checkpoint <= pos can never precede one.  The memoized state from
        # the previous call is therefore a valid replay base whenever it
        # lies in [base, pos] — no checkpoint (hence no inconsistent record)
        # sits between it and ``pos`` — which turns a time-increasing query
        # sweep into a single amortized pass over the log.
        start = col.memo_pos
        if base <= start <= pos:
            state = col.memo_state
            if start == pos:
                return state
        else:
            state = set(snap)
            start = base
        added = col.added
        removed = col.removed
        for local in range(start, pos):
            state.difference_update(removed[local])
            state.update(added[local])
        col.memo_pos = pos
        col.memo_state = state
        return state

    def changes_of(self, observer: ProcessId) -> list[SuspicionChange]:
        self._sync()
        col = self._lookup(observer)
        if col is None:
            return []
        pids = self._interner.pids
        ckpt_counts = col.ckpt_counts
        ckpt_sets = col.ckpt_sets
        out: list[SuspicionChange] = []
        state: set[int] = set()
        ci = 0
        for local, (added_t, removed_t) in enumerate(zip(col.added, col.removed)):
            state.difference_update(removed_t)
            state.update(added_t)
            if ci < len(ckpt_counts) and ckpt_counts[ci] == local + 1:
                snap = ckpt_sets[ci]
                ci += 1
                if snap != state:
                    state = set(snap)
            out.append(
                SuspicionChange(
                    time=col.times[local],
                    observer=observer,
                    added=frozenset(pids[d] for d in added_t),
                    removed=frozenset(pids[d] for d in removed_t),
                    suspects=frozenset(pids[d] for d in state),
                )
            )
        return out

    def suspects_at(self, observer: ProcessId, time: float) -> frozenset[ProcessId]:
        self._sync()
        col = self._lookup(observer)
        if col is None:
            return _EMPTY
        pos = bisect_right(col.times, time)
        if pos == 0:
            return _EMPTY
        pids = self._interner.pids
        return frozenset(pids[d] for d in self._state_dense(col, pos))

    @staticmethod
    def _transitions(col: _ObserverColumn) -> dict[int, array]:
        """Per-target transition index, extended to cover every record.

        Codes pack ``local_position << 2 | kind``.  A literal (test-authored)
        change may list a target as both added and removed; that folds into
        one kind-3 code so replay visits the record once, exactly like the
        object backend's added/removed membership tests.  ``array('i')``
        bounds local positions at 2**29 records per observer.
        """
        trans = col.transitions
        start = col.trans_len
        count = len(col.added)
        if start != count:
            added = col.added
            removed = col.removed
            for local in range(start, count):
                added_t = added[local]
                removed_t = removed[local]
                code = local << 2
                for d in added_t:
                    arr = trans.get(d)
                    if arr is None:
                        arr = trans[d] = array("i")
                    arr.append(code | (3 if d in removed_t else 1))
                for d in removed_t:
                    if d in added_t:
                        continue
                    arr = trans.get(d)
                    if arr is None:
                        arr = trans[d] = array("i")
                    arr.append(code | 2)
            col.trans_len = count
        return trans

    def first_suspicion_time(
        self, observer: ProcessId, target: ProcessId, *, after: float = 0.0
    ) -> float | None:
        self._sync()
        col = self._lookup(observer)
        if col is None:
            return None
        td = self._interner.dense.get(target)
        if td is None:
            return None
        trans = self._transitions(col).get(td)
        if trans is None:
            return None
        times = col.times
        for code in trans:
            if code & 1 and times[code >> 2] >= after:
                return times[code >> 2]
        return None

    def permanent_suspicion_time(
        self, observer: ProcessId, target: ProcessId
    ) -> float | None:
        self._sync()
        col = self._lookup(observer)
        if col is None:
            return None
        td = self._interner.dense.get(target)
        if td is None:
            return None
        trans = self._transitions(col).get(td)
        if trans is None:
            return None
        times = col.times
        start: float | None = None
        suspected = False
        for code in trans:
            if code & 1 and not suspected:
                suspected = True
                start = times[code >> 2]
            elif code & 2 and suspected:
                suspected = False
                start = None
        return start if suspected else None

    def suspicion_intervals(
        self, observer: ProcessId, target: ProcessId, *, horizon: float
    ) -> list[tuple[float, float]]:
        self._sync()
        intervals: list[tuple[float, float]] = []
        start: float | None = None
        col = self._lookup(observer)
        td = self._interner.dense.get(target) if col is not None else None
        trans = (
            self._transitions(col).get(td)
            if col is not None and td is not None
            else None
        )
        if trans is not None:
            times = col.times
            for code in trans:
                if code & 1 and start is None:
                    start = times[code >> 2]
                elif code & 2 and start is not None:
                    intervals.append((start, times[code >> 2]))
                    start = None
        if start is not None:
            intervals.append((start, horizon))
        return intervals

    def false_suspicion_count_at(
        self, time: float, crashed: frozenset[ProcessId]
    ) -> int:
        self._sync()
        pids = self._interner.pids
        count = 0
        for col in self._obs:
            if not col.times:
                continue
            pos = bisect_right(col.times, time)
            if pos == 0:
                continue
            state = self._state_dense(col, pos)
            count += sum(1 for d in state if pids[d] not in crashed)
        return count

    def targets_of(self, observer: ProcessId) -> frozenset[ProcessId]:
        self._sync()
        col = self._lookup(observer)
        if col is None:
            return _EMPTY
        pids = self._interner.pids
        return frozenset(pids[d] for d in col.targets)


class _ColumnarRounds:
    """Round records decomposed into scalar + flattened membership columns."""

    __slots__ = (
        "_interner",
        "_querier",
        "_round_id",
        "_started",
        "_quorum",
        "_finished",
        "_resp",
        "_resp_off",
        "_win",
        "_win_off",
        "_by_querier",
        "_view",
        "_view_len",
    )

    def __init__(self, interner: _Interner) -> None:
        self._interner = interner
        self._clear()
        self._view: list[RoundRecord] | None = None
        self._view_len = 0

    def _clear(self) -> None:
        self._querier = array("i")
        self._round_id = array("q")
        self._started = array("d")
        self._quorum = array("d")
        self._finished = array("d")
        self._resp = array("i")
        self._resp_off = array("q", [0])
        self._win = array("i")
        self._win_off = array("q", [0])
        self._by_querier: dict[int, list[int]] = {}

    def _sync(self) -> None:
        view = self._view
        if view is not None and len(view) != self._view_len:
            self._clear()
            for rec in view:
                self._ingest(rec)
            self._view_len = len(view)

    def _ingest(self, rec: RoundRecord) -> None:
        intern = self._interner.intern
        dense = intern(rec.querier)
        index = len(self._round_id)
        self._querier.append(dense)
        self._round_id.append(rec.round_id)
        self._started.append(rec.started_at)
        self._quorum.append(rec.quorum_at)
        self._finished.append(rec.finished_at)
        resp = self._resp
        for pid in rec.responders:
            resp.append(intern(pid))
        self._resp_off.append(len(resp))
        win = self._win
        for pid in rec.winners:
            win.append(intern(pid))
        self._win_off.append(len(win))
        self._by_querier.setdefault(dense, []).append(index)

    def record(self, rec: RoundRecord) -> None:
        self._sync()
        self._ingest(rec)
        view = self._view
        if view is not None:
            view.append(rec)
            self._view_len += 1

    def _round(self, index: int) -> RoundRecord:
        pids = self._interner.pids
        r0, r1 = self._resp_off[index], self._resp_off[index + 1]
        w0, w1 = self._win_off[index], self._win_off[index + 1]
        return RoundRecord(
            querier=pids[self._querier[index]],
            round_id=self._round_id[index],
            started_at=self._started[index],
            quorum_at=self._quorum[index],
            finished_at=self._finished[index],
            responders=tuple(pids[d] for d in self._resp[r0:r1]),
            winners=frozenset(pids[d] for d in self._win[w0:w1]),
        )

    def view(self) -> list[RoundRecord]:
        self._sync()
        if self._view is None:
            self._view = [self._round(i) for i in range(len(self._round_id))]
            self._view_len = len(self._view)
        return self._view

    def replace(self, value: list[RoundRecord]) -> None:
        self._clear()
        for rec in value:
            self._ingest(rec)
        self._view = value
        self._view_len = len(value)

    def rounds_of(self, querier: ProcessId) -> list[RoundRecord]:
        self._sync()
        dense = self._interner.dense.get(querier)
        if dense is None:
            return []
        return [self._round(i) for i in self._by_querier.get(dense, ())]


class _Timeline:
    """One observer's changes with a parallel time array for bisection."""

    __slots__ = ("times", "changes")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.changes: list[SuspicionChange] = []


class _ObjectChanges:
    """The original list-of-objects store with a lazy per-observer index."""

    __slots__ = ("changes", "_index", "_indexed", "_indexed_source")

    def __init__(self) -> None:
        self.changes: list[SuspicionChange] = []
        #: lazy per-observer index over ``changes`` (see module doc)
        self._index: dict[ProcessId, _Timeline] = {}
        self._indexed = 0
        #: the exact list object the index was built from — holding the
        #: reference means a wholesale ``suspicion_changes`` replacement
        #: (test fixtures do this) is always caught by identity, even at
        #: equal length
        self._indexed_source: list | None = None

    def record(
        self,
        time: float,
        observer: ProcessId,
        before: frozenset[ProcessId],
        after: frozenset[ProcessId],
    ) -> SuspicionChange:
        change = SuspicionChange(
            time=time,
            observer=observer,
            added=after - before,
            removed=before - after,
            suspects=after,
        )
        self.changes.append(change)
        return change

    def view(self) -> list[SuspicionChange]:
        return self.changes

    def replace(self, value: list[SuspicionChange]) -> None:
        self.changes = value

    def _ensure_index(self) -> dict[ProcessId, _Timeline]:
        index = self._index
        changes = self.changes
        if changes is not self._indexed_source or len(changes) < self._indexed:
            # The list was replaced wholesale or truncated in place (test
            # fixtures do both): drop the stale index and rebuild.
            index.clear()
            self._indexed = 0
            self._indexed_source = changes
        count = len(changes)
        if count == self._indexed:
            return index
        for change in changes[self._indexed :]:
            timeline = index.get(change.observer)
            if timeline is None:
                timeline = index[change.observer] = _Timeline()
            timeline.times.append(change.time)
            timeline.changes.append(change)
        self._indexed = count
        return index

    def _timeline(self, observer: ProcessId) -> _Timeline | None:
        return self._ensure_index().get(observer)

    def changes_of(self, observer: ProcessId) -> list[SuspicionChange]:
        timeline = self._timeline(observer)
        return list(timeline.changes) if timeline is not None else []

    def suspects_at(self, observer: ProcessId, time: float) -> frozenset[ProcessId]:
        timeline = self._timeline(observer)
        if timeline is None:
            return frozenset()
        at = bisect_right(timeline.times, time)
        if at == 0:
            return frozenset()
        return timeline.changes[at - 1].suspects

    def first_suspicion_time(
        self, observer: ProcessId, target: ProcessId, *, after: float = 0.0
    ) -> float | None:
        timeline = self._timeline(observer)
        if timeline is None:
            return None
        changes = timeline.changes
        for at in range(bisect_left(timeline.times, after), len(changes)):
            change = changes[at]
            if target in change.added:
                return change.time
        return None

    def permanent_suspicion_time(
        self, observer: ProcessId, target: ProcessId
    ) -> float | None:
        timeline = self._timeline(observer)
        if timeline is None:
            return None
        start: float | None = None
        suspected = False
        for change in timeline.changes:
            if target in change.added and not suspected:
                suspected = True
                start = change.time
            elif target in change.removed and suspected:
                suspected = False
                start = None
        return start if suspected else None

    def suspicion_intervals(
        self, observer: ProcessId, target: ProcessId, *, horizon: float
    ) -> list[tuple[float, float]]:
        timeline = self._timeline(observer)
        intervals: list[tuple[float, float]] = []
        start: float | None = None
        if timeline is not None:
            for change in timeline.changes:
                if target in change.added and start is None:
                    start = change.time
                elif target in change.removed and start is not None:
                    intervals.append((start, change.time))
                    start = None
        if start is not None:
            intervals.append((start, horizon))
        return intervals

    def false_suspicion_count_at(
        self, time: float, crashed: frozenset[ProcessId]
    ) -> int:
        count = 0
        for timeline in self._ensure_index().values():
            at = bisect_right(timeline.times, time)
            if at == 0:
                continue
            suspects = timeline.changes[at - 1].suspects
            count += sum(1 for target in suspects if target not in crashed)
        return count

    def targets_of(self, observer: ProcessId) -> frozenset[ProcessId]:
        timeline = self._timeline(observer)
        if timeline is None:
            return _EMPTY
        targets: set[ProcessId] = set()
        for change in timeline.changes:
            targets.update(change.added)
        return frozenset(targets)


class _ObjectRounds:
    """The original round list with a lazy per-querier index."""

    __slots__ = ("rounds", "_index", "_indexed", "_indexed_source")

    def __init__(self) -> None:
        self.rounds: list[RoundRecord] = []
        self._index: dict[ProcessId, list[RoundRecord]] = {}
        self._indexed = 0
        self._indexed_source: list | None = None

    def record(self, rec: RoundRecord) -> None:
        self.rounds.append(rec)

    def view(self) -> list[RoundRecord]:
        return self.rounds

    def replace(self, value: list[RoundRecord]) -> None:
        self.rounds = value

    def _ensure_index(self) -> dict[ProcessId, list[RoundRecord]]:
        index = self._index
        rounds = self.rounds
        if rounds is not self._indexed_source or len(rounds) < self._indexed:
            index.clear()
            self._indexed = 0
            self._indexed_source = rounds
        count = len(rounds)
        if count == self._indexed:
            return index
        for record in rounds[self._indexed :]:
            index.setdefault(record.querier, []).append(record)
        self._indexed = count
        return index

    def rounds_of(self, querier: ProcessId) -> list[RoundRecord]:
        return list(self._ensure_index().get(querier, ()))


class TraceRecorder:
    """Append-only record store with indexed timeline queries.

    ``backend`` selects the change/round storage strategy ("columnar" or
    "object", see module doc); everything else — crash and mobility event
    lists, message counters, and the whole query surface — is identical
    between the two.
    """

    __slots__ = (
        "backend",
        "crashes",
        "mobility",
        "recoveries",
        "membership_events",
        "messages_by_kind",
        "messages_by_sender",
        "messages_total",
        "messages_dropped",
        "_changes",
        "_rounds",
        "_crash_index",
        "_crash_indexed",
        "_crash_source",
    )

    def __init__(
        self,
        *,
        backend: str = "columnar",
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if backend == "columnar":
            interner = _Interner()
            self._changes: _ColumnarChanges | _ObjectChanges = _ColumnarChanges(
                interner, checkpoint_interval
            )
            self._rounds: _ColumnarRounds | _ObjectRounds = _ColumnarRounds(interner)
        elif backend == "object":
            self._changes = _ObjectChanges()
            self._rounds = _ObjectRounds()
        else:
            raise ValueError(
                f"unknown trace backend {backend!r} (expected 'columnar' or 'object')"
            )
        self.backend = backend
        self.crashes: list[CrashEvent] = []
        self.mobility: list[MobilityEvent] = []
        self.recoveries: list[RecoveryEvent] = []
        self.membership_events: list[MembershipEvent] = []
        self.messages_by_kind: Counter = Counter()
        self.messages_by_sender: Counter = Counter()
        self.messages_total = 0
        self.messages_dropped = 0
        #: lazy ``process -> first crash time`` map over ``crashes``, same
        #: invalidation pattern as the change index (identity + shrink)
        self._crash_index: dict[ProcessId, float] = {}
        self._crash_indexed = 0
        self._crash_source: list = self.crashes

    # -- stored timelines --------------------------------------------------
    @property
    def suspicion_changes(self) -> list[SuspicionChange]:
        return self._changes.view()

    @suspicion_changes.setter
    def suspicion_changes(self, value: list[SuspicionChange]) -> None:
        self._changes.replace(value)

    @property
    def rounds(self) -> list[RoundRecord]:
        return self._rounds.view()

    @rounds.setter
    def rounds(self, value: list[RoundRecord]) -> None:
        self._rounds.replace(value)

    # -- recording ---------------------------------------------------------
    def record_suspicion_change(
        self,
        time: float,
        observer: ProcessId,
        before: frozenset[ProcessId],
        after: frozenset[ProcessId],
    ) -> SuspicionChange | None:
        """Record the delta between two suspect lists; no-op when equal."""
        if before == after:
            return None
        return self._changes.record(time, observer, before, after)

    def record_round(self, record: RoundRecord) -> None:
        self._rounds.record(record)

    def record_crash(self, time: float, process: ProcessId) -> None:
        self.crashes.append(CrashEvent(time, process))

    def record_mobility(self, time: float, process: ProcessId, kind: str) -> None:
        self.mobility.append(MobilityEvent(time, process, kind))

    def record_recovery(self, time: float, process: ProcessId, incarnation: int) -> None:
        self.recoveries.append(RecoveryEvent(time, process, incarnation))

    def record_membership(self, time: float, process: ProcessId, kind: str) -> None:
        self.membership_events.append(MembershipEvent(time, process, kind))

    def record_message(self, kind: str, sender: ProcessId) -> None:
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_by_sender[sender] += 1

    def record_messages(self, kind: str, sender: ProcessId, count: int) -> None:
        """Bulk form of :meth:`record_message` (one broadcast, n-1 sends)."""
        self.messages_total += count
        self.messages_by_kind[kind] += count
        self.messages_by_sender[sender] += count

    def record_drop(self) -> None:
        self.messages_dropped += 1

    def record_drops(self, count: int) -> None:
        """Bulk form of :meth:`record_drop` (one lossy broadcast, k drops)."""
        self.messages_dropped += count

    # -- timeline queries ----------------------------------------------------
    def changes_of(self, observer: ProcessId) -> list[SuspicionChange]:
        return self._changes.changes_of(observer)

    def suspects_at(self, observer: ProcessId, time: float) -> frozenset[ProcessId]:
        """The observer's suspect list at ``time`` (empty before any change)."""
        return self._changes.suspects_at(observer, time)

    def first_suspicion_time(
        self,
        observer: ProcessId,
        target: ProcessId,
        *,
        after: float = 0.0,
    ) -> float | None:
        """First time >= ``after`` at which ``observer`` suspects ``target``."""
        return self._changes.first_suspicion_time(observer, target, after=after)

    def permanent_suspicion_time(
        self, observer: ProcessId, target: ProcessId
    ) -> float | None:
        """Start of the final, never-revoked suspicion interval.

        ``None`` if the observer does not suspect ``target`` at the end of
        the trace.  This is the quantity behind *strong completeness*
        detection times.
        """
        return self._changes.permanent_suspicion_time(observer, target)

    def suspicion_intervals(
        self, observer: ProcessId, target: ProcessId, *, horizon: float
    ) -> list[tuple[float, float]]:
        """All ``[start, end)`` intervals during which ``target`` was suspected.

        The final interval is closed at ``horizon`` when still open.
        """
        return self._changes.suspicion_intervals(observer, target, horizon=horizon)

    def false_suspicion_count_at(
        self, time: float, crashed: frozenset[ProcessId]
    ) -> int:
        """Total (observer, target) pairs wrongly suspected at ``time``.

        Counts every suspicion whose target had not crashed — the quantity in
        the mobility experiment's "# of false suspicions" axis.
        """
        return self._changes.false_suspicion_count_at(time, crashed)

    def targets_of(self, observer: ProcessId) -> frozenset[ProcessId]:
        """Every process the observer ever suspected (union of ``added``).

        Lets tabulation skip (observer, target) pairs with no suspicion
        history instead of scanning the observer's timeline per target —
        the dominant cost of ``mistake_stats`` on large-n grids.
        """
        return self._changes.targets_of(observer)

    # -- round queries --------------------------------------------------------
    def rounds_of(self, querier: ProcessId) -> list[RoundRecord]:
        return self._rounds.rounds_of(querier)

    def crash_time_of(self, process: ProcessId) -> float | None:
        crashes = self.crashes
        index = self._crash_index
        if crashes is not self._crash_source or len(crashes) < self._crash_indexed:
            index.clear()
            self._crash_indexed = 0
            self._crash_source = crashes
        count = len(crashes)
        if count > self._crash_indexed:
            for event in crashes[self._crash_indexed :]:
                # setdefault keeps the *first* crash, like the old linear scan
                index.setdefault(event.process, event.time)
            self._crash_indexed = count
        return index.get(process)

    def crashed_processes(self) -> frozenset[ProcessId]:
        return frozenset(event.process for event in self.crashes)
