"""Structured run traces: the single source of truth for every metric.

Nodes and drivers append typed records; :mod:`repro.metrics` computes
detection times, mistake statistics and message loads from them.  Message
records are aggregated (counters) by default to keep memory bounded on long
runs; suspicion changes and rounds are kept in full since every experiment
needs their timelines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


from ..ids import ProcessId

__all__ = [
    "SuspicionChange",
    "RoundRecord",
    "CrashEvent",
    "MobilityEvent",
    "TraceRecorder",
]


@dataclass(frozen=True, slots=True)
class SuspicionChange:
    """One observer's suspect list changed at ``time``."""

    time: float
    observer: ProcessId
    added: frozenset[ProcessId]
    removed: frozenset[ProcessId]
    suspects: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """One completed query round (feeds the MP/RP property oracles)."""

    querier: ProcessId
    round_id: int
    started_at: float
    quorum_at: float
    finished_at: float
    responders: tuple[ProcessId, ...]
    winners: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    time: float
    process: ProcessId


@dataclass(frozen=True, slots=True)
class MobilityEvent:
    time: float
    process: ProcessId
    kind: str  # "detach" | "attach"


@dataclass
class TraceRecorder:
    """Append-only record store with timeline queries."""

    suspicion_changes: list[SuspicionChange] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)
    crashes: list[CrashEvent] = field(default_factory=list)
    mobility: list[MobilityEvent] = field(default_factory=list)
    messages_by_kind: Counter = field(default_factory=Counter)
    messages_by_sender: Counter = field(default_factory=Counter)
    messages_total: int = 0
    messages_dropped: int = 0

    # -- recording ---------------------------------------------------------
    def record_suspicion_change(
        self,
        time: float,
        observer: ProcessId,
        before: frozenset[ProcessId],
        after: frozenset[ProcessId],
    ) -> SuspicionChange | None:
        """Record the delta between two suspect lists; no-op when equal."""
        if before == after:
            return None
        change = SuspicionChange(
            time=time,
            observer=observer,
            added=after - before,
            removed=before - after,
            suspects=after,
        )
        self.suspicion_changes.append(change)
        return change

    def record_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def record_crash(self, time: float, process: ProcessId) -> None:
        self.crashes.append(CrashEvent(time, process))

    def record_mobility(self, time: float, process: ProcessId, kind: str) -> None:
        self.mobility.append(MobilityEvent(time, process, kind))

    def record_message(self, kind: str, sender: ProcessId) -> None:
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_by_sender[sender] += 1

    def record_drop(self) -> None:
        self.messages_dropped += 1

    # -- timeline queries ----------------------------------------------------
    def changes_of(self, observer: ProcessId) -> list[SuspicionChange]:
        return [c for c in self.suspicion_changes if c.observer == observer]

    def suspects_at(self, observer: ProcessId, time: float) -> frozenset[ProcessId]:
        """The observer's suspect list at ``time`` (empty before any change)."""
        result: frozenset[ProcessId] = frozenset()
        for change in self.suspicion_changes:
            if change.time > time:
                break
            if change.observer == observer:
                result = change.suspects
        return result

    def first_suspicion_time(
        self,
        observer: ProcessId,
        target: ProcessId,
        *,
        after: float = 0.0,
    ) -> float | None:
        """First time >= ``after`` at which ``observer`` suspects ``target``."""
        for change in self.suspicion_changes:
            if change.time < after or change.observer != observer:
                continue
            if target in change.added:
                return change.time
        return None

    def permanent_suspicion_time(
        self, observer: ProcessId, target: ProcessId
    ) -> float | None:
        """Start of the final, never-revoked suspicion interval.

        ``None`` if the observer does not suspect ``target`` at the end of
        the trace.  This is the quantity behind *strong completeness*
        detection times.
        """
        start: float | None = None
        suspected = False
        for change in self.suspicion_changes:
            if change.observer != observer:
                continue
            if target in change.added and not suspected:
                suspected = True
                start = change.time
            elif target in change.removed and suspected:
                suspected = False
                start = None
        return start if suspected else None

    def suspicion_intervals(
        self, observer: ProcessId, target: ProcessId, *, horizon: float
    ) -> list[tuple[float, float]]:
        """All ``[start, end)`` intervals during which ``target`` was suspected.

        The final interval is closed at ``horizon`` when still open.
        """
        intervals: list[tuple[float, float]] = []
        start: float | None = None
        for change in self.suspicion_changes:
            if change.observer != observer:
                continue
            if target in change.added and start is None:
                start = change.time
            elif target in change.removed and start is not None:
                intervals.append((start, change.time))
                start = None
        if start is not None:
            intervals.append((start, horizon))
        return intervals

    def false_suspicion_count_at(
        self, time: float, crashed: frozenset[ProcessId]
    ) -> int:
        """Total (observer, target) pairs wrongly suspected at ``time``.

        Counts every suspicion whose target had not crashed — the quantity in
        the mobility experiment's "# of false suspicions" axis.
        """
        count = 0
        per_observer: dict[ProcessId, frozenset[ProcessId]] = {}
        for change in self.suspicion_changes:
            if change.time > time:
                break
            per_observer[change.observer] = change.suspects
        for suspects in per_observer.values():
            count += sum(1 for target in suspects if target not in crashed)
        return count

    # -- round queries --------------------------------------------------------
    def rounds_of(self, querier: ProcessId) -> list[RoundRecord]:
        return [r for r in self.rounds if r.querier == querier]

    def crash_time_of(self, process: ProcessId) -> float | None:
        for event in self.crashes:
            if event.process == process:
                return event.time
        return None

    def crashed_processes(self) -> frozenset[ProcessId]:
        return frozenset(event.process for event in self.crashes)
