"""Structured run traces: the single source of truth for every metric.

Nodes and drivers append typed records; :mod:`repro.metrics` computes
detection times, mistake statistics and message loads from them.  Message
records are aggregated (counters) by default to keep memory bounded on long
runs; suspicion changes and rounds are kept in full since every experiment
needs their timelines.

Timeline queries are served from a **per-observer index** (parallel
time/change arrays per observer, binary-searched where the query allows)
built lazily on first read and extended incrementally on later reads —
appends never pay for it, and a query costs O(changes of that observer)
instead of O(all changes).  Metrics tabulation issues these queries once
per (observer, target) pair, which made the old full-trace scans quadratic
in practice.  The index assumes what the simulator guarantees: records are
appended in non-decreasing time order.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass, field


from ..ids import ProcessId

__all__ = [
    "SuspicionChange",
    "RoundRecord",
    "CrashEvent",
    "MobilityEvent",
    "TraceRecorder",
]


@dataclass(frozen=True, slots=True)
class SuspicionChange:
    """One observer's suspect list changed at ``time``."""

    time: float
    observer: ProcessId
    added: frozenset[ProcessId]
    removed: frozenset[ProcessId]
    suspects: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """One completed query round (feeds the MP/RP property oracles)."""

    querier: ProcessId
    round_id: int
    started_at: float
    quorum_at: float
    finished_at: float
    responders: tuple[ProcessId, ...]
    winners: frozenset[ProcessId]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    time: float
    process: ProcessId


@dataclass(frozen=True, slots=True)
class MobilityEvent:
    time: float
    process: ProcessId
    kind: str  # "detach" | "attach"


class _Timeline:
    """One observer's changes with a parallel time array for bisection."""

    __slots__ = ("times", "changes")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.changes: list[SuspicionChange] = []


@dataclass
class TraceRecorder:
    """Append-only record store with indexed timeline queries."""

    suspicion_changes: list[SuspicionChange] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)
    crashes: list[CrashEvent] = field(default_factory=list)
    mobility: list[MobilityEvent] = field(default_factory=list)
    messages_by_kind: Counter = field(default_factory=Counter)
    messages_by_sender: Counter = field(default_factory=Counter)
    messages_total: int = 0
    messages_dropped: int = 0
    #: lazy per-observer index over ``suspicion_changes`` (see module doc)
    _index: dict[ProcessId, _Timeline] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _indexed: int = field(default=0, init=False, repr=False, compare=False)
    #: the exact list object the index was built from — holding the
    #: reference means a wholesale ``suspicion_changes`` replacement (test
    #: fixtures do this) is always caught by identity, even at equal length
    _indexed_source: list | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: lazy per-querier index over ``rounds``
    _round_index: dict[ProcessId, list[RoundRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _rounds_indexed: int = field(default=0, init=False, repr=False, compare=False)
    _rounds_source: list | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- recording ---------------------------------------------------------
    def record_suspicion_change(
        self,
        time: float,
        observer: ProcessId,
        before: frozenset[ProcessId],
        after: frozenset[ProcessId],
    ) -> SuspicionChange | None:
        """Record the delta between two suspect lists; no-op when equal."""
        if before == after:
            return None
        change = SuspicionChange(
            time=time,
            observer=observer,
            added=after - before,
            removed=before - after,
            suspects=after,
        )
        self.suspicion_changes.append(change)
        return change

    def record_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def record_crash(self, time: float, process: ProcessId) -> None:
        self.crashes.append(CrashEvent(time, process))

    def record_mobility(self, time: float, process: ProcessId, kind: str) -> None:
        self.mobility.append(MobilityEvent(time, process, kind))

    def record_message(self, kind: str, sender: ProcessId) -> None:
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_by_sender[sender] += 1

    def record_messages(self, kind: str, sender: ProcessId, count: int) -> None:
        """Bulk form of :meth:`record_message` (one broadcast, n-1 sends)."""
        self.messages_total += count
        self.messages_by_kind[kind] += count
        self.messages_by_sender[sender] += count

    def record_drop(self) -> None:
        self.messages_dropped += 1

    # -- index maintenance --------------------------------------------------
    def _ensure_index(self) -> dict[ProcessId, _Timeline]:
        index = self._index
        changes = self.suspicion_changes
        if changes is not self._indexed_source or len(changes) < self._indexed:
            # The list was replaced wholesale or truncated in place (test
            # fixtures do both): drop the stale index and rebuild.
            index.clear()
            self._indexed = 0
            self._indexed_source = changes
        count = len(changes)
        if count == self._indexed:
            return index
        for change in changes[self._indexed :]:
            timeline = index.get(change.observer)
            if timeline is None:
                timeline = index[change.observer] = _Timeline()
            timeline.times.append(change.time)
            timeline.changes.append(change)
        self._indexed = count
        return index

    def _timeline(self, observer: ProcessId) -> _Timeline | None:
        return self._ensure_index().get(observer)

    def _ensure_round_index(self) -> dict[ProcessId, list[RoundRecord]]:
        index = self._round_index
        rounds = self.rounds
        if rounds is not self._rounds_source or len(rounds) < self._rounds_indexed:
            index.clear()
            self._rounds_indexed = 0
            self._rounds_source = rounds
        count = len(rounds)
        if count == self._rounds_indexed:
            return index
        for record in rounds[self._rounds_indexed :]:
            index.setdefault(record.querier, []).append(record)
        self._rounds_indexed = count
        return index

    # -- timeline queries ----------------------------------------------------
    def changes_of(self, observer: ProcessId) -> list[SuspicionChange]:
        timeline = self._timeline(observer)
        return list(timeline.changes) if timeline is not None else []

    def suspects_at(self, observer: ProcessId, time: float) -> frozenset[ProcessId]:
        """The observer's suspect list at ``time`` (empty before any change)."""
        timeline = self._timeline(observer)
        if timeline is None:
            return frozenset()
        at = bisect_right(timeline.times, time)
        if at == 0:
            return frozenset()
        return timeline.changes[at - 1].suspects

    def first_suspicion_time(
        self,
        observer: ProcessId,
        target: ProcessId,
        *,
        after: float = 0.0,
    ) -> float | None:
        """First time >= ``after`` at which ``observer`` suspects ``target``."""
        timeline = self._timeline(observer)
        if timeline is None:
            return None
        changes = timeline.changes
        for at in range(bisect_left(timeline.times, after), len(changes)):
            change = changes[at]
            if target in change.added:
                return change.time
        return None

    def permanent_suspicion_time(
        self, observer: ProcessId, target: ProcessId
    ) -> float | None:
        """Start of the final, never-revoked suspicion interval.

        ``None`` if the observer does not suspect ``target`` at the end of
        the trace.  This is the quantity behind *strong completeness*
        detection times.
        """
        timeline = self._timeline(observer)
        if timeline is None:
            return None
        start: float | None = None
        suspected = False
        for change in timeline.changes:
            if target in change.added and not suspected:
                suspected = True
                start = change.time
            elif target in change.removed and suspected:
                suspected = False
                start = None
        return start if suspected else None

    def suspicion_intervals(
        self, observer: ProcessId, target: ProcessId, *, horizon: float
    ) -> list[tuple[float, float]]:
        """All ``[start, end)`` intervals during which ``target`` was suspected.

        The final interval is closed at ``horizon`` when still open.
        """
        timeline = self._timeline(observer)
        intervals: list[tuple[float, float]] = []
        start: float | None = None
        if timeline is not None:
            for change in timeline.changes:
                if target in change.added and start is None:
                    start = change.time
                elif target in change.removed and start is not None:
                    intervals.append((start, change.time))
                    start = None
        if start is not None:
            intervals.append((start, horizon))
        return intervals

    def false_suspicion_count_at(
        self, time: float, crashed: frozenset[ProcessId]
    ) -> int:
        """Total (observer, target) pairs wrongly suspected at ``time``.

        Counts every suspicion whose target had not crashed — the quantity in
        the mobility experiment's "# of false suspicions" axis.
        """
        count = 0
        for timeline in self._ensure_index().values():
            at = bisect_right(timeline.times, time)
            if at == 0:
                continue
            suspects = timeline.changes[at - 1].suspects
            count += sum(1 for target in suspects if target not in crashed)
        return count

    # -- round queries --------------------------------------------------------
    def rounds_of(self, querier: ProcessId) -> list[RoundRecord]:
        return list(self._ensure_round_index().get(querier, ()))

    def crash_time_of(self, process: ProcessId) -> float | None:
        for event in self.crashes:
            if event.process == process:
                return event.time
        return None

    def crashed_processes(self) -> frozenset[ProcessId]:
        return frozenset(event.process for event in self.crashes)
