"""Declarative fault plans: crashes and mobility episodes.

A :class:`FaultPlan` is the run's *ground truth*: metrics compare detector
output against it (a suspicion of a process that never crashed is false by
definition).  Plans are applied by :class:`repro.sim.cluster.SimCluster`
which schedules the corresponding node transitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = ["CrashFault", "MobilityFault", "FaultPlan", "uniform_crashes"]


@dataclass(frozen=True, slots=True)
class CrashFault:
    """Process ``process`` crashes (permanently) at ``time``."""

    process: ProcessId
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True, slots=True)
class MobilityFault:
    """``process`` detaches at ``depart`` and reattaches at ``arrive``.

    While detached the node neither sends nor receives but keeps its state
    (the follow-up report's mobility model).  ``arrive`` may be ``None`` for
    a node that never returns — indistinguishable from a crash, as the paper
    notes.  ``new_position``, when given, relocates the node on reattachment
    (its radio edges are rewired by transmission range); otherwise the node
    returns to its old neighborhood.
    """

    process: ProcessId
    depart: float
    arrive: float | None
    new_position: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.depart < 0:
            raise ConfigurationError(f"depart time must be >= 0, got {self.depart}")
        if self.arrive is not None and self.arrive <= self.depart:
            raise ConfigurationError(
                f"arrive ({self.arrive}) must be after depart ({self.depart})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault schedule of one run."""

    crashes: tuple[CrashFault, ...] = ()
    moves: tuple[MobilityFault, ...] = ()

    def __post_init__(self) -> None:
        crashed = [fault.process for fault in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise ConfigurationError("a process can crash at most once")

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def of(
        cls,
        crashes: Iterable[CrashFault] = (),
        moves: Iterable[MobilityFault] = (),
    ) -> "FaultPlan":
        return cls(crashes=tuple(crashes), moves=tuple(moves))

    # -- ground truth queries ------------------------------------------------
    def crashed_processes(self) -> frozenset[ProcessId]:
        return frozenset(fault.process for fault in self.crashes)

    def correct_processes(self, membership: Iterable[ProcessId]) -> frozenset[ProcessId]:
        return frozenset(membership) - self.crashed_processes()

    def crash_time(self, process: ProcessId) -> float | None:
        for fault in self.crashes:
            if fault.process == process:
                return fault.time
        return None

    def crashed_by(self, time: float) -> frozenset[ProcessId]:
        return frozenset(f.process for f in self.crashes if f.time <= time)

    def validate_against(self, membership: Iterable[ProcessId], f: int) -> None:
        """Check the plan respects the model: <= f crashes, members only."""
        members = frozenset(membership)
        for fault in self.crashes:
            if fault.process not in members:
                raise ConfigurationError(f"crash of non-member {fault.process!r}")
        for fault in self.moves:
            if fault.process not in members:
                raise ConfigurationError(f"move of non-member {fault.process!r}")
        if len(self.crashes) > f:
            raise ConfigurationError(
                f"plan crashes {len(self.crashes)} processes but f={f}"
            )


def uniform_crashes(
    victims: Sequence[ProcessId],
    rng: random.Random,
    *,
    start: float,
    end: float,
) -> FaultPlan:
    """Crash each victim at an independent uniform time in ``[start, end]``.

    Mirrors the paper's evaluation: "the number of faults is equal to 5 and
    they are uniformly inserted during an experiment".
    """
    if end <= start:
        raise ConfigurationError(f"need start < end, got [{start}, {end}]")
    crashes = tuple(
        CrashFault(process=pid, time=rng.uniform(start, end)) for pid in victims
    )
    return FaultPlan(crashes=crashes)
