"""Declarative fault plans: the run's complete failure schedule.

A :class:`FaultPlan` is the run's *ground truth*: metrics compare detector
output against it (a suspicion of a process that never crashed is false by
definition).  Plans are applied by :class:`repro.sim.cluster.SimCluster`
which schedules the corresponding node/network transitions.

Fault kinds
-----------
* :class:`CrashFault` — permanent fail-stop (the paper's core model);
* :class:`MobilityFault` — detach/reattach with kept state (the follow-up
  report's disturbance-region model);
* :class:`PartitionFault` — the membership splits into sides at ``start``
  and heals at ``end``; cross-side messages are dropped by the network,
  the topology itself is untouched (healing restores exactly the
  pre-partition link set);
* :class:`RecoveryFault` — crash-*recovery*: the process crashes at
  ``crash`` and restarts at ``recover`` with an incremented incarnation,
  with either persistent or volatile detector state;
* :class:`JoinFault` / :class:`LeaveFault` — dynamic membership: a node
  starts participating only at ``time`` (join), or departs for good
  (leave);
* :class:`LossBurst` — a time-windowed per-link loss spike layered on top
  of the global ``loss_rate``.

Epoch ground truth
------------------
With recovery and dynamic membership, "correct" becomes a function of
time: a suspicion of a down-but-recovering node is *correct* until the
recovery instant.  :meth:`FaultPlan.alive_at`, :meth:`FaultPlan.down_at`,
:meth:`FaultPlan.down_intervals`, :meth:`FaultPlan.alive_intervals` and
:meth:`FaultPlan.incarnation_of` answer the per-epoch questions;
:mod:`repro.metrics.qos` scores suspicions against them
(``epoch_mistake_stats`` / ``epoch_detection_stats``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = [
    "CrashFault",
    "MobilityFault",
    "PartitionFault",
    "RecoveryFault",
    "JoinFault",
    "LeaveFault",
    "LossBurst",
    "FaultPlan",
    "uniform_crashes",
]


@dataclass(frozen=True, slots=True)
class CrashFault:
    """Process ``process`` crashes (permanently) at ``time``."""

    process: ProcessId
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True, slots=True)
class MobilityFault:
    """``process`` detaches at ``depart`` and reattaches at ``arrive``.

    While detached the node neither sends nor receives but keeps its state
    (the follow-up report's mobility model).  ``arrive`` may be ``None`` for
    a node that never returns — indistinguishable from a crash, as the paper
    notes.  ``new_position``, when given, relocates the node on reattachment
    (its radio edges are rewired by transmission range); otherwise the node
    returns to its old neighborhood.
    """

    process: ProcessId
    depart: float
    arrive: float | None
    new_position: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.depart < 0:
            raise ConfigurationError(f"depart time must be >= 0, got {self.depart}")
        if self.arrive is not None and self.arrive <= self.depart:
            raise ConfigurationError(
                f"arrive ({self.arrive}) must be after depart ({self.depart})"
            )


@dataclass(frozen=True)
class PartitionFault:
    """The membership splits into ``sides`` at ``start``; heals at ``end``.

    While active, a message whose endpoints sit in *different* sides is
    dropped — at send time and in flight.  Processes named in no side are
    unaffected (boundary nodes that can still reach everyone).  ``end``
    may be ``None`` for a partition that never heals.  The topology is not
    mutated, so healing restores exactly the pre-partition link set.
    """

    sides: tuple[tuple[ProcessId, ...], ...]
    start: float
    end: float | None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sides", tuple(tuple(side) for side in self.sides)
        )
        if len(self.sides) < 2:
            raise ConfigurationError("a partition needs at least 2 sides")
        seen: set[ProcessId] = set()
        for side in self.sides:
            if not side:
                raise ConfigurationError("partition sides must be non-empty")
            for pid in side:
                if pid in seen:
                    raise ConfigurationError(
                        f"{pid!r} appears in more than one partition side"
                    )
                seen.add(pid)
        if self.start < 0:
            raise ConfigurationError(f"partition start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"partition end ({self.end}) must be after start ({self.start})"
            )

    def side_of(self) -> dict[ProcessId, int]:
        """``process -> side index`` for every named process."""
        return {
            pid: index for index, side in enumerate(self.sides) for pid in side
        }

    def members(self) -> frozenset[ProcessId]:
        return frozenset(pid for side in self.sides for pid in side)


@dataclass(frozen=True, slots=True)
class RecoveryFault:
    """``process`` crashes at ``crash`` and restarts at ``recover``.

    The restart increments the process's *incarnation*.  With
    ``persistent=True`` the detector state survives the crash (stable
    storage); otherwise the process comes back with a freshly built
    detector (volatile state) — the cluster rebuilds and rebinds the
    driver through its factory.
    """

    process: ProcessId
    crash: float
    recover: float
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.crash < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.crash}")
        if self.recover <= self.crash:
            raise ConfigurationError(
                f"recover ({self.recover}) must be after crash ({self.crash})"
            )


@dataclass(frozen=True, slots=True)
class JoinFault:
    """``process`` joins the system at ``time`` (dynamic membership).

    Before ``time`` the node is down: never started, detached from the
    network.  When ``connect_to`` is given the node's topology edges are
    dropped at construction and rewired to ``connect_to`` at join time
    (the topology mutates at runtime); otherwise it keeps its
    construction-time edges and simply starts participating.
    """

    process: ProcessId
    time: float
    connect_to: tuple[ProcessId, ...] | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"join time must be >= 0, got {self.time}")
        if self.connect_to is not None:
            object.__setattr__(self, "connect_to", tuple(self.connect_to))


@dataclass(frozen=True, slots=True)
class LeaveFault:
    """``process`` departs for good at ``time`` (dynamic membership).

    The node stops executing, detaches, and its topology edges are
    dropped.  Ground truth counts it down from ``time`` on — suspecting a
    departed node is *correct*.
    """

    process: ProcessId
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"leave time must be >= 0, got {self.time}")


@dataclass(frozen=True, slots=True)
class LossBurst:
    """A loss spike of ``rate`` on ``links`` during ``[start, end)``.

    ``links`` is a tuple of undirected ``(a, b)`` pairs; ``None`` means
    every link.  Bursts layer on top of the network's global
    ``loss_rate`` and draw from their own RNG stream, so runs without
    bursts are bit-for-bit unchanged.
    """

    start: float
    end: float
    rate: float
    links: tuple[tuple[ProcessId, ProcessId], ...] | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"need 0 <= start < end, got [{self.start}, {self.end})"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError(f"burst rate must be in (0, 1], got {self.rate}")
        if self.links is not None:
            object.__setattr__(
                self, "links", tuple((a, b) for a, b in self.links)
            )


_INF = math.inf


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault schedule of one run."""

    crashes: tuple[CrashFault, ...] = ()
    moves: tuple[MobilityFault, ...] = ()
    partitions: tuple[PartitionFault, ...] = ()
    recoveries: tuple[RecoveryFault, ...] = ()
    joins: tuple[JoinFault, ...] = ()
    leaves: tuple[LeaveFault, ...] = ()
    bursts: tuple[LossBurst, ...] = ()

    def __post_init__(self) -> None:
        crashed = [fault.process for fault in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise ConfigurationError("a process can crash at most once")
        crash_time = {fault.process: fault.time for fault in self.crashes}
        # A mobility episode scheduled at/after the same process's crash
        # would be silently meaningless at sim time — reject it here.
        for move in self.moves:
            at = crash_time.get(move.process)
            if at is not None and move.depart >= at:
                raise ConfigurationError(
                    f"mobility of {move.process!r} departs at {move.depart} but "
                    f"the process crashes at {at}; a crashed process cannot move"
                )
        joined = [fault.process for fault in self.joins]
        if len(joined) != len(set(joined)):
            raise ConfigurationError("a process can join at most once")
        left = [fault.process for fault in self.leaves]
        if len(left) != len(set(left)):
            raise ConfigurationError("a process can leave at most once")
        join_time = {fault.process: fault.time for fault in self.joins}
        leave_time = {fault.process: fault.time for fault in self.leaves}
        for pid in set(crash_time) & set(leave_time):
            raise ConfigurationError(
                f"{pid!r} both crashes and leaves; pick one terminal fault"
            )
        # Per-process recovery windows must be disjoint and precede any
        # permanent fault; joins must precede every other fault.
        by_process: dict[ProcessId, list[RecoveryFault]] = {}
        for rec in self.recoveries:
            by_process.setdefault(rec.process, []).append(rec)
        for pid, recs in by_process.items():
            recs.sort(key=lambda rec: rec.crash)
            for first, second in zip(recs, recs[1:]):
                if second.crash < first.recover:
                    raise ConfigurationError(
                        f"overlapping recovery windows for {pid!r}: "
                        f"[{first.crash}, {first.recover}) and "
                        f"[{second.crash}, {second.recover})"
                    )
            terminal = min(
                crash_time.get(pid, _INF), leave_time.get(pid, _INF)
            )
            if recs[-1].recover > terminal:
                raise ConfigurationError(
                    f"{pid!r} recovers at {recs[-1].recover} after its terminal "
                    f"fault at {terminal}"
                )
        for pid, at in join_time.items():
            earliest = min(
                crash_time.get(pid, _INF),
                leave_time.get(pid, _INF),
                min((rec.crash for rec in by_process.get(pid, ())), default=_INF),
                min(
                    (move.depart for move in self.moves if move.process == pid),
                    default=_INF,
                ),
            )
            if earliest < at:
                raise ConfigurationError(
                    f"{pid!r} joins at {at} but has a fault scheduled at "
                    f"{earliest}; joins must precede every other fault"
                )

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def of(
        cls,
        crashes: Iterable[CrashFault] = (),
        moves: Iterable[MobilityFault] = (),
        *,
        partitions: Iterable[PartitionFault] = (),
        recoveries: Iterable[RecoveryFault] = (),
        joins: Iterable[JoinFault] = (),
        leaves: Iterable[LeaveFault] = (),
        bursts: Iterable[LossBurst] = (),
    ) -> "FaultPlan":
        return cls(
            crashes=tuple(crashes),
            moves=tuple(moves),
            partitions=tuple(partitions),
            recoveries=tuple(recoveries),
            joins=tuple(joins),
            leaves=tuple(leaves),
            bursts=tuple(bursts),
        )

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """This plan plus every fault of ``other`` (re-validated)."""
        return FaultPlan(
            crashes=self.crashes + other.crashes,
            moves=self.moves + other.moves,
            partitions=self.partitions + other.partitions,
            recoveries=self.recoveries + other.recoveries,
            joins=self.joins + other.joins,
            leaves=self.leaves + other.leaves,
            bursts=self.bursts + other.bursts,
        )

    # -- ground truth queries ------------------------------------------------
    def crashed_processes(self) -> frozenset[ProcessId]:
        return frozenset(fault.process for fault in self.crashes)

    def correct_processes(self, membership: Iterable[ProcessId]) -> frozenset[ProcessId]:
        """Processes that are up at the end of an unbounded run.

        Crashed and departed processes are not correct; recovered and
        joined processes are.
        """
        departed = frozenset(fault.process for fault in self.leaves)
        return frozenset(membership) - self.crashed_processes() - departed

    def crash_time(self, process: ProcessId) -> float | None:
        for fault in self.crashes:
            if fault.process == process:
                return fault.time
        return None

    def crashed_by(self, time: float) -> frozenset[ProcessId]:
        return frozenset(f.process for f in self.crashes if f.time <= time)

    # -- epoch-aware ground truth ---------------------------------------------
    def down_intervals(
        self, process: ProcessId, *, horizon: float = _INF
    ) -> tuple[tuple[float, float], ...]:
        """Sorted, disjoint ``[start, end)`` intervals during which the
        process is down, clipped to ``[0, horizon]``.

        Mobility does *not* make a process down: a detached node is alive
        (suspecting it is a mistake, exactly as the mobility experiment
        scores it).
        """
        raw: list[tuple[float, float]] = []
        for join in self.joins:
            if join.process == process and join.time > 0:
                raw.append((0.0, join.time))
        for rec in self.recoveries:
            if rec.process == process:
                raw.append((rec.crash, rec.recover))
        for crash in self.crashes:
            if crash.process == process:
                raw.append((crash.time, _INF))
        for leave in self.leaves:
            if leave.process == process:
                raw.append((leave.time, _INF))
        raw.sort()
        merged: list[tuple[float, float]] = []
        for start, end in raw:
            end = min(end, horizon)
            start = min(start, horizon)
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            elif end > start or end == start == horizon:
                merged.append((start, end))
        return tuple((s, e) for s, e in merged if e > s)

    def alive_intervals(
        self, process: ProcessId, *, horizon: float
    ) -> tuple[tuple[float, float], ...]:
        """Complement of :meth:`down_intervals` within ``[0, horizon]``."""
        intervals: list[tuple[float, float]] = []
        cursor = 0.0
        for start, end in self.down_intervals(process, horizon=horizon):
            if start > cursor:
                intervals.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < horizon:
            intervals.append((cursor, horizon))
        return tuple(intervals)

    def alive_at(self, process: ProcessId, time: float) -> bool:
        """Is the process up at ``time``?  Down intervals are ``[start, end)``:
        a process is down at its crash instant and up at its recovery
        instant."""
        for start, end in self.down_intervals(process):
            if start <= time < end:
                return False
        return True

    def incarnation_of(self, process: ProcessId, time: float) -> int:
        """How many times the process has restarted by ``time`` (0 initially)."""
        return sum(
            1
            for rec in self.recoveries
            if rec.process == process and rec.recover <= time
        )

    def down_at(self, time: float) -> frozenset[ProcessId]:
        """Every process that is down at ``time``.

        With only :class:`CrashFault` faults this equals
        :meth:`crashed_by` — the pre-epoch notion the legacy experiments
        score against.
        """
        processes = set(fault.process for fault in self.crashes)
        processes.update(rec.process for rec in self.recoveries)
        processes.update(join.process for join in self.joins)
        processes.update(leave.process for leave in self.leaves)
        return frozenset(
            pid for pid in processes if not self.alive_at(pid, time)
        )

    def correct_at(
        self, time: float, membership: Iterable[ProcessId]
    ) -> frozenset[ProcessId]:
        """The members that are up at ``time`` (the per-epoch correct set)."""
        return frozenset(
            pid for pid in membership if self.alive_at(pid, time)
        )

    def epoch_times(self) -> tuple[float, ...]:
        """Every instant at which the ground truth changes, sorted."""
        times: set[float] = set()
        for crash in self.crashes:
            times.add(crash.time)
        for rec in self.recoveries:
            times.add(rec.crash)
            times.add(rec.recover)
        for join in self.joins:
            times.add(join.time)
        for leave in self.leaves:
            times.add(leave.time)
        for part in self.partitions:
            times.add(part.start)
            if part.end is not None:
                times.add(part.end)
        return tuple(sorted(times))

    def validate_against(self, membership: Iterable[ProcessId], f: int) -> None:
        """Check the plan respects the model: <= f crashes, members only."""
        members = frozenset(membership)

        def member(pid: ProcessId, what: str) -> None:
            if pid not in members:
                raise ConfigurationError(f"{what} of non-member {pid!r}")

        for fault in self.crashes:
            member(fault.process, "crash")
        for fault in self.moves:
            member(fault.process, "move")
        for fault in self.recoveries:
            member(fault.process, "recovery")
        for fault in self.joins:
            member(fault.process, "join")
        for fault in self.leaves:
            member(fault.process, "leave")
        for fault in self.partitions:
            for pid in fault.members():
                member(pid, "partition")
        if len(self.crashes) > f:
            raise ConfigurationError(
                f"plan crashes {len(self.crashes)} processes but f={f}"
            )


def uniform_crashes(
    victims: Sequence[ProcessId],
    rng: random.Random,
    *,
    start: float,
    end: float,
) -> FaultPlan:
    """Crash each victim at an independent uniform time in ``[start, end]``.

    Mirrors the paper's evaluation: "the number of faults is equal to 5 and
    they are uniformly inserted during an experiment".
    """
    if end <= start:
        raise ConfigurationError(f"need start < end, got [{start}, {end}]")
    crashes = tuple(
        CrashFault(process=pid, time=rng.uniform(start, end)) for pid in victims
    )
    return FaultPlan(crashes=crashes)
