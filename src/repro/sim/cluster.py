"""One-call assembly of a whole simulated system.

``SimCluster`` wires scheduler, network, processes, drivers, fault plan and
trace together from a handful of declarative parameters, so experiments and
tests read as *what* is simulated rather than *how*.  Driver factories pick
the detector under test: :func:`time_free_driver_factory` for the paper's
algorithm (optionally over partial/unknown topologies via
``repro.partial``), :func:`timed_driver_factory` /
:func:`heartbeat_driver_factory` for the timer-based baselines.
"""

from __future__ import annotations

import math
from typing import Callable

from ..core.omega import OmegaElector
from ..core.protocol import DetectorConfig, TimeFreeDetector
from ..errors import ConfigurationError, SimulationError
from ..ids import ProcessId
from .engine import Scheduler
from .faults import FaultPlan, JoinFault, LeaveFault, MobilityFault, RecoveryFault
from .latency import ConstantLatency, LatencyModel
from .network import SimNetwork
from .node import QueryPacing, QueryResponseDriver, SimProcess, TimedDriver, TimedProtocolCore
from .rng import RngStreams
from .topology import Topology, full_mesh
from .trace import TraceRecorder

__all__ = [
    "SimCluster",
    "DriverFactory",
    "time_free_driver_factory",
    "timed_driver_factory",
    "heartbeat_driver_factory",
]

DriverFactory = Callable[[SimProcess, "SimCluster"], object]


class SimCluster:
    """A complete simulated deployment of one failure-detector protocol."""

    def __init__(
        self,
        *,
        topology: Topology | None = None,
        n: int | None = None,
        driver_factory: DriverFactory,
        latency: LatencyModel | None = None,
        seed: int = 1,
        fault_plan: FaultPlan | None = None,
        loss_rate: float = 0.0,
        start_stagger: float = 0.0,
        latency_backend: str = "python",
        trace_backend: str = "columnar",
    ) -> None:
        if (topology is None) == (n is None):
            raise ConfigurationError("provide exactly one of `topology` or `n`")
        if topology is None:
            topology = full_mesh(range(1, int(n) + 1))
        self.topology = topology
        self.membership = frozenset(topology.ids())
        self.scheduler = Scheduler()
        self.rng = RngStreams(seed)
        self.trace = TraceRecorder(backend=trace_backend)
        self.latency = latency if latency is not None else ConstantLatency(0.001)
        if latency_backend == "numpy":
            # Opt-in numpy-vectorized broadcast delay sampling.  The random
            # stream differs from the python backend (see
            # repro.sim.latency_numpy), so reproduction scenarios keep the
            # default; falls back to pure python when numpy is unavailable
            # or the model has no vectorized form.
            from .latency_numpy import vectorize_latency

            self.latency = vectorize_latency(self.latency)
        elif latency_backend != "python":
            raise ConfigurationError(
                f"unknown latency_backend {latency_backend!r}; "
                "choose 'python' or 'numpy'"
            )
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.none()
        self.network = SimNetwork(
            self.scheduler,
            topology,
            self.latency,
            self.rng,
            loss_rate=loss_rate,
            trace=self.trace,
            bursts=self.fault_plan.bursts,
        )
        self._driver_factory = driver_factory
        self.processes: dict[ProcessId, SimProcess] = {}
        self.drivers: dict[ProcessId, object] = {}
        for pid in sorted(self.membership, key=repr):
            process = SimProcess(pid, self.scheduler, self.network, self.trace)
            driver = driver_factory(process, self)
            process.bind(driver)
            self.processes[pid] = process
            self.drivers[pid] = driver
        # Late joiners sit out until their JoinFault fires: down, detached,
        # and (when the plan rewires them) edge-less until join time.
        for join in self.fault_plan.joins:
            process = self._process_or_raise(join.process)
            process.alive = False
            process.attached = False
            self.network.detach(join.process)
            if join.connect_to is not None:
                self.topology.isolate(join.process)
        self._schedule_start(start_stagger)
        self._schedule_faults()

    # ------------------------------------------------------------------
    def _schedule_start(self, stagger: float) -> None:
        if stagger < 0:
            raise ConfigurationError(f"start_stagger must be >= 0, got {stagger}")
        start_rng = self.rng.stream("cluster", "start")
        # Late joiners are started by their JoinFault, not here.  Legacy
        # plans have no joins, so the per-pid draw sequence is unchanged.
        joiners = frozenset(join.process for join in self.fault_plan.joins)
        self.scheduler.schedule_batch(
            (
                (start_rng.uniform(0.0, stagger) if stagger > 0 else 0.0,
                 self.processes[pid].start,
                 ())
                for pid in sorted(self.membership, key=repr)
                if pid not in joiners
            )
        )

    def _schedule_faults(self) -> None:
        events: list[tuple[float, Callable[..., None], tuple]] = []
        for crash in self.fault_plan.crashes:
            process = self._process_or_raise(crash.process)
            events.append((crash.time, process.crash, ()))
        for move in self.fault_plan.moves:
            process = self._process_or_raise(move.process)
            events.append((move.depart, process.detach, ()))
            if move.arrive is not None:
                events.append((move.arrive, self._reattach, (move,)))
        for recovery in self.fault_plan.recoveries:
            process = self._process_or_raise(recovery.process)
            events.append((recovery.crash, process.crash, ()))
            events.append((recovery.recover, self._recover, (recovery,)))
        for join in self.fault_plan.joins:
            self._process_or_raise(join.process)
            events.append((join.time, self._join, (join,)))
        for leave in self.fault_plan.leaves:
            self._process_or_raise(leave.process)
            events.append((leave.time, self._leave, (leave,)))
        for partition in self.fault_plan.partitions:
            for pid in partition.members():
                self._process_or_raise(pid)
            events.append((partition.start, self.network.begin_partition, (partition,)))
            if partition.end is not None:
                events.append((partition.end, self.network.end_partition, (partition,)))
        self.scheduler.schedule_batch(events)

    def _recover(self, fault: RecoveryFault) -> None:
        process = self.processes[fault.process]
        if fault.persistent:
            # Stable storage: the driver (and its detector state) survives.
            process.recover(fresh=False)
        else:
            # Volatile state: rebuild the detector from scratch and rebind.
            driver = self._driver_factory(process, self)
            process.rebind_driver(driver)
            self.drivers[fault.process] = driver
            process.recover(fresh=True)

    def _join(self, fault: JoinFault) -> None:
        if fault.connect_to is not None:
            self.topology.connect(fault.process, fault.connect_to)
        self.processes[fault.process].join()

    def _leave(self, fault: LeaveFault) -> None:
        self.processes[fault.process].leave()
        self.topology.isolate(fault.process)

    def _reattach(self, move: MobilityFault) -> None:
        if move.new_position is not None:
            self._relocate(move.process, move.new_position)
        self.processes[move.process].attach()

    def _relocate(self, pid: ProcessId, position: tuple[float, float]) -> None:
        """Rewire radio edges for a node that reappears somewhere else."""
        if pid not in self.topology.positions:
            raise SimulationError(
                f"cannot relocate {pid!r}: topology has no positions"
            )
        reach = self._transmission_range()
        self.topology.isolate(pid)
        self.topology.positions[pid] = position
        for other in sorted(self.topology.ids(), key=repr):
            if other == pid:
                continue
            if _dist(position, self.topology.positions[other]) <= reach:
                self.topology.add_edge(pid, other)

    def _transmission_range(self) -> float:
        """Infer the radio range from existing geometric edges."""
        longest = 0.0
        for a, b in self.topology.edges():
            if a in self.topology.positions and b in self.topology.positions:
                longest = max(
                    longest, _dist(self.topology.positions[a], self.topology.positions[b])
                )
        if longest == 0.0:
            raise SimulationError("topology has no geometric edges to infer range from")
        return longest

    def _process_or_raise(self, pid: ProcessId) -> SimProcess:
        try:
            return self.processes[pid]
        except KeyError:
            raise ConfigurationError(f"fault plan names unknown process {pid!r}") from None

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance virtual time to ``until``."""
        self.scheduler.run(until=until)

    def suspects_of(self, pid: ProcessId) -> frozenset[ProcessId]:
        return self.drivers[pid].suspects()  # type: ignore[attr-defined]

    def correct_processes(self) -> frozenset[ProcessId]:
        return self.fault_plan.correct_processes(self.membership)

    def electors(self) -> dict[ProcessId, OmegaElector]:
        """The Omega electors, for clusters built with ``with_omega=True``."""
        result = {}
        for pid, driver in self.drivers.items():
            elector = getattr(driver, "elector", None)
            if elector is not None:
                result[pid] = elector
        return result


# ---------------------------------------------------------------------------
# driver factories
# ---------------------------------------------------------------------------


def time_free_driver_factory(
    f: int,
    pacing: QueryPacing = QueryPacing(),
    *,
    with_omega: bool = False,
) -> DriverFactory:
    """Drive the paper's time-free detector on every node (full membership)."""

    def factory(process: SimProcess, cluster: SimCluster) -> QueryResponseDriver:
        config = DetectorConfig.for_process(process.pid, cluster.membership, f)
        elector = None
        if with_omega:
            elector = OmegaElector(config)
            detector = TimeFreeDetector(
                config,
                extra_provider=elector.payload,
                extra_consumer=elector.consume,
            )
        else:
            detector = TimeFreeDetector(config)
        return QueryResponseDriver(process, detector, pacing, elector=elector)

    return factory


def timed_driver_factory(
    make_core: Callable[[ProcessId, frozenset[ProcessId]], TimedProtocolCore],
) -> DriverFactory:
    """Drive an arbitrary timer-based core built by ``make_core(pid, members)``."""

    def factory(process: SimProcess, cluster: SimCluster) -> TimedDriver:
        core = make_core(process.pid, cluster.membership)
        return TimedDriver(process, core)

    return factory


def heartbeat_driver_factory(
    *,
    period: float = 1.0,
    timeout: float = 2.0,
) -> DriverFactory:
    """Drive the all-to-all heartbeat baseline (Δ = period, Θ = timeout)."""
    from ..baselines.heartbeat import HeartbeatDetector

    def make_core(pid: ProcessId, members: frozenset[ProcessId]) -> TimedProtocolCore:
        return HeartbeatDetector(pid, members, period=period, timeout=timeout)

    return timed_driver_factory(make_core)


def _dist(p: tuple[float, float], q: tuple[float, float]) -> float:
    return math.hypot(p[0] - q[0], p[1] - q[1])
