"""The simulated packet network.

Semantics follow the paper's model:

* processes communicate only with their topology neighbors (1-hop range);
  a broadcast by ``p_i`` is heard by every correct, attached process in
  ``range_i``;
* links are reliable by default — they do not create, alter or lose
  messages (an optional loss rate exists for robustness experiments and is
  off in every reproduction scenario);
* per-message delays come from a :class:`~repro.sim.latency.LatencyModel`,
  so there is **no bound** on transfer time — the network is asynchronous;
* a *detached* (moving) node neither sends nor receives: messages to or
  from it are dropped, exactly like the follow-up report's "disturbance
  region" model of mobility.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from ..ids import ProcessId
from ..core.messages import message_kind_of
from .engine import Scheduler
from .faults import LossBurst, PartitionFault
from .latency import LatencyModel
from .rng import RngStreams
from .topology import Topology
from .trace import TraceRecorder

__all__ = ["SimNetwork"]

DeliveryHandler = Callable[[ProcessId, object], None]


class SimNetwork:
    """Routes messages between registered simulated processes."""

    def __init__(
        self,
        scheduler: Scheduler,
        topology: Topology,
        latency: LatencyModel,
        rng: RngStreams,
        *,
        loss_rate: float = 0.0,
        trace: TraceRecorder | None = None,
        bursts: tuple[LossBurst, ...] = (),
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.scheduler = scheduler
        self.topology = topology
        self.latency = latency
        self.trace = trace if trace is not None else TraceRecorder()
        self._delay_rng = rng.stream("network", "delay")
        self._loss_rng = rng.stream("network", "loss")
        self._loss_rate = loss_rate
        #: zero-loss fast path: reproduction scenarios never draw from the
        #: loss RNG, so the per-message branch reduces to one attribute read.
        self._lossy = loss_rate > 0.0
        self._handlers: dict[ProcessId, DeliveryHandler] = {}
        self._detached: set[ProcessId] = set()
        #: `_handlers` minus detached pids: one dict probe decides both
        #: "is attached" and "who receives" on the delivery hot path.
        self._live_handlers: dict[ProcessId, DeliveryHandler] = {}
        #: active partitions, as ``(fault, process -> side index)`` pairs;
        #: empty in every legacy scenario so the hot-path cost is one truth
        #: test on the list.
        self._partitions: list[tuple[PartitionFault, dict[ProcessId, int]]] = []
        #: loss-burst episodes with precomputed undirected link sets; draws
        #: come from their own RNG stream, so burst-free runs never touch it.
        self._bursts: tuple[
            tuple[LossBurst, frozenset[frozenset[ProcessId]] | None], ...
        ] = tuple(
            (
                burst,
                None
                if burst.links is None
                else frozenset(frozenset(pair) for pair in burst.links),
            )
            for burst in bursts
        )
        self._burst_rng = rng.stream("network", "burst") if self._bursts else None

    # ------------------------------------------------------------------
    def register(self, pid: ProcessId, handler: DeliveryHandler) -> None:
        """Attach a process's delivery callback (``handler(src, message)``)."""
        if pid not in self.topology:
            raise SimulationError(f"{pid!r} is not a node of the topology")
        if pid in self._handlers:
            raise SimulationError(f"{pid!r} is already registered")
        self._handlers[pid] = handler
        if pid not in self._detached:
            self._live_handlers[pid] = handler

    def rebind(self, pid: ProcessId, handler: DeliveryHandler) -> None:
        """Replace an already-registered delivery callback.

        :meth:`SimProcess.bind` uses this to route deliveries straight
        into the driver, skipping the process's relay frame on the
        per-message hot path.
        """
        if pid not in self._handlers:
            raise SimulationError(f"{pid!r} is not registered")
        self._handlers[pid] = handler
        if pid not in self._detached:
            self._live_handlers[pid] = handler

    # -- mobility ---------------------------------------------------------
    def detach(self, pid: ProcessId) -> None:
        """The node leaves the network (mobility): no send, no receive."""
        self._detached.add(pid)
        self._live_handlers.pop(pid, None)

    def attach(self, pid: ProcessId) -> None:
        self._detached.discard(pid)
        handler = self._handlers.get(pid)
        if handler is not None:
            self._live_handlers[pid] = handler

    def is_attached(self, pid: ProcessId) -> bool:
        return pid not in self._detached

    # -- partitions -------------------------------------------------------
    def begin_partition(self, fault: PartitionFault) -> None:
        """The partition becomes active: cross-side traffic starts dying."""
        self._partitions.append((fault, fault.side_of()))

    def end_partition(self, fault: PartitionFault) -> None:
        """The partition heals; the pre-partition link set is restored
        verbatim (the topology was never mutated)."""
        self._partitions = [
            entry for entry in self._partitions if entry[0] is not fault
        ]

    def is_separated(self, src: ProcessId, dst: ProcessId) -> bool:
        """Is traffic between the two endpoints cut by an active partition?"""
        for _fault, side_of in self._partitions:
            src_side = side_of.get(src)
            if src_side is None:
                continue
            dst_side = side_of.get(dst)
            if dst_side is not None and dst_side != src_side:
                return True
        return False

    # -- loss bursts ------------------------------------------------------
    def _burst_drop(self, src: ProcessId, dst: ProcessId) -> bool:
        """Draw against every burst covering this link right now."""
        now = self.scheduler.now
        for burst, links in self._bursts:
            if not burst.start <= now < burst.end:
                continue
            if links is not None and frozenset((src, dst)) not in links:
                continue
            if self._burst_rng.random() < burst.rate:
                return True
        return False

    # -- transmission -------------------------------------------------------
    def send(self, src: ProcessId, dst: ProcessId, message: object) -> bool:
        """Point-to-point transmission to a 1-hop neighbor.

        Returns whether the message was put on the wire (a detached sender,
        a non-neighbor destination, or random loss all drop it).
        """
        if src in self._detached:
            self.trace.record_drop()
            return False
        if dst != src and not self.topology.has_edge(src, dst):
            # The destination moved out of range since we learned about it.
            self.trace.record_drop()
            return False
        if self._partitions and self.is_separated(src, dst):
            self.trace.record_drop()
            return False
        if self._lossy and self._loss_rng.random() < self._loss_rate:
            self.trace.record_drop()
            return False
        if self._bursts and self._burst_drop(src, dst):
            self.trace.record_drop()
            return False
        # Flattened hot path: sample + schedule without the _sample_delay /
        # schedule_after wrappers — one response send per delivered query
        # makes this the second-busiest site after broadcast.
        scheduler = self.scheduler
        delay = self.latency.sample_at(self._delay_rng, src, dst, scheduler.now)
        if delay <= 0:
            raise SimulationError(
                f"latency model produced non-positive delay {delay} for {src!r}->{dst!r}"
            )
        # Fire-and-forget: deliveries are never cancelled, so skip the
        # EventHandle allocation entirely.
        scheduler.schedule_fire(scheduler.now + delay, self._deliver, src, dst, message)
        self.trace.record_message(message_kind_of(message), src)
        return True

    def broadcast(self, src: ProcessId, message: object) -> int:
        """Transmit to every current 1-hop neighbor; returns messages sent.

        This is the simulator's hottest site (n-1 deliveries per
        query/heartbeat), so every per-destination cost is batched: the
        neighbor order comes pre-sorted from the topology's cache, all
        delays are drawn with one :meth:`LatencyModel.sample_many` call,
        deliveries enter the scheduler as one batch, and trace counters are
        bumped once per broadcast.  Loss and delay are still sampled per
        destination, in neighbor order, so traces are bit-for-bit identical
        to per-destination :meth:`send` calls.
        """
        if src in self._detached:
            self.trace.record_drop()
            return 0
        dsts: tuple[ProcessId, ...] | list[ProcessId]
        dsts = self.topology.sorted_neighbors(src)
        if self._partitions:
            # Partition check precedes the loss draw, mirroring `send`, so
            # the loss stream sees exactly the destinations a per-target
            # send loop would have drawn for.
            reachable = [dst for dst in dsts if not self.is_separated(src, dst)]
            if len(reachable) != len(dsts):
                self.trace.record_drops(len(dsts) - len(reachable))
            dsts = reachable
        if self._lossy:
            rate = self._loss_rate
            loss = self._loss_rng.random
            kept: list[ProcessId] = []
            for dst in dsts:
                if loss() >= rate:
                    kept.append(dst)
            if len(kept) != len(dsts):
                self.trace.record_drops(len(dsts) - len(kept))
            dsts = kept
        if self._bursts:
            survived = [dst for dst in dsts if not self._burst_drop(src, dst)]
            if len(survived) != len(dsts):
                self.trace.record_drops(len(dsts) - len(survived))
            dsts = survived
        if not dsts:
            return 0
        now = self.scheduler.now
        delays = self.latency.sample_many(self._delay_rng, src, dsts, now)
        deliver = self._deliver
        deliveries: list[tuple[float, Callable[..., None], tuple]] = []
        for dst, delay in zip(dsts, delays):
            if delay <= 0:
                raise SimulationError(
                    f"latency model produced non-positive delay {delay} "
                    f"for {src!r}->{dst!r}"
                )
            deliveries.append((now + delay, deliver, (src, dst, message)))
        self.scheduler.schedule_batch(deliveries, handles=False)
        self.trace.record_messages(message_kind_of(message), src, len(deliveries))
        return len(deliveries)

    # ------------------------------------------------------------------
    def _deliver(self, src: ProcessId, dst: ProcessId, message: object) -> None:
        # One probe of the attached-and-registered dict replaces the
        # separate detached check and handler lookup.
        handler = self._live_handlers.get(dst)
        if handler is None:
            self.trace.record_drop()
            return
        if self._partitions and self.is_separated(src, dst):
            # The partition started while this message was in flight.
            self.trace.record_drop()
            return
        handler(src, message)
