"""Network topologies, including the f-covering MANET construction.

The DSN 2003 core model is a fully connected network (:func:`full_mesh`).
The partial-connectivity extension needs *f-covering* networks — graphs that
remain connected after removing any ``f`` nodes, i.e. ``(f + 1)``-connected
(Menger's theorem).  :func:`manet_topology` reproduces the construction used
by the follow-up report's evaluation: seed a clique of ``f + 2`` nodes placed
on a circle of radius ``r / 2``, then repeatedly drop a uniformly random
point in the region and keep it only if it has at least ``f + 1`` neighbors
within transmission range ``r``.

:class:`Topology` is deliberately a tiny mutable adjacency structure —
mobility support needs edges to come and go during a run.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Mapping

from ..errors import ConfigurationError, TopologyError
from ..ids import ProcessId

__all__ = [
    "Topology",
    "full_mesh",
    "ring",
    "grid",
    "star",
    "random_geometric",
    "manet_topology",
]


class Topology:
    """An undirected graph over process ids with optional node positions."""

    def __init__(
        self,
        ids: Iterable[ProcessId],
        edges: Iterable[tuple[ProcessId, ProcessId]] = (),
        positions: Mapping[ProcessId, tuple[float, float]] | None = None,
    ) -> None:
        self._adjacency: dict[ProcessId, set[ProcessId]] = {pid: set() for pid in ids}
        #: per-node caches of the neighborhood, rebuilt lazily after edge
        #: mutations (the network's hot path reads them once per message).
        self._frozen_cache: dict[ProcessId, frozenset[ProcessId]] = {}
        self._sorted_cache: dict[ProcessId, tuple[ProcessId, ...]] = {}
        if not self._adjacency:
            raise ConfigurationError("topology must contain at least one node")
        for a, b in edges:
            self.add_edge(a, b)
        self.positions: dict[ProcessId, tuple[float, float]] = dict(positions or {})

    # -- structure ---------------------------------------------------------
    def ids(self) -> frozenset[ProcessId]:
        return frozenset(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._adjacency

    def neighbors(self, pid: ProcessId) -> frozenset[ProcessId]:
        cached = self._frozen_cache.get(pid)
        if cached is not None:
            return cached
        try:
            nbrs = self._adjacency[pid]
        except KeyError:
            raise TopologyError(f"unknown node {pid!r}") from None
        cached = self._frozen_cache[pid] = frozenset(nbrs)
        return cached

    def sorted_neighbors(self, pid: ProcessId) -> tuple[ProcessId, ...]:
        """The neighborhood in canonical (repr) order, cached.

        Broadcast iterates destinations in this order so traces are
        deterministic; caching the sort removes an O(d log d) cost from
        every broadcast.  Invalidation happens on edge mutation.
        """
        cached = self._sorted_cache.get(pid)
        if cached is not None:
            return cached
        try:
            nbrs = self._adjacency[pid]
        except KeyError:
            raise TopologyError(f"unknown node {pid!r}") from None
        cached = self._sorted_cache[pid] = tuple(sorted(nbrs, key=repr))
        return cached

    def _invalidate(self, a: ProcessId, b: ProcessId) -> None:
        for cache in (self._frozen_cache, self._sorted_cache):
            cache.pop(a, None)
            cache.pop(b, None)

    def degree(self, pid: ProcessId) -> int:
        return len(self._adjacency[pid])

    def has_edge(self, a: ProcessId, b: ProcessId) -> bool:
        return b in self._adjacency.get(a, ())

    def edges(self) -> Iterator[tuple[ProcessId, ProcessId]]:
        seen = set()
        for a, nbrs in self._adjacency.items():
            for b in nbrs:
                if (b, a) not in seen:
                    seen.add((a, b))
                    yield (a, b)

    def add_edge(self, a: ProcessId, b: ProcessId) -> None:
        if a == b:
            raise TopologyError(f"self-loop on {a!r}")
        if a not in self._adjacency or b not in self._adjacency:
            missing = a if a not in self._adjacency else b
            raise TopologyError(f"unknown node {missing!r}")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._invalidate(a, b)

    def remove_edge(self, a: ProcessId, b: ProcessId) -> None:
        self._adjacency.get(a, set()).discard(b)
        self._adjacency.get(b, set()).discard(a)
        self._invalidate(a, b)

    def isolate(self, pid: ProcessId) -> frozenset[ProcessId]:
        """Drop all edges of ``pid`` (mobility: the node left its range).

        Returns the former neighborhood so it can be restored later.
        """
        former = self.neighbors(pid)
        for other in former:
            self.remove_edge(pid, other)
        return former

    def connect(self, pid: ProcessId, neighbors: Iterable[ProcessId]) -> None:
        """Attach ``pid`` to each of ``neighbors`` (mobility: reconnection)."""
        for other in neighbors:
            self.add_edge(pid, other)

    def copy(self) -> "Topology":
        return Topology(self.ids(), self.edges(), self.positions)

    # -- metrics used by the paper ------------------------------------------
    def range_density(self) -> int:
        """``d`` = size of the smallest *range* = min degree + 1 (Def. 2)."""
        return min(len(nbrs) for nbrs in self._adjacency.values()) + 1

    def is_connected(self) -> bool:
        start = next(iter(self._adjacency))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nbr in self._adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return len(seen) == len(self._adjacency)

    def node_connectivity(self) -> int:
        """Vertex connectivity (Menger); an f-covering net needs ``>= f + 1``."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        graph.add_edges_from(self.edges())
        if len(graph) == 1:
            return 0
        return nx.node_connectivity(graph)

    def is_f_covering(self, f: int) -> bool:
        """Definition 3: the network is f-covering iff (f+1)-connected."""
        if f < 0:
            raise ConfigurationError(f"f must be >= 0, got {f}")
        return self.node_connectivity() >= f + 1


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------


def full_mesh(ids: Iterable[ProcessId]) -> Topology:
    """Every pair connected — the DSN 2003 core model."""
    id_list = list(ids)
    edges = [
        (id_list[i], id_list[j])
        for i in range(len(id_list))
        for j in range(i + 1, len(id_list))
    ]
    return Topology(id_list, edges)


def ring(ids: Iterable[ProcessId]) -> Topology:
    id_list = list(ids)
    if len(id_list) < 3:
        raise ConfigurationError("a ring needs at least 3 nodes")
    edges = [(id_list[i], id_list[(i + 1) % len(id_list)]) for i in range(len(id_list))]
    return Topology(id_list, edges)


def grid(width: int, height: int) -> Topology:
    """A ``width x height`` grid with integer ids ``1..width*height``."""
    if width < 1 or height < 1:
        raise ConfigurationError("grid dimensions must be >= 1")
    ids = list(range(1, width * height + 1))
    edges = []
    for row in range(height):
        for col in range(width):
            node = row * width + col + 1
            if col + 1 < width:
                edges.append((node, node + 1))
            if row + 1 < height:
                edges.append((node, node + width))
    return Topology(ids, edges)


def star(ids: Iterable[ProcessId]) -> Topology:
    """First id is the hub."""
    id_list = list(ids)
    if len(id_list) < 2:
        raise ConfigurationError("a star needs at least 2 nodes")
    hub = id_list[0]
    return Topology(id_list, [(hub, other) for other in id_list[1:]])


def random_geometric(
    ids: Iterable[ProcessId],
    rng: random.Random,
    *,
    area: float,
    transmission_range: float,
) -> Topology:
    """Uniformly random placement in an ``area x area`` square; edges by range.

    No connectivity guarantee — use :func:`manet_topology` when the
    f-covering property is required.
    """
    id_list = list(ids)
    positions = {
        pid: (rng.uniform(0, area), rng.uniform(0, area)) for pid in id_list
    }
    topo = Topology(id_list, positions=positions)
    _connect_by_range(topo, transmission_range)
    return topo


def manet_topology(
    n: int,
    f: int,
    rng: random.Random,
    *,
    area: float = 700.0,
    transmission_range: float = 100.0,
    min_neighbors: int | None = None,
    max_attempts_per_node: int = 10_000,
) -> Topology:
    """The follow-up report's gradual f-covering construction (Section 6).

    Seed a clique of ``max(f + 2, min_neighbors + 1)`` nodes on a circle of
    radius ``r / 2`` in the middle of the region, then add nodes at
    uniformly random positions, accepting a placement only if it yields at
    least ``min_neighbors`` neighbors (default ``f + 1``, the paper's
    acceptance rule).  Raising ``min_neighbors`` is how the density
    experiment (E1) sweeps the range density ``d``.  Positions are kept so
    mobility can move nodes geometrically.
    """
    if min_neighbors is None:
        min_neighbors = f + 1
    if min_neighbors < f + 1:
        raise ConfigurationError(
            f"min_neighbors must be >= f + 1, got {min_neighbors} with f={f}"
        )
    seed_count = max(f + 2, min_neighbors + 1)
    if n < seed_count:
        raise ConfigurationError(f"need n >= {seed_count}, got n={n}")
    ids = list(range(1, n + 1))
    center = area / 2.0
    positions: dict[int, tuple[float, float]] = {}
    for index in range(seed_count):
        angle = 2.0 * math.pi * index / seed_count
        positions[ids[index]] = (
            center + (transmission_range / 2.0) * math.cos(angle),
            center + (transmission_range / 2.0) * math.sin(angle),
        )
    for pid in ids[seed_count:]:
        for _ in range(max_attempts_per_node):
            candidate = (rng.uniform(0, area), rng.uniform(0, area))
            neighbors = sum(
                1
                for pos in positions.values()
                if _dist(candidate, pos) <= transmission_range
            )
            if neighbors >= min_neighbors:
                positions[pid] = candidate
                break
        else:
            raise TopologyError(
                f"could not place node {pid} with {min_neighbors} neighbors after "
                f"{max_attempts_per_node} attempts (area too large for n?)"
            )
    topo = Topology(ids, positions=positions)
    _connect_by_range(topo, transmission_range)
    return topo


def _connect_by_range(topo: Topology, transmission_range: float) -> None:
    id_list = sorted(topo.ids(), key=repr)
    for i, a in enumerate(id_list):
        for b in id_list[i + 1 :]:
            if _dist(topo.positions[a], topo.positions[b]) <= transmission_range:
                topo.add_edge(a, b)


def _dist(p: tuple[float, float], q: tuple[float, float]) -> float:
    return math.hypot(p[0] - q[0], p[1] - q[1])
