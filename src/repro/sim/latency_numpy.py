"""Optional numpy-vectorized latency sampling (opt-in, guarded import).

The pure-python :meth:`~repro.sim.latency.LatencyModel.sample_many`
implementations already batch the *dispatch* cost of broadcast delay
sampling, but each delay still pays one ``random.Random`` transcendental
call.  This module vectorizes the draws themselves with numpy — one
``Generator`` call per broadcast — for the stationary model families.

Two deliberate differences from the pure-python path:

* **The random stream changes.**  Exact-RNG parity with ``random.Random``
  is impossible for numpy's generators, so a vectorized model produces a
  *different* (equally valid) delay sequence.  That is why the backend is
  strictly opt-in (``SimCluster(latency_backend="numpy")``) and why every
  reproduction scenario stays on the default python backend — artifact
  byte-identity is preserved by never changing the default.  Parity with
  the python samplers is asserted *in distribution* by the test suite.
* **Determinism is still guaranteed** for a fixed cluster seed: the numpy
  ``Generator`` is seeded once per ``random.Random`` stream from that
  stream's own bits, so two runs with the same seed draw identical delays.

``numpy`` is imported under a guard; when it is missing (or a model has no
vectorized form — e.g. :class:`~repro.sim.latency.PairwiseLatency`),
:func:`vectorize_latency` returns the model unchanged, falling back to the
pure-python sampler.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..ids import ProcessId
from .latency import (
    BiasedLatency,
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    ParetoLatency,
    RegimeShiftLatency,
    UniformLatency,
)

try:  # guarded: numpy is optional, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via numpy_available()
    _np = None

__all__ = ["numpy_available", "vectorize_latency", "NumpyLatency"]

#: draw(generator, src, dsts, now) -> ndarray of len(dsts) delays
_DrawFn = Callable[[object, ProcessId, Sequence[ProcessId], float], "object"]


def numpy_available() -> bool:
    """Whether the vectorized backend can actually run."""
    return _np is not None


def _compile(model: LatencyModel) -> _DrawFn | None:
    """Build a vectorized draw function for ``model``, or ``None``.

    Returns ``None`` for models with no closed-form vectorization (the
    caller then falls back to the pure-python sampler).
    """
    if isinstance(model, ConstantLatency):
        delay, jitter = model.delay, model.jitter
        if jitter == 0.0:
            # The pure-python path is already allocation-minimal here, but
            # the wrapper must stay self-consistent once opted in.
            return lambda gen, src, dsts, now: _np.full(len(dsts), delay)
        return lambda gen, src, dsts, now: delay + gen.random(len(dsts)) * jitter
    if isinstance(model, UniformLatency):
        low, high = model.low, model.high
        return lambda gen, src, dsts, now: gen.uniform(low, high, len(dsts))
    if isinstance(model, ExponentialLatency):
        floor, mean = model.floor, model.mean() - model.floor
        return lambda gen, src, dsts, now: floor + gen.exponential(mean, len(dsts))
    if isinstance(model, LogNormalLatency):
        floor, mu, sigma = model.floor, model._mu, model.sigma
        return lambda gen, src, dsts, now: floor + gen.lognormal(mu, sigma, len(dsts))
    if isinstance(model, ParetoLatency):
        # numpy's pareto() is the Lomax form: 1 + X matches
        # random.paretovariate's classical Pareto with x_m = 1.
        scale, shape = model.scale, model.shape
        return lambda gen, src, dsts, now: scale * (1.0 + gen.pareto(shape, len(dsts)))
    if isinstance(model, RegimeShiftLatency):
        inner = _compile(model.base)
        if inner is None:
            return None
        shift_at, factor = model.shift_at, model.factor

        def draw(gen, src, dsts, now):
            delays = inner(gen, src, dsts, now)
            if now >= shift_at:
                return delays * factor
            return delays

        return draw
    if isinstance(model, BiasedLatency):
        inner = _compile(model.base)
        if inner is None:
            return None
        favored, speedup, bidirectional = model.favored, model.speedup, model.bidirectional

        def draw(gen, src, dsts, now):
            delays = inner(gen, src, dsts, now)
            if src in favored:
                return delays / speedup
            if bidirectional:
                mask = _np.fromiter(
                    (dst in favored for dst in dsts), dtype=bool, count=len(dsts)
                )
                if mask.any():
                    delays = _np.asarray(delays, dtype=float).copy()
                    delays[mask] /= speedup
            return delays

        return draw
    return None


class NumpyLatency(LatencyModel):
    """Wraps a latency model with a numpy-vectorized :meth:`sample_many`.

    Single-message entry points (:meth:`sample` / :meth:`sample_at`)
    delegate to the wrapped model unchanged — point-to-point sends are not
    the hot path and keeping them on the python RNG costs nothing.

    One numpy ``Generator`` is maintained per ``random.Random`` stream the
    network hands in, seeded from that stream's next 64 bits on first use:
    deterministic per cluster seed, independent across streams.
    """

    def __init__(self, base: LatencyModel, draw: _DrawFn) -> None:
        self.base = base
        self._draw = draw
        self._generators: dict[random.Random, object] = {}

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return self.base.sample(rng, src, dst)

    def sample_at(
        self, rng: random.Random, src: ProcessId, dst: ProcessId, now: float
    ) -> float:
        return self.base.sample_at(rng, src, dst, now)

    def sample_many(
        self,
        rng: random.Random,
        src: ProcessId,
        dsts: Sequence[ProcessId],
        now: float,
    ) -> list[float]:
        gen = self._generators.get(rng)
        if gen is None:
            gen = _np.random.default_rng(rng.getrandbits(64))
            self._generators[rng] = gen
        return self._draw(gen, src, dsts, now).tolist()

    def mean(self) -> float:
        return self.base.mean()

    def __repr__(self) -> str:
        return f"NumpyLatency({self.base!r})"


def vectorize_latency(model: LatencyModel) -> LatencyModel:
    """Return a numpy-vectorized wrapper for ``model``, or ``model`` itself.

    The pure-python fallback (numpy missing, or no vectorized form for this
    model family) is silent by design: opting in must never break a run,
    only speed it up where it can.
    """
    if _np is None or isinstance(model, NumpyLatency):
        return model
    draw = _compile(model)
    if draw is None:
        return model
    return NumpyLatency(model, draw)
