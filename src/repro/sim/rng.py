"""Named, independently-seeded random streams.

A simulation draws randomness for many purposes (per-link delays, loss,
topology placement, fault schedules).  Giving each purpose its own stream,
derived deterministically from the master seed and a stable name, means that
adding a new consumer of randomness does not perturb the draws of existing
ones — runs stay comparable across library versions and configuration
tweaks.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngStreams"]


class RngStreams:
    """A family of :class:`random.Random` streams under one master seed.

    Repeated calls with the same name return the *same* stream object, so
    state advances continuously within a run.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, *name_parts: object) -> random.Random:
        """The stream for ``name_parts`` (joined with ``/``), created lazily."""
        name = "/".join(repr(part) for part in name_parts)
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream
