"""Simulated processes and the drivers that host detector cores on them.

A :class:`SimProcess` is one node: it owns liveness/attachment flags and
relays delivered messages to its *driver*.  Drivers adapt a sans-I/O protocol
core to the simulator:

* :class:`QueryResponseDriver` runs the time-free detector's task T1 loop —
  broadcast a query, wait for the ``n - f`` quorum, keep collecting extras
  for a *grace* period (the paper's Δ pacing between lines 7 and 8), close
  the round, repeat.  No failure decision ever involves a timer: the grace
  delay only paces queries and widens ``rec_from``; detection remains purely
  message-pattern based.
* :class:`TimedDriver` hosts timer-based baseline detectors (heartbeat,
  gossip, phi-accrual), which genuinely need scheduled wake-ups.

Both drivers snapshot the suspect list around every hand-off and record the
deltas in the trace, and both notify registered listeners — the consensus
layer subscribes to suspicion changes, the Omega elector to round outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from ..core.effects import Broadcast, Effect, SendTo
from ..core.messages import Query, Response
from ..core.omega import OmegaElector
from ..core.protocol import QueryRoundOutcome
from ..errors import ConfigurationError, SimulationError
from ..ids import ProcessId
from .engine import EventHandle, Scheduler
from .network import SimNetwork
from .trace import RoundRecord, TraceRecorder

__all__ = [
    "QueryPacing",
    "SimProcess",
    "QueryResponseDriver",
    "TimedDriver",
    "TimedProtocolCore",
    "QueryDetectorCore",
]

SuspicionListener = Callable[[ProcessId, frozenset], None]
RoundListener = Callable[[ProcessId, QueryRoundOutcome], None]


@dataclass(frozen=True)
class QueryPacing:
    """Pacing policy for query rounds (Section 6 of the paper).

    ``grace`` — Δ: how long to keep collecting responses after the quorum
    is reached before closing the round (extra responses shrink false
    suspicions; correctness is unaffected).  ``idle`` — delay between a
    round's end and the next query broadcast.

    ``retry`` — optional *lossy-channel* extension: if the quorum has not
    been reached this long after the query broadcast, rebroadcast the same
    query (same round id; duplicate responses are deduplicated and record
    merging is idempotent).  The paper's model assumes reliable channels
    and never needs this; with message loss a single lost query could
    stall the round forever.  Note what the timer is and is not: it only
    re-transmits — no suspicion is ever raised from its expiry, so
    failure detection itself remains time-free.
    """

    grace: float = 1.0
    idle: float = 0.0
    retry: float | None = None

    def __post_init__(self) -> None:
        if self.grace < 0 or self.idle < 0:
            raise ConfigurationError(f"pacing delays must be >= 0: {self}")
        if self.retry is not None and self.retry <= 0:
            raise ConfigurationError(f"retry must be > 0 when set: {self}")


@runtime_checkable
class QueryDetectorCore(Protocol):
    """What :class:`QueryResponseDriver` needs from a detector core.

    Satisfied by :class:`repro.core.protocol.TimeFreeDetector` and
    :class:`repro.partial.protocol.PartialTimeFreeDetector`.

    Contract: :meth:`on_response` never changes the suspect set — merging
    happens in :meth:`on_query` (batched) and :meth:`finish_round` only.
    Drivers and the runtime service exploit this to skip suspicion-change
    detection on the response hot path.
    """

    @property
    def process_id(self) -> ProcessId: ...

    @property
    def collecting(self) -> bool: ...

    def start_round(self) -> Broadcast: ...

    def on_query(self, query: Query) -> SendTo | None: ...

    def on_response(self, response: Response) -> bool: ...

    def quorum_reached(self) -> bool: ...

    def finish_round(self) -> QueryRoundOutcome: ...

    def abort_round(self) -> None: ...

    def suspects(self) -> frozenset: ...


@runtime_checkable
class TimedProtocolCore(Protocol):
    """What :class:`TimedDriver` needs from a timer-based detector core."""

    @property
    def process_id(self) -> ProcessId: ...

    def start(self, now: float) -> list[Effect]: ...

    def on_message(self, now: float, sender: ProcessId, message: object) -> list[Effect]: ...

    def on_wakeup(self, now: float) -> list[Effect]: ...

    def next_wakeup(self) -> float | None: ...

    def suspects(self) -> frozenset: ...


class SimProcess:
    """One simulated node: liveness, attachment, message relay."""

    def __init__(
        self,
        pid: ProcessId,
        scheduler: Scheduler,
        network: SimNetwork,
        trace: TraceRecorder,
    ) -> None:
        self.pid = pid
        self.scheduler = scheduler
        self.network = network
        self.trace = trace
        self.alive = True
        self.attached = True
        #: how many times this process has restarted (crash-recovery)
        self.incarnation = 0
        self.driver: _Driver | None = None
        network.register(pid, self.deliver)

    def bind(self, driver: "_Driver") -> None:
        if self.driver is not None:
            raise SimulationError(f"{self.pid!r} already has a driver")
        self.driver = driver
        # Route deliveries straight into the driver, skipping the
        # :meth:`deliver` relay frame.  Its liveness checks are subsumed
        # by the network's detached-set check: :meth:`crash` and
        # :meth:`detach` both detach this pid, so a dead or moving node
        # never reaches the handler.
        self.network.rebind(self.pid, driver.on_message)

    def rebind_driver(self, driver: "_Driver") -> None:
        """Replace the bound driver (volatile-state crash-recovery)."""
        if self.driver is None:
            raise SimulationError(f"{self.pid!r} has no driver to replace")
        self.driver = driver
        self.network.rebind(self.pid, driver.on_message)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.driver is None:
            raise SimulationError(f"{self.pid!r} has no driver bound")
        self.driver.on_start()

    def crash(self) -> None:
        """Permanent fail-stop."""
        if not self.alive:
            return
        self.alive = False
        self.trace.record_crash(self.scheduler.now, self.pid)
        self.network.detach(self.pid)
        if self.driver is not None:
            self.driver.on_crash()

    def detach(self) -> None:
        """Mobility: leave the network, keep state, stop executing."""
        if not self.alive or not self.attached:
            return
        self.attached = False
        self.network.detach(self.pid)
        self.trace.record_mobility(self.scheduler.now, self.pid, "detach")
        if self.driver is not None:
            self.driver.on_detach()

    def attach(self) -> None:
        """Mobility: reconnect and resume executing."""
        if not self.alive or self.attached:
            return
        self.attached = True
        self.network.attach(self.pid)
        self.trace.record_mobility(self.scheduler.now, self.pid, "attach")
        if self.driver is not None:
            self.driver.on_attach()

    def recover(self, *, fresh: bool = False) -> None:
        """Crash-recovery restart with an incremented incarnation.

        ``fresh`` marks a volatile-state restart: the (newly rebound)
        driver is started from scratch via ``on_start``.  Otherwise the
        surviving driver resumes through ``on_recover`` (persistent
        state, stable storage).
        """
        if self.alive:
            return
        self.alive = True
        self.attached = True
        self.incarnation += 1
        self.network.attach(self.pid)
        self.trace.record_recovery(self.scheduler.now, self.pid, self.incarnation)
        if self.driver is not None:
            if fresh:
                self.driver.on_start()
            else:
                self.driver.on_recover()

    def join(self) -> None:
        """Dynamic membership: start participating (the node was down)."""
        if self.alive and self.attached:
            return
        self.alive = True
        self.attached = True
        self.network.attach(self.pid)
        self.trace.record_membership(self.scheduler.now, self.pid, "join")
        if self.driver is not None:
            self.driver.on_start()

    def leave(self) -> None:
        """Dynamic membership: depart for good."""
        if not self.alive:
            return
        self.alive = False
        self.network.detach(self.pid)
        self.trace.record_membership(self.scheduler.now, self.pid, "leave")
        if self.driver is not None:
            self.driver.on_leave()

    # -- I/O ------------------------------------------------------------------
    def deliver(self, src: ProcessId, message: object) -> None:
        if not self.alive or not self.attached or self.driver is None:
            return
        self.driver.on_message(src, message)

    def execute(self, effects: list[Effect] | Effect | None) -> None:
        """Put driver/core effects on the wire."""
        if effects is None or not self.alive:
            return
        if not isinstance(effects, list):
            effects = [effects]
        for effect in effects:
            if isinstance(effect, Broadcast):
                self.network.broadcast(self.pid, effect.message)
            elif isinstance(effect, SendTo):
                self.network.send(self.pid, effect.destination, effect.message)
            else:
                raise SimulationError(f"unknown effect {effect!r}")


class _Driver(Protocol):
    def on_start(self) -> None: ...

    def on_message(self, src: ProcessId, message: object) -> None: ...

    def on_crash(self) -> None: ...

    def on_detach(self) -> None: ...

    def on_attach(self) -> None: ...

    def on_recover(self) -> None: ...

    def on_leave(self) -> None: ...

    def suspects(self) -> frozenset: ...


class QueryResponseDriver:
    """Task T1's infinite loop, executed on the simulator."""

    def __init__(
        self,
        process: SimProcess,
        detector: QueryDetectorCore,
        pacing: QueryPacing = QueryPacing(),
        *,
        elector: OmegaElector | None = None,
    ) -> None:
        self.process = process
        self.detector = detector
        self.pacing = pacing
        self.elector = elector
        self.suspicion_listeners: list[SuspicionListener] = []
        self.round_listeners: list[RoundListener] = []
        self._round_started_at: float | None = None
        self._quorum_at: float | None = None
        self._close_handle: EventHandle | None = None
        self._next_round_handle: EventHandle | None = None
        self._retry_handle: EventHandle | None = None
        self._current_broadcast: Broadcast | None = None
        self.retries_sent = 0

    # -- lifecycle ------------------------------------------------------------
    def on_start(self) -> None:
        self._begin_round()

    def on_crash(self) -> None:
        self._cancel_pending()

    def on_detach(self) -> None:
        # A moving node stops executing: drop the in-flight round entirely.
        self._cancel_pending()
        if self.detector.collecting:
            self.detector.abort_round()

    def on_attach(self) -> None:
        self._begin_round()

    def on_recover(self) -> None:
        # Persistent-state restart: whatever round was in flight at the
        # crash is stale — abort it and open a fresh one.
        self._cancel_pending()
        if self.detector.collecting:
            self.detector.abort_round()
        self._begin_round()

    def on_leave(self) -> None:
        self._cancel_pending()
        if self.detector.collecting:
            self.detector.abort_round()

    def suspects(self) -> frozenset:
        return self.detector.suspects()

    # -- round machinery --------------------------------------------------------
    def _begin_round(self) -> None:
        self._next_round_handle = None
        if not self.process.alive or not self.process.attached:
            return
        broadcast = self.detector.start_round()
        self._round_started_at = self.process.scheduler.now
        self._quorum_at = None
        self._current_broadcast = broadcast
        self.process.execute(broadcast)
        self._arm_retry()
        # Degenerate quorums (n - f == 1) are satisfied by the process's own
        # response alone.
        self._maybe_arm_close()

    def on_message(self, src: ProcessId, message: object) -> None:
        kind = type(message)
        if kind is Query or isinstance(message, Query):
            # Only queries can move the suspicion state (the batched T2
            # merge runs inside on_query), so the before/after snapshot is
            # taken on this branch alone.
            detector = self.detector
            process = self.process
            before = detector.suspects()
            response = detector.on_query(message)
            if response is not None and process.alive:
                # on_query returns a SendTo (or None); route it straight to
                # the network instead of through the generic effect walk.
                process.network.send(
                    process.pid, response.destination, response.message
                )
            self._note_suspicion_change(before)
        elif kind is Response or isinstance(message, Response):
            # Response accounting never touches the suspect set (a
            # QueryDetectorCore guarantee) — no snapshots, no comparison.
            self.detector.on_response(message)
            self._maybe_arm_close()
        else:
            raise SimulationError(
                f"{self.process.pid!r} received foreign message {message!r}"
            )

    def _maybe_arm_close(self) -> None:
        # `_quorum_at` first: after the quorum is armed, every further
        # response lands here and must leave on one attribute check.
        if (
            self._quorum_at is None
            and self.detector.collecting
            and self.detector.quorum_reached()
        ):
            self._quorum_at = self.process.scheduler.now
            self._cancel_retry()
            self._close_handle = self.process.scheduler.schedule_after(
                self.pacing.grace, self._close_round
            )

    # -- lossy-channel retransmission (extension; see QueryPacing.retry) ----
    def _arm_retry(self) -> None:
        if self.pacing.retry is None:
            return
        self._retry_handle = self.process.scheduler.schedule_after(
            self.pacing.retry, self._retry_query
        )

    def _retry_query(self) -> None:
        self._retry_handle = None
        if not self.process.alive or not self.process.attached:
            return
        if not self.detector.collecting or self.detector.quorum_reached():
            return
        if self._current_broadcast is not None:
            self.retries_sent += 1
            self.process.execute(self._current_broadcast)
        self._arm_retry()

    def _cancel_retry(self) -> None:
        if self._retry_handle is not None:
            self._retry_handle.cancel()
            self._retry_handle = None

    def _close_round(self) -> None:
        self._close_handle = None
        if not self.process.alive or not self.process.attached:
            return
        if not self.detector.collecting:
            return
        before = self.detector.suspects()
        outcome = self.detector.finish_round()
        now = self.process.scheduler.now
        self.process.trace.record_round(
            RoundRecord(
                querier=self.process.pid,
                round_id=outcome.round_id,
                started_at=self._round_started_at if self._round_started_at is not None else now,
                quorum_at=self._quorum_at if self._quorum_at is not None else now,
                finished_at=now,
                responders=outcome.responders,
                winners=outcome.winners,
            )
        )
        if self.elector is not None:
            self.elector.observe_round(outcome)
        for listener in self.round_listeners:
            listener(self.process.pid, outcome)
        self._note_suspicion_change(before)
        self._next_round_handle = self.process.scheduler.schedule_after(
            self.pacing.idle, self._begin_round
        )

    # -- bookkeeping ---------------------------------------------------------
    def _note_suspicion_change(self, before: frozenset) -> None:
        after = self.detector.suspects()
        # The suspect set is served from a mutation-invalidated cache, so an
        # unchanged state hands back the *identical* frozenset — the common
        # case is one pointer comparison, no set equality walk.
        if before is after or before == after:
            return
        self.process.trace.record_suspicion_change(
            self.process.scheduler.now, self.process.pid, before, after
        )
        for listener in self.suspicion_listeners:
            listener(self.process.pid, after)

    def _cancel_pending(self) -> None:
        for handle in (self._close_handle, self._next_round_handle, self._retry_handle):
            if handle is not None:
                handle.cancel()
        self._close_handle = None
        self._next_round_handle = None
        self._retry_handle = None


class TimedDriver:
    """Hosts timer-based baseline detectors (heartbeat family)."""

    def __init__(self, process: SimProcess, core: TimedProtocolCore) -> None:
        self.process = process
        self.core = core
        self.suspicion_listeners: list[SuspicionListener] = []
        self._timer: EventHandle | None = None

    def on_start(self) -> None:
        effects = self.core.start(self.process.scheduler.now)
        self.process.execute(effects)
        self._rearm()

    def on_crash(self) -> None:
        self._cancel_timer()

    def on_detach(self) -> None:
        # While moving the node stops executing; the timer is silenced.
        self._cancel_timer()

    def on_attach(self) -> None:
        effects = self.core.on_wakeup(self.process.scheduler.now)
        self.process.execute(effects)
        self._rearm()

    def on_recover(self) -> None:
        # Persistent-state restart: resume the timer loop where it stood.
        self.on_attach()

    def on_leave(self) -> None:
        self._cancel_timer()

    def suspects(self) -> frozenset:
        return self.core.suspects()

    def on_message(self, src: ProcessId, message: object) -> None:
        before = self.core.suspects()
        effects = self.core.on_message(self.process.scheduler.now, src, message)
        self.process.execute(effects)
        self._rearm()
        self._note_suspicion_change(before)

    def _wakeup(self) -> None:
        self._timer = None
        if not self.process.alive or not self.process.attached:
            return
        before = self.core.suspects()
        effects = self.core.on_wakeup(self.process.scheduler.now)
        self.process.execute(effects)
        self._rearm()
        self._note_suspicion_change(before)

    def _rearm(self) -> None:
        deadline = self.core.next_wakeup()
        if deadline is None:
            self._cancel_timer()
            return
        target = max(deadline, self.process.scheduler.now)
        if self._timer is not None and not self._timer.cancelled:
            if self._timer.time <= target:
                return  # existing timer fires first; it will re-arm
            self._timer.cancel()
        self._timer = self.process.scheduler.schedule_at(target, self._wakeup)

    def _note_suspicion_change(self, before: frozenset) -> None:
        after = self.core.suspects()
        if before == after:
            return
        self.process.trace.record_suspicion_change(
            self.process.scheduler.now, self.process.pid, before, after
        )
        for listener in self.suspicion_listeners:
            listener(self.process.pid, after)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
