"""Discrete-event scheduler with deterministic ordering.

Events are ordered by ``(time, sequence-number)``: two events scheduled for
the same instant fire in scheduling order, which — together with seeded
randomness (:mod:`repro.sim.rng`) — makes whole simulations reproducible
bit-for-bit.

Performance notes (large grids run thousands of these loops):

* heap entries are ``(time, seq, event)`` tuples: ``seq`` is unique, so
  ``heapq``'s C-level tuple comparison always resolves on the numeric
  prefix and the Python-level ``_Event`` rich comparison is never invoked
  (it previously dominated large-run profiles at ~400k calls per 46k
  events);
* cancellation is *lazy*: a cancelled event stays in the heap and is
  discarded when it surfaces, so ``cancel`` is O(1) — with a compaction
  pass that rebuilds the heap once cancelled entries dominate, so
  cancel-heavy workloads (timer re-arming) stay O(log live) instead of
  O(log total);
* :meth:`Scheduler.schedule_batch` inserts many events with a single
  ``heapify`` when that is cheaper than repeated pushes (broadcast
  deliveries, cluster start-up staggering).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from ..errors import SimulationError

__all__ = ["EventHandle", "Scheduler"]

#: event states — pending in the heap, already fired, or cancelled (still
#: in the heap awaiting lazy removal).
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

#: compaction policy: rebuild the heap when at least this many cancelled
#: events are buried in it *and* they outnumber the live ones.
_COMPACT_MIN_DEAD = 64


class _Event:
    __slots__ = ("time", "seq", "callback", "args", "state")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None], args: tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.state = _PENDING

    def __lt__(self, other: "_Event") -> bool:
        # Events never reach heapq comparisons anymore (the heap orders on
        # its (time, seq) tuple prefix); kept for explicit sorts/debugging.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _FIRED: "fired", _CANCELLED: "cancelled"}[self.state]
        return f"_Event(time={self.time!r}, seq={self.seq}, {state})"


class EventHandle:
    """Cancellation handle for a scheduled event."""

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _Event, scheduler: "Scheduler"):
        self._event = event
        self._scheduler = scheduler

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.state == _CANCELLED

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._event.state == _FIRED

    def cancel(self) -> bool:
        """Cancel the event; returns False if it already fired/was cancelled."""
        if self._event.state != _PENDING:
            return False
        self._event.state = _CANCELLED
        self._scheduler._note_cancelled()
        return True


class Scheduler:
    """A virtual-time event loop.

    The loop never advances past events: ``now`` is exactly the timestamp of
    the event being processed.  Callbacks may schedule further events at or
    after ``now`` (scheduling in the past raises
    :class:`~repro.errors.SimulationError`).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, _Event]] = []
        self._seq = 0
        self._events_processed = 0
        self._stopped = False
        self._live = 0  # pending events in the heap
        self._dead = 0  # cancelled events awaiting lazy removal

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return self._live

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event = _Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return EventHandle(event, self)

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_batch(
        self, items: Iterable[tuple[float, Callable[..., None], tuple[Any, ...]]]
    ) -> list[EventHandle]:
        """Schedule many ``(time, callback, args)`` events at once.

        Sequence numbers are assigned in item order, so the fire order of
        same-timestamp events is exactly as if each had been passed to
        :meth:`schedule_at` in turn — batching changes cost, never order.
        A single ``heapify`` replaces k pushes when the batch is large
        relative to the heap (O(n + k) vs. O(k log n)).
        """
        entries: list[tuple[float, int, _Event]] = []
        now = self._now
        seq = self._seq
        for time, callback, args in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule an event at {time} before current time {now}"
                )
            entries.append((time, seq, _Event(time, seq, callback, args)))
            seq += 1
        if not entries:
            return []
        self._seq = seq
        self._live += len(entries)
        heap = self._heap
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return [EventHandle(entry[2], self) for entry in entries]

    def stop(self) -> None:
        """Make the running :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._live -= 1
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop buried cancelled events and rebuild the heap.

        ``(time, seq)`` totally orders events, so heapify after filtering
        reproduces the exact pop order the full heap would have produced.
        """
        self._heap = [entry for entry in self._heap if entry[2].state == _PENDING]
        heapq.heapify(self._heap)
        self._dead = 0

    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in order; returns the number processed.

        ``until`` — stop once the next event would fire strictly after this
        time (and advance ``now`` to ``until``).  ``max_events`` — safety
        valve against runaway event loops.  With neither bound the loop runs
        until the queue drains.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until}, already at {self._now}")
        self._stopped = False
        processed = 0
        truncated = False  # stopped early with events <= `until` still pending
        heap = self._heap
        pop = heapq.heappop
        while heap and not self._stopped:
            if max_events is not None and processed >= max_events:
                truncated = True
                break
            event = heap[0][2]
            if event.state == _CANCELLED:
                pop(heap)
                self._dead -= 1
                continue
            if until is not None and event.time > until:
                break
            pop(heap)
            event.state = _FIRED
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            processed += 1
            self._events_processed += 1
            if heap is not self._heap:
                # The callback cancelled enough events to trigger compaction,
                # which rebuilt the heap: rebind the local alias.
                heap = self._heap
        # Only advance to `until` when every event at or before it has been
        # processed.  After a `max_events` (or `stop()`) break, pending
        # events earlier than `until` may remain — jumping the clock over
        # them would make time run backwards on the next `run` call.
        if until is not None and not self._stopped and not truncated:
            self._now = max(self._now, until)
        return processed
