"""Discrete-event scheduler with deterministic ordering.

Events are ordered by ``(time, sequence-number)``: two events scheduled for
the same instant fire in scheduling order, which — together with seeded
randomness (:mod:`repro.sim.rng`) — makes whole simulations reproducible
bit-for-bit.

Two backends implement that contract behind one API (see
``docs/engine.md`` for the full design note):

* ``backend="wheel"`` (the default) — a hierarchical bucketed timer wheel:
  two 256-slot levels of width ``quantum`` and ``256 * quantum``, plus a
  sorted spill list for events beyond the wheel's ~64k-tick span.  Inserts
  are O(1) regardless of how many events are pending (the property that
  matters for grids with thousands of processes), slots are sorted by
  ``(time, seq)`` only when the cursor reaches them, and a free list
  recycles ``_Event`` objects so the steady state of a simulation performs
  zero event allocations.
* ``backend="heap"`` — the original binary-heap implementation, kept
  verbatim as a differential-debugging oracle: identical workloads must
  produce identical fire sequences on both backends
  (``tests/property/test_wheel_vs_heap.py`` enforces this).

Shared semantics, regardless of backend:

* cancellation is *lazy*: a cancelled event stays where it is and is
  discarded when the cursor (or heap pop) reaches it, so ``cancel`` is
  O(1); a sweep rebuilds the structure once cancelled events outnumber
  live ones, so cancel-heavy workloads (timer re-arming) never accumulate
  unbounded garbage;
* :meth:`Scheduler.schedule_batch` inserts many events at once (broadcast
  deliveries, cluster start-up staggering) and assigns sequence numbers in
  item order, so batching changes cost, never order;
* the ``schedule_fire`` / ``handles=False`` fast paths skip
  :class:`EventHandle` creation for fire-and-forget events (the data
  plane's message deliveries), which is a measurable share of schedule
  cost in large runs.
"""

from __future__ import annotations

import heapq
from bisect import insort
from math import inf as _INF
from operator import attrgetter
from typing import Any, Callable, Iterable

from ..errors import SimulationError

__all__ = ["EventHandle", "Scheduler"]

#: event states — pending in the queue, already fired, or cancelled
#: (still in the queue awaiting lazy removal).
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

#: sweep policy: rebuild the pending structure when at least this many
#: cancelled events are buried in it *and* they outnumber the live ones.
_SWEEP_MIN_DEAD = 64

#: wheel geometry — two 256-slot levels (8 bits each); events further than
#: 2**16 ticks out go to the sorted spill list.
_L0_BITS = 8
_L0_SIZE = 1 << _L0_BITS  # 256 slots of one tick each
_L0_MASK = _L0_SIZE - 1
_SPAN = 1 << (2 * _L0_BITS)  # 65536 ticks covered by both levels

#: default slot width in virtual-time units: ~1 ms when time is seconds,
#: sized so the repo's latency draws (~1e-3) land a slot or two ahead and
#: protocol periods (~0.5–10 s) stay inside the two-level span (~64 s).
_DEFAULT_QUANTUM = 2.0**-10

#: freelist bound — beyond this, recycled events are left to the GC.
_FREELIST_MAX = 65536

#: slot-drain sort key; C-level attribute fetch, so same-tick ordering
#: costs one Timsort pass over an almost-always-tiny list.
_EVENT_KEY = attrgetter("time", "seq")

#: bare allocator for EventHandle — the scheduling hot paths fill the
#: slots inline rather than paying for an ``__init__`` frame per handle.
_new_handle = object.__new__

#: total `_Event` allocations, ever — the zero-allocation tripwire tests
#: read this module global around a steady-state run.
_EVENTS_CREATED = 0


class _Event:
    """One scheduled callback.

    ``gen`` is the recycling generation: the wheel backend returns fired
    and reaped events to a free list, bumping ``gen`` so any outstanding
    :class:`EventHandle` (which captured the old generation) can tell that
    its event is gone without keeping the object alive.
    """

    __slots__ = ("time", "seq", "callback", "args", "state", "gen", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        owner: "Scheduler",
    ) -> None:
        global _EVENTS_CREATED
        _EVENTS_CREATED += 1
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.state = _PENDING
        self.gen = 0
        self.owner = owner

    def __lt__(self, other: "_Event") -> bool:
        # Events never reach heap/sort comparisons directly (ordering runs
        # on (time, seq) tuples or the C-level attrgetter key); kept for
        # explicit sorts and debugging.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _FIRED: "fired", _CANCELLED: "cancelled"}[self.state]
        return f"_Event(time={self.time!r}, seq={self.seq}, {state})"


class EventHandle:
    """Cancellation handle for a scheduled event.

    The handle captures the event's recycling generation and timestamp at
    creation, so it keeps answering :attr:`time`, :attr:`fired` and
    :attr:`cancelled` correctly even after the wheel backend has recycled
    the underlying :class:`_Event` into a new scheduling.
    """

    __slots__ = ("_event", "_gen", "_time", "_cancelled")

    def __init__(self, event: _Event):
        self._event = event
        self._gen = event.gen
        self._time = event.time
        self._cancelled = False

    @property
    def time(self) -> float:
        """The virtual time this event was scheduled to fire at."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has succeeded on this handle."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        if self._cancelled:
            return False
        event = self._event
        # A recycled event (generation moved on) can only have left the
        # queue by firing — cancellation through this handle is recorded
        # locally above.
        return event.gen != self._gen or event.state == _FIRED

    def cancel(self) -> bool:
        """Cancel the event; returns False if it already fired/was cancelled."""
        event = self._event
        if self._cancelled or event.gen != self._gen or event.state != _PENDING:
            return False
        event.state = _CANCELLED
        self._cancelled = True
        owner = event.owner
        owner._live -= 1
        dead = owner._dead + 1
        owner._dead = dead
        if dead >= owner._sweep_min and dead > owner._live:
            owner._sweep()
        return True


class Scheduler:
    """A virtual-time event loop (timer-wheel backend by default).

    The loop never advances past events: :attr:`now` is exactly the
    timestamp of the event being processed.  Callbacks may schedule further
    events at or after ``now`` (scheduling in the past raises
    :class:`~repro.errors.SimulationError`).

    Parameters
    ----------
    backend:
        ``"wheel"`` (default) or ``"heap"``.  Both are observably
        identical — same fire order, same ``now`` trajectory, same error
        behavior; construct with ``backend="heap"`` to differentially
        debug a suspected wheel problem (see ``docs/engine.md``).
    quantum:
        Wheel slot width in virtual-time units (ignored by the heap
        backend).  The default of 2**-10 suits second-scale simulations;
        pick roughly the smallest delay your workload schedules.  The
        quantum affects bucketing cost only, never event ordering.
    """

    def __new__(cls, *, backend: str = "wheel", quantum: float = _DEFAULT_QUANTUM):
        if backend not in ("wheel", "heap"):
            raise SimulationError(
                f"unknown scheduler backend {backend!r}; choose 'wheel' or 'heap'"
            )
        if cls is Scheduler and backend == "heap":
            return object.__new__(_HeapScheduler)
        return object.__new__(cls)

    def __init__(self, *, backend: str = "wheel", quantum: float = _DEFAULT_QUANTUM):
        if quantum <= 0.0:
            raise SimulationError(f"quantum must be > 0, got {quantum}")
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._stopped = False
        self._live = 0  # pending events across all tiers
        self._dead = 0  # cancelled events awaiting lazy removal
        #: cancelled-event count that triggers a full sweep.  The wheel's
        #: cascade reaps garbage block by block anyway, so sweeping is a
        #: memory backstop only and the trigger is deliberately high —
        #: above the zombie plateau of timer re-arm workloads (cancel
        #: rate x reap lag), which cascade reaping serves with no sweep
        #: at all.
        self._sweep_min = 16384
        self._quantum = quantum
        self._inv_quantum = 1.0 / quantum
        #: cursor: the tick currently (or next) being drained.  No pending
        #: event ever maps to a tick the cursor has fully passed.
        self._cursor = 0
        #: block start of the last block the run loop visited; the visit
        #: check cascades a block's level-1 slot exactly once on entry.
        self._block = -1
        self._l0: list[list[_Event]] = [[] for _ in range(_L0_SIZE)]
        self._l1: list[list[_Event]] = [[] for _ in range(_L0_SIZE)]
        self._l0_count = 0  # events (incl. cancelled) currently in level 0
        self._l1_count = 0  # events (incl. cancelled) currently in level 1
        #: overflow tier: (time, seq, event) tuples, kept sorted ascending
        self._spill: list[tuple[float, int, _Event]] = []
        #: recycled _Event objects (the zero-allocation steady state)
        self._free: list[_Event] = []
        #: while a slot is being drained, this is its (min-)heap of
        #: (time, seq, event) entries for same-tick inserts; None otherwise
        self._active: list[tuple[float, int, _Event]] | None = None
        #: reusable drain buffers: `_merge_buf` backs `_active` and
        #: `_spare` replaces a detached slot list, so a steady-state
        #: drain allocates no lists at all.  Both are empty between runs.
        self._merge_buf: list[tuple[float, int, _Event]] = []
        self._spare: list[_Event] = []

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Which queue implementation this scheduler runs on."""
        return "wheel"

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired over this scheduler's lifetime."""
        return self._events_processed

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return self._live

    # -- scheduling ------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``.

        Returns an :class:`EventHandle` for cancellation; callers that
        never cancel should prefer :meth:`schedule_fire`, which skips the
        handle entirely.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        free = self._free
        seq = self._seq
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.state = _PENDING
        else:
            event = _Event(time, seq, callback, args, self)
        self._seq = seq + 1
        self._live += 1
        # _insert, inlined: scheduling is the hot path and the extra
        # frame costs more than the tier dispatch itself.
        tick = int(time * self._inv_quantum)
        delta = tick - self._cursor
        if delta < _L0_SIZE:
            if delta > 0:
                self._l0[tick & _L0_MASK].append(event)
                self._l0_count += 1
            else:
                active = self._active
                if active is not None:
                    heapq.heappush(active, (time, seq, event))
                else:
                    self._l0[self._cursor & _L0_MASK].append(event)
                    self._l0_count += 1
        elif delta < _SPAN:
            self._l1[(tick >> _L0_BITS) & _L0_MASK].append(event)
            self._l1_count += 1
        else:
            insort(self._spill, (time, seq, event))
        # EventHandle(event), without the __init__ frame.
        handle = _new_handle(EventHandle)
        handle._event = event
        handle._gen = event.gen
        handle._time = time
        handle._cancelled = False
        return handle

    def schedule_after(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        time = self._now + delay
        free = self._free
        seq = self._seq
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.state = _PENDING
        else:
            event = _Event(time, seq, callback, args, self)
        self._seq = seq + 1
        self._live += 1
        # _insert, inlined: scheduling is the hot path and the extra
        # frame costs more than the tier dispatch itself.
        tick = int(time * self._inv_quantum)
        delta = tick - self._cursor
        if delta < _L0_SIZE:
            if delta > 0:
                self._l0[tick & _L0_MASK].append(event)
                self._l0_count += 1
            else:
                active = self._active
                if active is not None:
                    heapq.heappush(active, (time, seq, event))
                else:
                    self._l0[self._cursor & _L0_MASK].append(event)
                    self._l0_count += 1
        elif delta < _SPAN:
            self._l1[(tick >> _L0_BITS) & _L0_MASK].append(event)
            self._l1_count += 1
        else:
            insort(self._spill, (time, seq, event))
        # EventHandle(event), without the __init__ frame.
        handle = _new_handle(EventHandle)
        handle._event = event
        handle._gen = event.gen
        handle._time = time
        handle._cancelled = False
        return handle

    def schedule_fire(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`.

        Semantically identical to ``schedule_at(time, callback, *args)``
        with the returned handle dropped — same sequence numbering, same
        ordering — but skips the handle allocation.  The data plane's
        message deliveries use this.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        free = self._free
        seq = self._seq
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.state = _PENDING
        else:
            event = _Event(time, seq, callback, args, self)
        self._seq = seq + 1
        self._live += 1
        # _insert, inlined: scheduling is the hot path and the extra
        # frame costs more than the tier dispatch itself.
        tick = int(time * self._inv_quantum)
        delta = tick - self._cursor
        if delta < _L0_SIZE:
            if delta > 0:
                self._l0[tick & _L0_MASK].append(event)
                self._l0_count += 1
            else:
                active = self._active
                if active is not None:
                    heapq.heappush(active, (time, seq, event))
                else:
                    self._l0[self._cursor & _L0_MASK].append(event)
                    self._l0_count += 1
        elif delta < _SPAN:
            self._l1[(tick >> _L0_BITS) & _L0_MASK].append(event)
            self._l1_count += 1
        else:
            insort(self._spill, (time, seq, event))

    def schedule_batch(
        self,
        items: Iterable[tuple[float, Callable[..., None], tuple[Any, ...]]],
        *,
        handles: bool = True,
    ) -> list[EventHandle]:
        """Schedule many ``(time, callback, args)`` events at once.

        Sequence numbers are assigned in item order, so the fire order of
        same-timestamp events is exactly as if each had been passed to
        :meth:`schedule_at` in turn — batching changes cost, never order.
        Validation is atomic: one bad item rejects the whole batch.

        With ``handles=False`` no :class:`EventHandle` objects are created
        and an empty list is returned — the fast path for fire-and-forget
        fan-out (network broadcast).
        """
        staged = list(items)
        now = self._now
        for time, _callback, _args in staged:
            if time < now:
                raise SimulationError(
                    f"cannot schedule an event at {time} before current time {now}"
                )
        if not staged:
            return []
        free = self._free
        seq = self._seq
        out: list[EventHandle] = []
        l0 = self._l0
        l1 = self._l1
        cursor = self._cursor
        inv = self._inv_quantum
        active = self._active
        for time, callback, args in staged:
            if free:
                event = free.pop()
                event.time = time
                event.seq = seq
                event.callback = callback
                event.args = args
                event.state = _PENDING
            else:
                event = _Event(time, seq, callback, args, self)
            # _insert, inlined across the batch loop (broadcast fan-out
            # is the simulator's hottest scheduling site).
            tick = int(time * inv)
            delta = tick - cursor
            if delta < _L0_SIZE:
                if delta > 0:
                    l0[tick & _L0_MASK].append(event)
                    self._l0_count += 1
                elif active is not None:
                    heapq.heappush(active, (time, seq, event))
                else:
                    l0[cursor & _L0_MASK].append(event)
                    self._l0_count += 1
            elif delta < _SPAN:
                l1[(tick >> _L0_BITS) & _L0_MASK].append(event)
                self._l1_count += 1
            else:
                insort(self._spill, (time, seq, event))
            if handles:
                out.append(EventHandle(event))
            seq += 1
        self._seq = seq
        self._live += len(staged)
        return out

    def _insert(self, event: _Event, time: float, seq: int) -> None:
        """Place a pending event in the tier its tick belongs to."""
        tick = int(time * self._inv_quantum)
        delta = tick - self._cursor
        if delta < _L0_SIZE:
            if delta <= 0:
                # Current slot.  While that slot is mid-drain, inserts go
                # to its merge heap so they fire in exact (time, seq)
                # position; otherwise they join the slot list (the clamp
                # to the cursor slot is safe because drains sort by real
                # (time, seq), never by tick).
                active = self._active
                if active is not None:
                    heapq.heappush(active, (time, seq, event))
                    return
                self._l0[self._cursor & _L0_MASK].append(event)
            else:
                self._l0[tick & _L0_MASK].append(event)
            self._l0_count += 1
        elif delta < _SPAN:
            self._l1[(tick >> _L0_BITS) & _L0_MASK].append(event)
            self._l1_count += 1
        else:
            insort(self._spill, (time, seq, event))

    # -- control ---------------------------------------------------------
    def stop(self) -> None:
        """Make the running :meth:`run` return after the current event."""
        self._stopped = True

    # -- internal maintenance -------------------------------------------
    def _recycle(self, event: _Event) -> None:
        event.gen += 1
        event.callback = None  # type: ignore[assignment]
        event.args = ()
        free = self._free
        if len(free) < _FREELIST_MAX:
            free.append(event)

    def _sweep(self) -> None:
        """Drop buried cancelled events from every tier.

        ``(time, seq)`` totally orders events and slot drains sort, so
        filtering slots in place can never change the fire sequence.
        Clean slots are detected in one counting pass and left untouched,
        so the sweep's cost scales with the events it inspects rather
        than with the wheel geometry.  The wheel's cascade already reaps
        cancelled events block by block as the cursor reaches them; this
        sweep is only the memory backstop for garbage parked far ahead
        of the cursor, hence the high `_sweep_min` trigger.
        """
        recycle = self._recycle
        for slots in (self._l0, self._l1):
            count = 0
            for index, slot in enumerate(slots):
                if not slot:
                    continue
                live = 0
                for event in slot:
                    if event.state == _PENDING:
                        live += 1
                if live != len(slot):
                    for event in slot:
                        if event.state == _CANCELLED:
                            recycle(event)
                    slots[index] = [event for event in slot if event.state == _PENDING]
                count += live
            if slots is self._l0:
                self._l0_count = count
            else:
                self._l1_count = count
        spill = self._spill
        if spill:
            dirty = False
            for _, _, event in spill:
                if event.state == _CANCELLED:
                    recycle(event)
                    dirty = True
            if dirty:
                self._spill = [entry for entry in spill if entry[2].state == _PENDING]
        self._dead = 0

    def _cascade(self, block: int) -> None:
        """Redistribute one level-1 slot into level 0 on block entry.

        Cancelled events are reaped here instead of being copied down —
        cancel-heavy workloads (timer re-arming) shed their garbage one
        block at a time without ever needing a full sweep.
        """
        slot = self._l1[block & _L0_MASK]
        if not slot:
            return
        self._l1[block & _L0_MASK] = []
        self._l1_count -= len(slot)
        l0 = self._l0
        inv = self._inv_quantum
        free = self._free
        moved = 0
        for event in slot:
            if event.state == _PENDING:
                l0[int(event.time * inv) & _L0_MASK].append(event)
                moved += 1
            else:
                # _recycle, inlined: cancel-heavy workloads reap most of
                # their garbage right here.
                if self._dead > 0:
                    self._dead -= 1
                event.gen += 1
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                if len(free) < _FREELIST_MAX:
                    free.append(event)
        self._l0_count += moved

    def _refill_from_spill(self) -> None:
        """Pull spill events that now fit inside the wheel's span."""
        spill = self._spill
        if not spill:
            return
        inv = self._inv_quantum
        cursor = self._cursor
        horizon = cursor + _SPAN
        taken = 0
        for time, _seq, event in spill:
            tick = int(time * inv)
            if tick >= horizon:
                break
            taken += 1
            if event.state != _PENDING:
                if self._dead > 0:
                    self._dead -= 1
                self._recycle(event)
            elif tick - cursor < _L0_SIZE:
                self._l0[(tick if tick > cursor else cursor) & _L0_MASK].append(event)
                self._l0_count += 1
            else:
                self._l1[(tick >> _L0_BITS) & _L0_MASK].append(event)
                self._l1_count += 1
        if taken:
            del spill[:taken]

    # -- the event loop ---------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in order; returns the number processed.

        ``until`` — stop once the next event would fire strictly after
        this time (and advance :attr:`now` to ``until``).  ``max_events``
        — safety valve against runaway event loops.  With neither bound
        the loop runs until the queue drains.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until}, already at {self._now}")
        if self._active is not None:
            raise SimulationError("run() is not reentrant: already draining a slot")
        self._stopped = False
        processed = 0
        truncated = False  # stopped early with events <= `until` still pending
        inv = self._inv_quantum
        until_f = _INF if until is None else until
        limit_tick = (1 << 62) if until is None else int(until * inv)
        limit = (1 << 62) if max_events is None else max_events
        l0 = self._l0
        heappush, heappop = heapq.heappush, heapq.heappop
        free = self._free
        while not self._stopped:
            if processed >= limit:
                # Garbage-independent rule (must match the heap backend):
                # the break counts as truncated only when *live* events
                # remain.  Cancelled leftovers are invisible — the two
                # backends reap them at different times, so keying on
                # them would let `now` diverge between backends.
                if self._live:
                    truncated = True
                break
            # -- locate the next non-empty slot ------------------------
            cursor = self._cursor
            found = False
            while True:
                block_start = cursor & ~_L0_MASK
                if block_start != self._block:
                    # First visit to this block — no matter how the
                    # cursor got here (slot drain, block hop, or spill
                    # jump): pull its level-1 slot down into level 0 and
                    # top the wheel up from the spill list.  Keying the
                    # cascade on the visited-block marker (instead of the
                    # hop sites) also makes `until`/`max_events` breaks
                    # safe: a block the cursor rests in without having
                    # cascaded is cascaded first thing on the next run.
                    self._block = block_start
                    self._cascade(cursor >> _L0_BITS)
                    self._refill_from_spill()
                if cursor > limit_tick:
                    # The cursor may legitimately rest past `until`'s tick
                    # (it hopped over empty slots toward later work during
                    # an earlier call).  Events scheduled since then — at
                    # times >= now, but with ticks behind the cursor — were
                    # clamped into the cursor's own slot, so that slot must
                    # still be offered to the drain: its (time, seq) sort
                    # fires exactly the events at or before `until` and
                    # puts the rest back.  Skipping it here is how a wheel
                    # silently strands events the heap backend would fire.
                    if l0[cursor & _L0_MASK]:
                        found = True
                    break
                if self._l0_count == 0:
                    if self._l1_count == 0:
                        spill = self._spill
                        if not spill:
                            break  # queue fully drained
                        first_tick = int(spill[0][0] * inv)
                        if first_tick > limit_tick:
                            break
                        # Jump the cursor to the spill's first block (the
                        # spill head is always at least a full span ahead,
                        # so the jump target is past the current block;
                        # fall back to a one-block hop if it ever is not).
                        jump = first_tick & ~_L0_MASK
                        cursor = jump if jump > cursor else block_start + _L0_SIZE
                        self._cursor = cursor
                        continue
                    # Level 0 is empty: hop to the next block; the visit
                    # check above cascades and refills it.
                    cursor = block_start + _L0_SIZE
                    self._cursor = cursor
                    continue
                # Level 0 holds events: scan slots up to the block end.
                block_end = block_start + _L0_SIZE
                index = cursor & _L0_MASK
                while cursor < block_end:
                    if l0[index]:
                        found = True
                        break
                    cursor += 1
                    index = (index + 1) & _L0_MASK
                self._cursor = cursor
                if found:
                    if cursor > limit_tick:
                        found = False
                    break
                # cursor == block_end: loop back — the visit check hops
                # the scan into the next block.
            if not found:
                break
            # -- drain the slot ----------------------------------------
            # The slot list is swapped against the (empty) spare and the
            # merge heap reuses a persistent buffer: no allocations here.
            index = cursor & _L0_MASK
            batch = l0[index]
            l0[index] = self._spare
            self._spare = batch
            self._l0_count -= len(batch)
            if len(batch) > 1:
                batch.sort(key=_EVENT_KEY)
            self._active = extra = self._merge_buf
            i = 0
            blen = len(batch)
            interrupted = False
            try:
                while True:
                    if extra:
                        # Rare merge path: a callback scheduled into the
                        # slot being drained — interleave by (time, seq).
                        if i < blen:
                            event = batch[i]
                            head = extra[0]
                            if head[0] < event.time or (
                                head[0] == event.time and head[1] < event.seq
                            ):
                                event = heappop(extra)[2]
                            else:
                                i += 1
                        else:
                            event = heappop(extra)[2]
                    elif i < blen:
                        event = batch[i]
                        i += 1
                    else:
                        break
                    if event.state != _PENDING:
                        # lazily-deleted cancellation surfacing
                        if self._dead > 0:
                            self._dead -= 1
                        event.gen += 1
                        event.callback = None  # type: ignore[assignment]
                        event.args = ()
                        if len(free) < _FREELIST_MAX:
                            free.append(event)
                        continue
                    time = event.time
                    # The limit check comes first, mirroring the heap
                    # backend's loop: when `max_events` is exhausted AND
                    # the next event lies beyond `until`, both backends
                    # must agree the run was truncated (clock parked)
                    # rather than drained (clock advanced to `until`).
                    if processed >= limit:
                        self._putback(index, event, batch, i, extra)
                        truncated = True
                        interrupted = True
                        break
                    if time > until_f:
                        self._putback(index, event, batch, i, extra)
                        interrupted = True
                        break
                    event.state = _FIRED
                    self._live -= 1
                    self._now = time
                    callback = event.callback
                    args = event.args
                    # Recycle before the callback runs, so a re-scheduling
                    # callback (the chain/heartbeat pattern) reuses this
                    # same object straight off the free list.
                    event.gen += 1
                    event.callback = None  # type: ignore[assignment]
                    event.args = ()
                    if len(free) < _FREELIST_MAX:
                        free.append(event)
                    callback(*args)
                    processed += 1
                    self._events_processed += 1
                    if self._stopped:
                        self._putback(index, None, batch, i, extra)
                        interrupted = True
                        break
            except BaseException:
                # A callback raised: the fired event is gone, everything
                # undrained returns to its slot so the queue stays usable.
                self._putback(index, None, batch, i, extra)
                raise
            finally:
                # Any putback has already copied survivors out of the
                # buffers; empty them for the next drain (`batch` is now
                # `self._spare` and must be reinstallable as a slot).
                self._active = None
                del batch[:]
                del extra[:]
            if interrupted:
                break
            self._cursor = cursor + 1
        # Only advance to `until` when every event at or before it has
        # been processed.  After a `max_events` (or `stop()`) break,
        # pending events earlier than `until` may remain — jumping the
        # clock over them would make time run backwards on the next call.
        if until is not None and not self._stopped and not truncated:
            if self._now < until:
                self._now = until
        return processed

    def _putback(
        self,
        index: int,
        current: _Event | None,
        batch: list[_Event],
        i: int,
        extra: list[tuple[float, int, _Event]],
    ) -> None:
        """Return undrained events to their slot after an early break."""
        slot = self._l0[index]
        if current is not None:
            slot.append(current)
        slot.extend(batch[i:])
        slot.extend(entry[2] for entry in extra)
        self._l0_count += len(slot)


class _HeapScheduler(Scheduler):
    """The original binary-heap event loop, kept as the wheel's oracle.

    Selected with ``Scheduler(backend="heap")``.  Slower on large or
    cancel-heavy runs (O(log n) inserts, whole-heap compaction) but
    structurally simple — differential runs against the wheel backend are
    the first tool to reach for when debugging an ordering suspicion.
    """

    def __init__(self, *, backend: str = "heap", quantum: float = _DEFAULT_QUANTUM):
        self._now = 0.0
        self._heap: list[tuple[float, int, _Event]] = []
        self._seq = 0
        self._events_processed = 0
        self._stopped = False
        self._live = 0  # pending events in the heap
        self._dead = 0  # cancelled events awaiting lazy removal
        self._sweep_min = _SWEEP_MIN_DEAD  # original heap compaction trigger
        self._free: list[_Event] = []  # unused; kept for API symmetry

    @property
    def backend(self) -> str:
        return "heap"

    # -- scheduling ------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event = _Event(time, self._seq, callback, args, self)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_fire(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        self.schedule_at(time, callback, *args)

    def schedule_batch(
        self,
        items: Iterable[tuple[float, Callable[..., None], tuple[Any, ...]]],
        *,
        handles: bool = True,
    ) -> list[EventHandle]:
        entries: list[tuple[float, int, _Event]] = []
        now = self._now
        seq = self._seq
        for time, callback, args in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule an event at {time} before current time {now}"
                )
            entries.append((time, seq, _Event(time, seq, callback, args, self)))
            seq += 1
        if not entries:
            return []
        self._seq = seq
        self._live += len(entries)
        heap = self._heap
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        if not handles:
            return []
        return [EventHandle(entry[2]) for entry in entries]

    # -- internal maintenance -------------------------------------------
    def _sweep(self) -> None:
        """Drop buried cancelled events and rebuild the heap.

        ``(time, seq)`` totally orders events, so heapify after filtering
        reproduces the exact pop order the full heap would have produced.
        """
        self._heap = [entry for entry in self._heap if entry[2].state == _PENDING]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- the event loop ---------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until}, already at {self._now}")
        self._stopped = False
        processed = 0
        truncated = False  # stopped early with events <= `until` still pending
        heap = self._heap
        pop = heapq.heappop
        while heap and not self._stopped:
            if max_events is not None and processed >= max_events:
                # Only live events count (the heap may still hold cancelled
                # garbage); keeps `now` identical to the wheel backend,
                # which reaps garbage on a different cadence.
                if self._live:
                    truncated = True
                break
            event = heap[0][2]
            if event.state == _CANCELLED:
                pop(heap)
                self._dead -= 1
                continue
            if until is not None and event.time > until:
                break
            pop(heap)
            event.state = _FIRED
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            processed += 1
            self._events_processed += 1
            if heap is not self._heap:
                # The callback cancelled enough events to trigger a sweep,
                # which rebuilt the heap: rebind the local alias.
                heap = self._heap
        # Only advance to `until` when every event at or before it has been
        # processed.  After a `max_events` (or `stop()`) break, pending
        # events earlier than `until` may remain — jumping the clock over
        # them would make time run backwards on the next `run` call.
        if until is not None and not self._stopped and not truncated:
            self._now = max(self._now, until)
        return processed
