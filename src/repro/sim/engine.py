"""Discrete-event scheduler with deterministic ordering.

Events are ordered by ``(time, sequence-number)``: two events scheduled for
the same instant fire in scheduling order, which — together with seeded
randomness (:mod:`repro.sim.rng`) — makes whole simulations reproducible
bit-for-bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["EventHandle", "Scheduler"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event; returns False if it already fired/was cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True


class Scheduler:
    """A virtual-time event loop.

    The loop never advances past events: ``now`` is exactly the timestamp of
    the event being processed.  Callbacks may schedule further events at or
    after ``now`` (scheduling in the past raises
    :class:`~repro.errors.SimulationError`).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event = _Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def stop(self) -> None:
        """Make the running :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in order; returns the number processed.

        ``until`` — stop once the next event would fire strictly after this
        time (and advance ``now`` to ``until``).  ``max_events`` — safety
        valve against runaway event loops.  With neither bound the loop runs
        until the queue drains.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run until {until}, already at {self._now}")
        self._stopped = False
        processed = 0
        while self._heap and not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self._now = event.time
            event.callback(*event.args)
            processed += 1
            self._events_processed += 1
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return processed
