"""Online behavioral-property monitors.

The offline oracles in :mod:`repro.core.properties` judge a finished trace;
these monitors watch a *running* system.  They subscribe to the
query-response drivers' round listeners and maintain, per candidate
responder, the current streak of consecutively-won rounds per querier —
so at any instant an experiment (or an operator) can ask: *does MP
currently hold, who is the witness, and how solid is the evidence?*

Used by long-running experiments to timestamp when the behavioral
assumption started holding, which the proofs' "eventually" quantifies
over.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..core.properties import MPWitness
from ..core.protocol import QueryRoundOutcome
from ..errors import ConfigurationError
from ..ids import ProcessId

__all__ = ["MessagePatternMonitor", "StreakSnapshot"]


@dataclass(frozen=True, slots=True)
class StreakSnapshot:
    """Current win streaks of one candidate responder."""

    responder: ProcessId
    #: querier -> consecutive rounds (ending now) won by the responder
    streaks: dict[ProcessId, int]

    def queriers_with_streak(self, minimum: int) -> frozenset[ProcessId]:
        return frozenset(
            querier for querier, streak in self.streaks.items() if streak >= minimum
        )


class MessagePatternMonitor:
    """Tracks winning-response streaks online; answers MP queries live.

    ``strict`` selects the winning notion (first ``n - f`` responders vs the
    full ``rec_from`` — see :class:`repro.core.properties.RoundLike`).

    Wire it to a cluster by registering :meth:`observe` on every
    :class:`~repro.sim.node.QueryResponseDriver`'s ``round_listeners`` (or
    call :meth:`attach_to_cluster`).
    """

    def __init__(
        self,
        membership,
        f: int,
        *,
        min_streak: int = 5,
        strict: bool = True,
    ) -> None:
        if min_streak < 1:
            raise ConfigurationError(f"min_streak must be >= 1, got {min_streak}")
        self.membership = frozenset(membership)
        self.f = f
        self.min_streak = min_streak
        self.strict = strict
        #: streaks live in one int array row per responder, indexed by a
        #: dense querier id — a few bytes per (responder, querier) pair
        #: instead of an O(n^2) forest of dict entries
        self._members: list[ProcessId] = sorted(self.membership, key=repr)
        self._member_ix: dict[ProcessId, int] = {
            pid: ix for ix, pid in enumerate(self._members)
        }
        self._querier_ix: dict[ProcessId, int] = {}
        self._querier_order: list[ProcessId] = []
        self._streaks: list[array] = [array("i") for _ in self._members]
        self.rounds_observed = 0
        #: first virtual time at which MP was certified (None = not yet)
        self.mp_since: float | None = None
        self._clock = None

    # ------------------------------------------------------------------
    def attach_to_cluster(self, cluster) -> "MessagePatternMonitor":
        """Subscribe to every query-response driver of a ``SimCluster``."""
        self._clock = cluster.scheduler
        for driver in cluster.drivers.values():
            listeners = getattr(driver, "round_listeners", None)
            if listeners is not None:
                listeners.append(self.observe)
        return self

    def observe(self, querier: ProcessId, outcome: QueryRoundOutcome) -> None:
        """Round listener: update streaks with one completed round."""
        self.rounds_observed += 1
        winning = outcome.winners if self.strict else frozenset(outcome.responders)
        qi = self._querier_ix.get(querier)
        if qi is None:
            qi = self._querier_ix[querier] = len(self._querier_order)
            self._querier_order.append(querier)
            for row in self._streaks:
                row.append(0)
        for ix, responder in enumerate(self._members):
            row = self._streaks[ix]
            if responder in winning:
                row[qi] += 1
            else:
                row[qi] = 0
        if self.mp_since is None and self.current_witness() is not None:
            self.mp_since = self._clock.now if self._clock is not None else None

    # ------------------------------------------------------------------
    def snapshot(self, responder: ProcessId) -> StreakSnapshot:
        row = self._streaks[self._member_ix[responder]]
        return StreakSnapshot(
            responder=responder,
            streaks={
                querier: row[qi] for qi, querier in enumerate(self._querier_order)
            },
        )

    def current_witness(
        self,
        *,
        crashed: frozenset[ProcessId] = frozenset(),
        plan=None,
        at: float | None = None,
    ) -> MPWitness | None:
        """An MP witness based on *current* streaks, or ``None``.

        A witness is a non-crashed responder currently on a
        ``min_streak``-long winning streak with at least ``f + 1``
        queriers.

        Epoch-aware exclusion: pass a :class:`~repro.sim.faults.FaultPlan`
        as ``plan`` (and the instant ``at``, defaulting to the attached
        clock) to exclude every process the ground truth says is down at
        that instant — crashed, inside a recovery window, departed, or
        not yet joined.
        """
        if plan is not None:
            when = at
            if when is None:
                if self._clock is None:
                    raise ConfigurationError(
                        "plan-based exclusion needs `at` or an attached cluster clock"
                    )
                when = self._clock.now
            crashed = frozenset(crashed) | plan.down_at(when)
        minimum = self.min_streak
        queriers_of = self._querier_order
        candidates = (
            self._members
            if not crashed
            else sorted(self.membership - crashed, key=repr)
        )
        for responder in candidates:
            row = self._streaks[self._member_ix[responder]]
            queriers = frozenset(
                queriers_of[qi] for qi, streak in enumerate(row) if streak >= minimum
            )
            if len(queriers) >= self.f + 1:
                return MPWitness(
                    responder=responder, queriers=queriers, suffix=minimum
                )
        return None

    def holds(
        self,
        *,
        crashed: frozenset[ProcessId] = frozenset(),
        plan=None,
        at: float | None = None,
    ) -> bool:
        return self.current_witness(crashed=crashed, plan=plan, at=at) is not None
