"""Process identifiers and membership helpers.

The paper models the system as a finite set of processes
``Pi = {p_1, ..., p_n}``.  Throughout the library a *process identifier*
(``ProcessId``) is any hashable, totally-ordered value; in practice the
built-in helpers use small integers (``1..n``) which keeps traces and
experiment tables readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from .errors import ConfigurationError, MembershipError

__all__ = [
    "ProcessId",
    "make_membership",
    "validate_membership",
    "coordinator_of_round",
]

#: A process identifier.  Integers are used by the built-in helpers but any
#: hashable, orderable value (e.g. ``"node-a"``) works across the library.
ProcessId = Union[int, str]


def make_membership(n: int, *, start: int = 1) -> tuple[int, ...]:
    """Return the canonical membership ``(start, ..., start + n - 1)``.

    >>> make_membership(3)
    (1, 2, 3)
    """
    if n < 1:
        raise ConfigurationError(f"membership size must be >= 1, got {n}")
    return tuple(range(start, start + n))


def validate_membership(
    membership: Iterable[ProcessId],
    *,
    process_id: ProcessId | None = None,
    f: int | None = None,
) -> frozenset[ProcessId]:
    """Validate a membership set and return it as a ``frozenset``.

    ``process_id``, when given, must belong to the membership.  ``f``, when
    given, must satisfy ``0 <= f < n`` (the paper requires ``f < n``).
    """
    members = frozenset(membership)
    if not members:
        raise ConfigurationError("membership must not be empty")
    if process_id is not None and process_id not in members:
        raise MembershipError(
            f"process {process_id!r} is not a member of {sorted(members, key=repr)}"
        )
    if f is not None:
        if f < 0:
            raise ConfigurationError(f"f must be >= 0, got {f}")
        if f >= len(members):
            raise ConfigurationError(
                f"f must be < n (paper: f < n); got f={f}, n={len(members)}"
            )
    return members


def coordinator_of_round(round_number: int, membership: Sequence[ProcessId]) -> ProcessId:
    """Rotating-coordinator rule used by Chandra-Toueg consensus.

    Round ``r`` (1-based) is coordinated by ``membership[(r - 1) % n]`` with
    the membership taken in sorted order, matching the classical
    ``c = ((r - 1) mod n) + 1`` formulation.
    """
    if round_number < 1:
        raise ConfigurationError(f"round numbers are 1-based, got {round_number}")
    ordered = sorted(membership, key=repr) if _mixed_types(membership) else sorted(membership)
    if not ordered:
        raise ConfigurationError("membership must not be empty")
    return ordered[(round_number - 1) % len(ordered)]


def _mixed_types(membership: Sequence[ProcessId]) -> bool:
    kinds = {type(m) for m in membership}
    return len(kinds) > 1
