"""Repo-root pytest bootstrap.

``pyproject.toml``'s ``pythonpath = ["src"]`` covers in-process imports;
this conftest additionally exports ``src`` on ``PYTHONPATH`` so tests that
spawn subprocesses (the example smoke tests) find :mod:`repro` even when
the package is not installed.
"""

import os
import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")

if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_existing = os.environ.get("PYTHONPATH")
if _existing is None:
    os.environ["PYTHONPATH"] = _SRC
elif _SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = _SRC + os.pathsep + _existing
