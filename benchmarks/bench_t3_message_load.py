"""T3 — message load per detector (DESIGN.md experiment T3).

Shape asserted: the query-response detector pays ~2x the heartbeat
message count (query + response per pair per period); all heartbeat
variants pay (n-1)/Δ.
"""

from repro.experiments import t3_message_load

from .conftest import print_table, rows_as_dicts, run_once


def test_t3_message_load(benchmark):
    params = t3_message_load.T3Params(sizes=(10, 30), horizon=20.0)
    table = run_once(benchmark, lambda: t3_message_load.run(params))
    print_table(table)
    rows = rows_as_dicts(table)
    for n in (10, 30):
        loads = {
            row["detector"]: row["msgs/s/process"]
            for row in rows
            if row["n"] == n
        }
        heartbeat = loads["heartbeat Θ=2s"]
        # Heartbeats: one beat per peer per Δ = (n-1)/s.
        assert abs(heartbeat - (n - 1)) / (n - 1) < 0.15
        # Gossip and phi ride the same beat schedule.
        assert abs(loads["gossip FT Θ=2s"] - heartbeat) / heartbeat < 0.15
        # Query-response: ~2x (a query out and a response back per pair).
        ratio = loads["time-free (async)"] / heartbeat
        assert 1.5 <= ratio <= 2.5
