"""Microbenchmark for ``repro.sim.engine.Scheduler`` hot paths.

Run standalone (it is not collected by pytest)::

    PYTHONPATH=src python benchmarks/engine_microbench.py [--events N]

Four workloads bracket what simulations actually do to the scheduler:

* ``chain``        — one event schedules the next (timer-wheel pattern;
  pure push/pop throughput at a tiny heap).
* ``fanout``       — pre-schedule N events, drain them (large-heap pops).
* ``churn``        — schedule two, cancel one, repeat (the heartbeat
  re-arm pattern; exercises lazy deletion and compaction).
* ``batch``        — schedule N events in batches of 100 (broadcast /
  cluster-start pattern; uses ``schedule_batch`` when available).
* ``cluster``      — end-to-end ``SimCluster`` heartbeat run (n=40).

Numbers on the dev container (Python 3.11, ``--events 200000``), seed
engine vs. this PR's ``__slots__`` + lazy-deletion + batched engine:

======== ============== ==============
workload before (kev/s) after (kev/s)
======== ============== ==============
chain           ~645           ~712
fanout          ~297           ~482
churn           ~112           ~303
batch           ~312           ~490
cluster         ~112           ~125
======== ============== ==============
"""

from __future__ import annotations

import argparse
import time

from repro.sim.engine import Scheduler


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def bench_chain(n: int) -> float:
    scheduler = Scheduler()
    remaining = [n]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            scheduler.schedule_after(0.001, tick)

    scheduler.schedule_at(0.0, tick)
    return _timed(scheduler.run)


def bench_fanout(n: int) -> float:
    scheduler = Scheduler()
    for i in range(n):
        scheduler.schedule_at(i * 0.001, _noop)
    return _timed(scheduler.run)


def bench_churn(n: int) -> float:
    scheduler = Scheduler()
    remaining = [n]

    def rearm() -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        doomed = scheduler.schedule_after(10.0, _noop)
        scheduler.schedule_after(0.001, rearm)
        doomed.cancel()

    scheduler.schedule_at(0.0, rearm)
    return _timed(scheduler.run)


def bench_batch(n: int) -> float:
    scheduler = Scheduler()
    batch_size = 100

    def fill() -> None:
        base = scheduler.now
        items = [(base + i * 0.001, _noop, ()) for i in range(batch_size)]
        if hasattr(scheduler, "schedule_batch"):
            scheduler.schedule_batch(items)
        else:  # seed engine: one push per event
            for at, callback, args in items:
                scheduler.schedule_at(at, callback, *args)

    for round_index in range(n // batch_size):
        scheduler.schedule_at(round_index * 1.0, fill)
    return _timed(scheduler.run)


def bench_cluster(n: int) -> float:
    from repro.sim.cluster import SimCluster, heartbeat_driver_factory

    horizon = max(5.0, n / 10_000)
    cluster = SimCluster(
        n=40,
        driver_factory=heartbeat_driver_factory(period=0.5, timeout=1.5),
        seed=7,
        start_stagger=0.5,
    )
    elapsed = _timed(lambda: cluster.run(until=horizon))
    # Normalise to events for the kev/s report.
    bench_cluster.events = cluster.scheduler.events_processed  # type: ignore[attr-defined]
    return elapsed


def _noop() -> None:
    return None


WORKLOADS = {
    "chain": bench_chain,
    "fanout": bench_fanout,
    "churn": bench_churn,
    "batch": bench_batch,
    "cluster": bench_cluster,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--only", default="", help="comma-separated workload names")
    args = parser.parse_args(argv)
    wanted = [w for w in args.only.split(",") if w] or list(WORKLOADS)
    print(f"{'workload':<10} {'events':>10} {'seconds':>9} {'kev/s':>9}")
    for name in wanted:
        fn = WORKLOADS[name]
        elapsed = fn(args.events)
        events = getattr(fn, "events", args.events)
        print(f"{name:<10} {events:>10} {elapsed:>9.3f} {events / elapsed / 1000:>9.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
