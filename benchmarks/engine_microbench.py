"""Microbenchmark for ``repro.sim.engine.Scheduler`` hot paths.

Thin wrapper over :mod:`repro.harness.microbench` (the canonical home of
the workloads, also reachable as ``python -m repro bench``, which
additionally writes a ``BENCH_MICRO.json`` artifact).  Run standalone
(it is not collected by pytest)::

    PYTHONPATH=src python benchmarks/engine_microbench.py [--events N]

Numbers on the dev container (Python 3.11, ``--events 200000``), seed
engine vs. PR 1's ``__slots__`` + lazy-deletion + batched engine:

======== ============== ==============
workload before (kev/s) after (kev/s)
======== ============== ==============
chain           ~645           ~712
fanout          ~297           ~482
churn           ~112           ~303
batch           ~312           ~490
cluster         ~112           ~125
======== ============== ==============
"""

from __future__ import annotations

import argparse

from repro.harness.microbench import WORKLOADS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--only", default="", help="comma-separated workload names")
    args = parser.parse_args(argv)
    wanted = [w for w in args.only.split(",") if w] or list(WORKLOADS)
    print(f"{'workload':<10} {'events':>10} {'seconds':>9} {'kev/s':>9}")
    for name in wanted:
        fn = WORKLOADS[name]
        elapsed = fn(args.events)
        events = getattr(fn, "events", args.events)
        print(f"{name:<10} {events:>10} {elapsed:>9.3f} {events / elapsed / 1000:>9.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
