"""T1 — crash detection time vs system size (DESIGN.md experiment T1).

Shape asserted: heartbeat detection sits in [Θ-Δ, Θ] independent of n;
the time-free detector tracks Δ + δ and beats it at every size.
"""

from repro.experiments import t1_detection_vs_n

from .conftest import print_table, run_once


def test_t1_detection_vs_n(benchmark):
    params = t1_detection_vs_n.T1Params(sizes=(10, 20, 30), trials=2, horizon=35.0)
    table = run_once(benchmark, lambda: t1_detection_vs_n.run(params))
    print_table(table)
    tf_means = table.column("time-free mean (s)")
    hb_means = table.column("heartbeat mean (s)")
    # Heartbeat: inside the timeout band at every n.
    assert all(1.0 <= value <= 2.1 for value in hb_means)
    # Time-free: ≈ Δ + δ, always faster than the timeout band.
    assert all(value < 1.4 for value in tf_means)
    assert all(tf < hb for tf, hb in zip(tf_means, hb_means))
    # Strong completeness time does not blow up with n for either.
    assert all(value < 2.3 for value in table.column("heartbeat max (s)"))
    assert all(value < 1.5 for value in table.column("time-free max (s)"))
