"""F1 — detection-time distribution (DESIGN.md experiment F1).

Shape asserted: the heartbeat CDF is supported on [Θ-Δ, Θ] (a uniform
ramp from where the crash lands in the beat cycle); the time-free CDF
concentrates just above the grace Δ with a short tail.
"""

from repro.experiments import f1_detection_cdf

from .conftest import print_table, run_once


def test_f1_detection_cdf(benchmark):
    params = f1_detection_cdf.F1Params(n=15, f=3, trials=6, horizon=22.0)
    table = run_once(benchmark, lambda: f1_detection_cdf.run(params))
    print_table(table)
    quantiles = dict(
        zip(table.column("quantile"), zip(table.column("time-free (s)"), table.column("heartbeat (s)")))
    )
    tf_p50, hb_p50 = quantiles["p50"]
    tf_p90, hb_p90 = quantiles["p90"]
    # Time-free concentrates near Δ = 1 s; heartbeat spreads over [1, 2] s.
    assert tf_p50 < hb_p50
    assert tf_p90 < 1.5
    assert 1.0 <= quantiles["min"][1]
    assert quantiles["max"][1] <= 2.2
    # Time-free spread (p90 - p10) is tighter than heartbeat's.
    tf_spread = quantiles["p90"][0] - quantiles["p10"][0]
    hb_spread = quantiles["p90"][1] - quantiles["p10"][1]
    assert tf_spread < hb_spread
