"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the evaluation (see
DESIGN.md Section 3): it runs the experiment once under pytest-benchmark
(timing the full simulation + analysis pipeline), prints the resulting
rows, and asserts the qualitative shape the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Absolute numbers are simulator-dependent; shapes are the reproduction.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return it.

    Experiments are whole simulation campaigns (seconds each); multiple
    timing rounds would add minutes for no statistical benefit.
    """
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def print_table(result) -> None:
    tables = result if isinstance(result, list) else [result]
    for table in tables:
        print()
        print(table.render())


def rows_as_dicts(table) -> list[dict]:
    return [dict(zip(table.headers, row)) for row in table.rows]
