"""T2 — impact of the crash bound f (DESIGN.md experiment T2).

Shape asserted: rounds terminate (after n - f responses) for every f;
detection time stays pinned near the query grace Δ regardless of f.
"""

from repro.experiments import t2_impact_of_f

from .conftest import print_table, rows_as_dicts, run_once


def test_t2_impact_of_f(benchmark):
    params = t2_impact_of_f.T2Params(n=20, f_values=(1, 5, 9), horizon=30.0)
    table = run_once(benchmark, lambda: t2_impact_of_f.run(params))
    print_table(table)
    rows = rows_as_dicts(table)
    for row in rows:
        assert row["quorum n-f"] == 20 - row["f"]
        # Detection pinned near Δ = 1 s at every f.
        assert row["detect mean (s)"] < 1.6
        # The protocol keeps cycling rounds whatever the quorum size.
        assert row["rounds/process"] > 10
    # A smaller quorum (larger f) never makes rounds *slower*.
    durations = [row["round duration (s)"] for row in rows]
    assert durations[0] >= durations[-1] - 0.05
