"""T4 — consensus latency over each detector (DESIGN.md experiment T4).

Shape asserted: fault-free, both detectors decide promptly; with the
round-1 coordinator crashed, recovery over the time-free detector takes
about one query round while the heartbeat run waits out its timeout —
so the time-free run decides strictly faster.
"""

from repro.experiments import t4_consensus

from .conftest import print_table, rows_as_dicts, run_once


def test_t4_consensus(benchmark):
    params = t4_consensus.T4Params(n=9, f=4, horizon=60.0)
    table = run_once(benchmark, lambda: t4_consensus.run(params))
    print_table(table)
    rows = rows_as_dicts(table)
    assert all(row["all correct decided"] for row in rows)
    assert all(row["agreement"] and row["validity"] for row in rows)
    by_key = {(row["detector"], row["scenario"]): row for row in rows}
    tf_crash = next(v for k, v in by_key.items() if "time-free" in k[0] and "crash" in k[1])
    hb_crash = next(v for k, v in by_key.items() if "heartbeat" in k[0] and "crash" in k[1])
    tf_clean = next(v for k, v in by_key.items() if "time-free" in k[0] and "fault-free" in k[1])
    # Fault-free: decision well under one pacing period.
    assert tf_clean["decision time (s)"] < 0.2
    # Coordinator crash: the time-free run recovers faster than the
    # timeout-bound heartbeat run.
    assert tf_crash["decision time (s)"] < hb_crash["decision time (s)"]
