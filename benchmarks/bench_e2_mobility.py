"""E2 — false suspicions under mobility (extension figure, RR-6088 Fig. 3).

Shape asserted: while the mover is away every other node suspects it
(count = n - 1); after reconnection the mistake flood collapses the count
back to zero within a few query periods — but only with Algorithm 2's
``known``-eviction rule; the ablation column stays nonzero (the
suspicion ping-pong between the mover and its old range).
"""

from repro.experiments import e2_mobility

from .conftest import print_table, rows_as_dicts, run_once


def test_e2_mobility(benchmark):
    params = e2_mobility.E2Params(
        n=30, depart=20.0, arrive=60.0, horizon=110.0, sample_step=2.0
    )
    table = run_once(benchmark, lambda: e2_mobility.run(params))
    print_table(table)
    rows = rows_as_dicts(table)
    by_time = {row["time (s)"]: row for row in rows}
    away_times = [t for t in by_time if 35.0 <= t <= 55.0]
    assert away_times
    # All n - 1 live nodes suspect the mover while it is away.
    for t in away_times:
        assert by_time[t]["false suspicions (alg 2)"] == params.n - 1
    # After reconnection: Algorithm 2 collapses to zero...
    settled = [t for t in by_time if t >= params.arrive + 20.0]
    assert settled
    for t in settled:
        assert by_time[t]["false suspicions (alg 2)"] == 0
    # ...the ablation does not.
    final = by_time[max(by_time)]
    assert final["false suspicions (no eviction)"] > 0
