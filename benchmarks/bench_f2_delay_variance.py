"""F2 — accuracy under asynchrony (DESIGN.md experiment F2).

Shape asserted (the headline result): after a uniform delay inflation the
time-free detector never falsely suspects the responsive (RP) process —
its quorums depend on response *order*, which rescaling preserves — while
the fixed-timeout heartbeat loses that accuracy anchor once delays reach
Θ.  In the calm regime every detector is clean.
"""

from repro.experiments import f2_delay_variance

from .conftest import print_table, rows_as_dicts, run_once


def test_f2_regime_shift(benchmark):
    params = f2_delay_variance.F2Params(
        n=15, f=3, horizon=60.0, shift_factors=(1.0, 400.0, 2000.0)
    )
    table = run_once(benchmark, lambda: f2_delay_variance.run_regime_shift(params))
    print_table(table)
    rows = rows_as_dicts(table)

    def cell(stress, detector_prefix, column):
        return next(
            row[column]
            for row in rows
            if row["stress"] == stress and row["detector"].startswith(detector_prefix)
        )

    # Calm regime: nobody errs.
    for detector in ("time-free", "heartbeat", "phi"):
        assert cell("x1", detector, "total false susp.") == 0
    # The anchor: the time-free detector never suspects the RP process.
    for stress in ("x1", "x400", "x2000"):
        assert cell(stress, "time-free", "responsive-node false susp.") == 0
        assert cell(stress, "time-free", "responsive node clear at end") is True
    # The heartbeat loses the anchor under extreme inflation.
    assert cell("x2000", "heartbeat", "responsive-node false susp.") > 0


def test_f2_variance_sweep(benchmark):
    params = f2_delay_variance.F2Params(n=15, f=3, horizon=50.0, sigmas=(0.5, 2.5))
    table = run_once(benchmark, lambda: f2_delay_variance.run_variance_sweep(params))
    print_table(table)
    rows = rows_as_dicts(table)
    calm = [row for row in rows if row["stress"] == "σ=0.5"]
    assert all(row["total false susp."] == 0 for row in calm)
    # Under heavy tails mistakes appear for everyone, but they self-correct:
    # the responsive node ends the run unsuspected for the time-free run.
    tf_heavy = next(
        row for row in rows if row["stress"] == "σ=2.5" and row["detector"] == "time-free"
    )
    assert tf_heavy["responsive node clear at end"] is True
