"""E1 — detection time vs range density (extension figure, RR-6088 Fig. 2).

Shape asserted: the Friedman-Tcharny gossip detector's detection time is
flat inside [Θ-Δ, Θ] at every density (timer-bound); the time-free
detector beats it at every density and trends down toward Δ + δ as the
network densifies.
"""

from repro.experiments import e1_density

from .conftest import print_table, rows_as_dicts, run_once


def test_e1_density(benchmark):
    params = e1_density.E1Params(
        n=50, f=5, densities=(7, 12, 20), crashes=5, horizon=45.0
    )
    table = run_once(benchmark, lambda: e1_density.run(params))
    print_table(table)
    rows = rows_as_dicts(table)
    gossip = [row for row in rows if row["detector"] == "Friedman-Tcharny"]
    async_rows = [row for row in rows if row["detector"] == "time-free (async)"]
    # Strong completeness achieved everywhere.
    assert all(row["undetected"] == 0 for row in rows)
    # Gossip: flat within the timeout band, independent of density.
    for row in gossip:
        assert 1.0 <= row["detect mean (s)"] <= 2.1
    # Time-free: faster than gossip at every density...
    for tf, gp in zip(async_rows, gossip):
        assert tf["detect mean (s)"] < gp["detect mean (s)"]
    # ...and trending toward Δ + δ as density grows.
    assert async_rows[-1]["detect mean (s)"] <= async_rows[0]["detect mean (s)"] + 0.05
    assert async_rows[-1]["detect mean (s)"] < 1.15
