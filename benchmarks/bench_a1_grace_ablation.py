"""A1 — ablation of the query-pacing grace Δ (DESIGN.md Section 6 claim).

Shape asserted: the paper's pacing improvement does exactly what it says —
false suspicions collapse to zero once Δ covers the response spread, at
the price of ≈Δ detection latency; correctness (crash detected by all,
mistakes corrected) holds at *every* Δ including zero.
"""

from repro.experiments import a1_grace_ablation

from .conftest import print_table, rows_as_dicts, run_once


def test_a1_grace_ablation(benchmark):
    params = a1_grace_ablation.A1Params(
        n=12, f=3, graces=(0.0, 0.1, 1.0), horizon=35.0
    )
    table = run_once(benchmark, lambda: a1_grace_ablation.run(params))
    print_table(table)
    rows = {row["grace Δ (s)"]: row for row in rows_as_dicts(table)}
    # Raw protocol (Δ=0): a storm of transient false suspicions...
    assert rows[0.0]["false suspicions"] > 1000
    # ...which the paper's Δ=1s pacing eliminates entirely.
    assert rows[1.0]["false suspicions"] == 0
    assert rows[1.0]["uncorrected at end"] == 0
    # The price: detection latency ≈ Δ.
    assert rows[0.0]["detect mean (s)"] < rows[1.0]["detect mean (s)"]
    assert 0.9 <= rows[1.0]["detect mean (s)"] <= 1.5
    # Correctness at every point: all correct observers detect the crash.
    # (Encoded in detect mean being present — detection_stats drops
    # undetected observers from the mean.)
    assert all(row["detect mean (s)"] is not None for row in rows.values())