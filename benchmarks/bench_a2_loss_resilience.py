"""A2 — ablation: lossy channels and the retransmission extension.

Shape asserted: with reliable channels nothing changes; with loss the raw
protocol's rounds freeze below quorum (the model's reliable-links
assumption is load-bearing), and the retransmission extension restores
round liveness and crash detection without adding any timeout-based
suspicion.
"""

from repro.experiments import a2_loss_resilience

from .conftest import print_table, rows_as_dicts, run_once


def test_a2_loss_resilience(benchmark):
    params = a2_loss_resilience.A2Params(
        n=10, f=2, loss_rates=(0.0, 0.3), retry_settings=(None, 0.5), horizon=60.0
    )
    table = run_once(benchmark, lambda: a2_loss_resilience.run(params))
    print_table(table)
    rows = {
        (row["loss rate"], row["retry (s)"]): row for row in rows_as_dicts(table)
    }
    # Reliable channels: no retries needed, nothing frozen, either way.
    assert rows[(0.0, "off")]["frozen processes"] == 0
    assert rows[(0.0, 0.5)]["retransmissions"] == 0
    # Heavy loss without retransmission: rounds freeze.
    assert rows[(0.3, "off")]["frozen processes"] > 0
    # With retransmission: every process keeps cycling and the crash is
    # detected by all correct observers.
    assert rows[(0.3, 0.5)]["frozen processes"] == 0
    assert rows[(0.3, 0.5)]["retransmissions"] > 0
    assert rows[(0.3, 0.5)]["crash detected by"] == "9/9"