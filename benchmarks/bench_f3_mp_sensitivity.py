"""F3 — sensitivity to the MP behavioral property (DESIGN.md experiment F3).

Shape asserted: with a strongly responsive favored process the MP oracle
certifies the run and accuracy anchors on it; as the speed advantage
shrinks below 1 the winning ratio decays and suspicion counts grow —
demonstrating that MP, not timing folklore, is the load-bearing assumption.
"""

from repro.experiments import f3_mp_sensitivity

from .conftest import print_table, run_once


def test_f3_mp_sensitivity(benchmark):
    params = f3_mp_sensitivity.F3Params(
        n=10, f=4, horizon=20.0, speedups=(8.0, 2.0, 1.0, 0.5)
    )
    table = run_once(benchmark, lambda: f3_mp_sensitivity.run(params))
    print_table(table)
    speedups = table.column("speedup")
    ratios = dict(zip(speedups, table.column("winning ratio")))
    mp = dict(zip(speedups, table.column("MP holds (oracle)")))
    suspected = dict(zip(speedups, table.column("times favored suspected")))
    # Strong responsiveness: near-perfect winning ratio, MP certified.
    assert ratios[8.0] > 0.95
    assert mp[8.0] is True
    # Monotone degradation of the winning ratio as the advantage shrinks.
    assert ratios[8.0] > ratios[2.0] > ratios[1.0] > ratios[0.5]
    # Accuracy for the favored process degrades along with it.
    assert suspected[0.5] > suspected[8.0]
    assert mp[0.5] is False
