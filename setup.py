"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
environments without the ``wheel`` package (which PEP 660 editable builds
require) can still do a legacy ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
