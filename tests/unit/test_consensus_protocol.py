"""Unit tests for the Chandra-Toueg consensus state machine (sans-I/O).

Messages are routed by hand between participants so each test controls the
exact interleaving — including coordinator crashes, which are modeled by
simply never delivering the coordinator's messages.
"""

import pytest

from repro.consensus.messages import Ack, Decide, Estimate, Proposal
from repro.consensus.protocol import ChandraTouegConsensus, ConsensusConfig
from repro.core.effects import SendTo
from repro.errors import ConfigurationError, ConsensusError


def p1_only(effects, message_type):
    """The single message of ``message_type`` among the effects."""
    matching = [e.message for e in effects if isinstance(e.message, message_type)]
    assert len(matching) == 1, f"expected exactly one {message_type.__name__}"
    return matching[0]


class Router:
    """Synchronously routes consensus effects among participants."""

    def __init__(self, n, f, *, suspects=None):
        membership = frozenset(range(1, n + 1))
        self.suspects = {pid: frozenset() for pid in membership}
        if suspects:
            self.suspects.update(suspects)
        self.participants = {
            pid: ChandraTouegConsensus(
                ConsensusConfig(process_id=pid, membership=membership, f=f),
                (lambda pid=pid: self.suspects[pid]),
            )
            for pid in sorted(membership)
        }
        self.dropped: set = set()  # crashed pids: their traffic vanishes
        self.queue = []

    def crash(self, pid):
        self.dropped.add(pid)

    def submit(self, sender, effects):
        for effect in effects:
            assert isinstance(effect, SendTo)
            self.queue.append((sender, effect.destination, effect.message))

    def deliver_all(self):
        while self.queue:
            sender, dst, message = self.queue.pop(0)
            if sender in self.dropped or dst in self.dropped:
                continue
            effects = self.participants[dst].on_message(sender, message)
            self.submit(dst, effects)

    def propose_all(self, values=None):
        for pid, participant in self.participants.items():
            if pid in self.dropped:
                continue
            value = (values or {}).get(pid, f"v{pid}")
            self.submit(pid, participant.propose(value))
        self.deliver_all()

    def poke(self, pid):
        self.submit(pid, self.participants[pid].poke())
        self.deliver_all()


class TestConfig:
    def test_majority(self):
        config = ConsensusConfig(process_id=1, membership=frozenset({1, 2, 3, 4, 5}), f=2)
        assert config.majority == 3

    def test_requires_correct_majority(self):
        with pytest.raises(ConfigurationError):
            ConsensusConfig(process_id=1, membership=frozenset({1, 2, 3, 4}), f=2)

    def test_coordinator_rotation(self):
        config = ConsensusConfig(process_id=1, membership=frozenset({1, 2, 3}), f=1)
        assert [config.coordinator(r) for r in (1, 2, 3, 4)] == [1, 2, 3, 1]


class TestFaultFree:
    def test_everyone_decides_coordinators_value(self):
        router = Router(n=5, f=2)
        router.propose_all()
        for participant in router.participants.values():
            assert participant.decided
            assert participant.decision == "v1"  # round-1 coordinator's pick

    def test_decision_in_one_round(self):
        router = Router(n=5, f=2)
        router.propose_all()
        assert all(p.round <= 2 for p in router.participants.values())

    def test_double_propose_rejected(self):
        router = Router(n=3, f=1)
        router.propose_all()
        with pytest.raises(ConsensusError):
            router.participants[2].propose("again")

    def test_undecided_participant_has_no_decision(self):
        router = Router(n=3, f=1)
        with pytest.raises(ConsensusError):
            router.participants[1].decision


class TestCoordinatorCrash:
    def test_nacks_move_to_next_round_and_decide(self):
        router = Router(n=5, f=2)
        router.crash(1)  # round-1 coordinator
        router.propose_all()
        # Nobody can progress: phase 3 waits on the dead coordinator.
        assert not any(
            p.decided for pid, p in router.participants.items() if pid != 1
        )
        # The detector eventually suspects 1 everywhere.
        for pid in (2, 3, 4, 5):
            router.suspects[pid] = frozenset({1})
            router.poke(pid)
        for pid in (2, 3, 4, 5):
            assert router.participants[pid].decided
            assert router.participants[pid].decision == "v2"

    def test_crash_after_proposal_still_decides_via_relay(self):
        router = Router(n=3, f=1)
        router.propose_all()  # decides normally; Decide relayed
        # Even if the coordinator vanished right after deciding, relays exist:
        assert all(p.decided for p in router.participants.values())


class TestAgreementMachinery:
    def test_locked_value_survives_coordinator_change(self):
        # p2 adopts (locks) the round-1 proposal, but the coordinator
        # crashes before *deciding* (its ack never arrives).  Round 2's
        # coordinator must re-propose the locked value — the ts rule.
        router = Router(n=3, f=1)
        p1, p2, p3 = (router.participants[i] for i in (1, 2, 3))
        est2 = p1_only(p2.propose("b"), Estimate)
        p3.propose("c")
        p1.propose("a")  # coordinator: own estimate is local
        # p1 reaches its majority of estimates and proposes "a".
        out = p1.on_message(2, est2)
        proposal = next(e.message for e in out if isinstance(e.message, Proposal))
        # Deliver the proposal to p2 only; p2 locks ("a", ts=1) and acks —
        # but the ack is never delivered (p1 crashes now).
        ack_effects = p2.on_message(1, proposal)
        assert any(isinstance(e.message, Ack) for e in ack_effects)
        assert p2._estimate == "a"
        assert p2._ts == 1
        assert not p1.decided
        # p3 suspects the dead coordinator, nacks and enters round 2,
        # sending its (unlocked) estimate "c" to the new coordinator p2.
        router.suspects[3] = frozenset({1})
        out3 = p3.poke()
        est_r2 = next(e.message for e in out3 if isinstance(e.message, Estimate))
        assert est_r2.round == 2
        assert est_r2.ts == 0
        # p2 (round-2 coordinator) gathers the majority and must propose the
        # locked "a" (ts 1 beats ts 0), not p3's "c".
        out2 = p2.on_message(3, est_r2)
        proposal_r2 = next(e.message for e in out2 if isinstance(e.message, Proposal))
        assert proposal_r2.value == "a"
        # Finish the round: p3 acks, p2 decides, Decide reaches p3.
        out3b = p3.on_message(2, proposal_r2)
        ack_r2 = next(e.message for e in out3b if isinstance(e.message, Ack))
        out2b = p2.on_message(3, ack_r2)
        assert p2.decided and p2.decision == "a"
        decide = next(e.message for e in out2b if isinstance(e.message, Decide))
        p3.on_message(2, decide)
        assert p3.decided and p3.decision == "a"

    def test_decide_message_short_circuits(self):
        router = Router(n=3, f=1)
        participant = router.participants[2]
        participant.propose("x")
        effects = participant.on_message(1, Decide(sender=1, value="z"))
        assert participant.decided
        assert participant.decision == "z"
        # Relays the decision to everyone exactly once.
        decide_targets = {e.destination for e in effects if isinstance(e.message, Decide)}
        assert decide_targets == {1, 3}

    def test_foreign_message_rejected(self):
        router = Router(n=3, f=1)
        router.participants[1].propose("x")
        with pytest.raises(ConsensusError):
            router.participants[1].on_message(2, object())

    def test_messages_before_propose_are_buffered_not_processed(self):
        router = Router(n=3, f=1)
        participant = router.participants[2]
        effects = participant.on_message(1, Proposal(sender=1, round=1, value="q"))
        assert effects == []
        assert not participant.decided
