"""Unit tests for the simulated network."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Scheduler
from repro.sim.latency import ConstantLatency
from repro.sim.network import SimNetwork
from repro.sim.rng import RngStreams
from repro.sim.topology import full_mesh, ring


def make_network(topology=None, *, latency=None, loss_rate=0.0, seed=1):
    scheduler = Scheduler()
    network = SimNetwork(
        scheduler,
        topology if topology is not None else full_mesh([1, 2, 3]),
        latency if latency is not None else ConstantLatency(0.5),
        RngStreams(seed),
        loss_rate=loss_rate,
    )
    return scheduler, network


class TestDelivery:
    def test_send_delivers_after_latency(self):
        scheduler, network = make_network()
        inbox = []
        network.register(2, lambda src, msg: inbox.append((scheduler.now, src, msg)))
        network.send(1, 2, "hello")
        scheduler.run()
        assert inbox == [(0.5, 1, "hello")]

    def test_broadcast_reaches_only_neighbors(self):
        topo = ring([1, 2, 3, 4])
        scheduler, network = make_network(topo)
        inboxes = {pid: [] for pid in (2, 3, 4)}
        for pid in inboxes:
            network.register(pid, lambda src, msg, pid=pid: inboxes[pid].append(msg))
        sent = network.broadcast(1, "q")
        scheduler.run()
        assert sent == 2
        assert inboxes[2] == ["q"]
        assert inboxes[4] == ["q"]
        assert inboxes[3] == []  # not a 1-hop neighbor on the ring

    def test_send_to_non_neighbor_is_dropped(self):
        topo = ring([1, 2, 3, 4])
        scheduler, network = make_network(topo)
        inbox = []
        network.register(3, lambda src, msg: inbox.append(msg))
        assert network.send(1, 3, "x") is False
        scheduler.run()
        assert inbox == []
        assert network.trace.messages_dropped == 1

    def test_unregistered_destination_drops_at_delivery(self):
        scheduler, network = make_network()
        assert network.send(1, 2, "x") is True
        scheduler.run()
        assert network.trace.messages_dropped == 1

    def test_message_counting(self):
        scheduler, network = make_network()
        network.register(2, lambda src, msg: None)
        network.send(1, 2, "a")
        network.send(1, 2, "b")
        assert network.trace.messages_total == 2
        assert network.trace.messages_by_sender[1] == 2


class TestMobility:
    def test_detached_sender_cannot_transmit(self):
        scheduler, network = make_network()
        inbox = []
        network.register(2, lambda src, msg: inbox.append(msg))
        network.detach(1)
        assert network.send(1, 2, "x") is False
        scheduler.run()
        assert inbox == []

    def test_detached_receiver_drops_at_delivery(self):
        scheduler, network = make_network()
        inbox = []
        network.register(2, lambda src, msg: inbox.append(msg))
        network.send(1, 2, "x")  # on the wire
        network.detach(2)  # detaches before delivery
        scheduler.run()
        assert inbox == []

    def test_reattached_node_receives_again(self):
        scheduler, network = make_network()
        inbox = []
        network.register(2, lambda src, msg: inbox.append(msg))
        network.detach(2)
        network.attach(2)
        network.send(1, 2, "x")
        scheduler.run()
        assert inbox == ["x"]

    def test_is_attached(self):
        _, network = make_network()
        assert network.is_attached(1)
        network.detach(1)
        assert not network.is_attached(1)


class TestLoss:
    def test_full_reliability_by_default(self):
        scheduler, network = make_network()
        inbox = []
        network.register(2, lambda src, msg: inbox.append(msg))
        for _ in range(50):
            network.send(1, 2, "x")
        scheduler.run()
        assert len(inbox) == 50

    def test_loss_rate_drops_some(self):
        scheduler, network = make_network(loss_rate=0.5)
        inbox = []
        network.register(2, lambda src, msg: inbox.append(msg))
        for _ in range(200):
            network.send(1, 2, "x")
        scheduler.run()
        assert 40 < len(inbox) < 160

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(SimulationError):
            make_network(loss_rate=1.0)


class TestRegistration:
    def test_double_registration_rejected(self):
        _, network = make_network()
        network.register(1, lambda src, msg: None)
        with pytest.raises(SimulationError):
            network.register(1, lambda src, msg: None)

    def test_unknown_node_registration_rejected(self):
        _, network = make_network()
        with pytest.raises(SimulationError):
            network.register(99, lambda src, msg: None)
