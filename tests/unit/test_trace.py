"""Unit tests for trace recording and timeline queries.

Every query test runs against both stores — the default columnar backend
and the object-recorder oracle — via the ``trace`` fixture, so the two
can never drift on the documented semantics.
"""

import pytest

from repro.sim.trace import TraceRecorder


@pytest.fixture(params=["columnar", "object"])
def trace(request):
    return TraceRecorder(backend=request.param)


def record_seq(trace, observer, *events):
    """events: (time, suspects_after) pairs; deltas are derived."""
    previous = frozenset()
    for time, suspects in events:
        suspects = frozenset(suspects)
        trace.record_suspicion_change(time, observer, previous, suspects)
        previous = suspects


class TestSuspicionChanges:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TraceRecorder(backend="parquet")

    def test_no_op_change_is_dropped(self, trace):
        result = trace.record_suspicion_change(1.0, 1, frozenset({2}), frozenset({2}))
        assert result is None
        assert trace.suspicion_changes == []

    def test_delta_computation(self, trace):
        change = trace.record_suspicion_change(
            1.0, 1, frozenset({2}), frozenset({3})
        )
        assert change.added == frozenset({3})
        assert change.removed == frozenset({2})

    def test_suspects_at_interpolates(self, trace):
        record_seq(trace, 1, (1.0, {5}), (2.0, set()), (3.0, {5, 6}))
        assert trace.suspects_at(1, 0.5) == frozenset()
        assert trace.suspects_at(1, 1.5) == frozenset({5})
        assert trace.suspects_at(1, 2.5) == frozenset()
        assert trace.suspects_at(1, 99.0) == frozenset({5, 6})

    def test_suspects_at_is_per_observer(self, trace):
        record_seq(trace, 1, (1.0, {5}))
        record_seq(trace, 2, (1.0, {6}))
        assert trace.suspects_at(1, 2.0) == frozenset({5})
        assert trace.suspects_at(2, 2.0) == frozenset({6})

    def test_first_suspicion_time(self, trace):
        record_seq(trace, 1, (1.0, {5}), (2.0, set()), (3.0, {5}))
        assert trace.first_suspicion_time(1, 5) == 1.0
        assert trace.first_suspicion_time(1, 5, after=1.5) == 3.0
        assert trace.first_suspicion_time(1, 9) is None

    def test_targets_of_unions_added(self, trace):
        record_seq(trace, 1, (1.0, {5}), (2.0, {5, 6}), (3.0, set()))
        assert trace.targets_of(1) == frozenset({5, 6})
        assert trace.targets_of(2) == frozenset()

    def test_view_list_is_live(self, trace):
        """A held suspicion_changes reference sees later records appended."""
        view = trace.suspicion_changes
        assert view == []
        record_seq(trace, 1, (1.0, {5}))
        assert len(view) == 1
        assert view is trace.suspicion_changes

    def test_truncating_the_view_is_honored(self, trace):
        record_seq(trace, 1, (1.0, {5}), (2.0, {5, 6}), (3.0, set()))
        del trace.suspicion_changes[1:]
        assert len(trace.suspicion_changes) == 1
        assert trace.suspects_at(1, 99.0) == frozenset({5})
        assert trace.targets_of(1) == frozenset({5})


class TestPermanentSuspicion:
    def test_unrevoked_suspicion_is_permanent(self, trace):
        record_seq(trace, 1, (2.0, {5}))
        assert trace.permanent_suspicion_time(1, 5) == 2.0

    def test_revoked_suspicion_is_not_permanent(self, trace):
        record_seq(trace, 1, (2.0, {5}), (3.0, set()))
        assert trace.permanent_suspicion_time(1, 5) is None

    def test_final_interval_wins(self, trace):
        record_seq(trace, 1, (2.0, {5}), (3.0, set()), (7.0, {5}))
        assert trace.permanent_suspicion_time(1, 5) == 7.0


class TestIntervals:
    def test_closed_and_open_intervals(self, trace):
        record_seq(trace, 1, (1.0, {5}), (2.0, set()), (4.0, {5}))
        intervals = trace.suspicion_intervals(1, 5, horizon=10.0)
        assert intervals == [(1.0, 2.0), (4.0, 10.0)]

    def test_no_suspicion_no_intervals(self, trace):
        assert trace.suspicion_intervals(1, 5, horizon=10.0) == []


class TestFalseSuspicionCount:
    def test_counts_only_live_targets(self, trace):
        record_seq(trace, 1, (1.0, {5, 6}))
        record_seq(trace, 2, (1.0, {5}))
        assert trace.false_suspicion_count_at(2.0, crashed=frozenset()) == 3
        assert trace.false_suspicion_count_at(2.0, crashed=frozenset({5})) == 1

    def test_respects_sample_time(self, trace):
        record_seq(trace, 1, (5.0, {9}))
        assert trace.false_suspicion_count_at(4.0, crashed=frozenset()) == 0
        assert trace.false_suspicion_count_at(5.0, crashed=frozenset()) == 1


class TestMessagesAndEvents:
    def test_message_counters(self, trace):
        trace.record_message("fd.query", 1)
        trace.record_message("fd.query", 2)
        trace.record_message("fd.response", 1)
        assert trace.messages_total == 3
        assert trace.messages_by_kind["fd.query"] == 2
        assert trace.messages_by_sender[1] == 2

    def test_drop_counters(self, trace):
        trace.record_drop()
        trace.record_drops(3)
        assert trace.messages_dropped == 4

    def test_crash_queries(self, trace):
        trace.record_crash(4.0, 7)
        assert trace.crash_time_of(7) == 4.0
        assert trace.crash_time_of(8) is None
        assert trace.crashed_processes() == frozenset({7})

    def test_crash_index_tracks_later_records(self, trace):
        """The lazily built crash index must invalidate on new records."""
        trace.record_crash(4.0, 7)
        assert trace.crash_time_of(7) == 4.0  # builds the index
        trace.record_crash(6.0, 8)
        assert trace.crash_time_of(8) == 6.0
        # First crash of a process wins, matching the linear-scan semantics.
        trace.record_crash(9.0, 7)
        assert trace.crash_time_of(7) == 4.0

    def test_rounds_of_filters_querier(self, trace):
        from repro.sim.trace import RoundRecord

        trace.record_round(
            RoundRecord(1, 1, 0.0, 0.1, 0.2, (1, 2), frozenset({1, 2}))
        )
        trace.record_round(
            RoundRecord(2, 1, 0.0, 0.1, 0.2, (2, 1), frozenset({2, 1}))
        )
        assert len(trace.rounds_of(1)) == 1
