"""Unit tests for the Friedman-Tcharny gossip heartbeat baseline."""

import pytest

from repro.baselines.gossip import GossipHeartbeat, GossipHeartbeatDetector
from repro.errors import ConfigurationError


def make(pid=1, n=4, **kwargs):
    return GossipHeartbeatDetector(pid, frozenset(range(1, n + 1)), **kwargs)


class TestConfig:
    def test_timeout_must_exceed_period(self):
        with pytest.raises(ConfigurationError):
            make(period=1.0, timeout=1.0)


class TestVector:
    def test_own_entry_increments_on_each_beat(self):
        detector = make()
        detector.start(0.0)
        assert detector.heartbeat_vector()[1] == 1
        detector.on_wakeup(1.0)
        assert detector.heartbeat_vector()[1] == 2

    def test_beat_carries_full_vector(self):
        detector = make(n=3)
        effects = detector.start(0.0)
        vector = dict(effects[0].message.vector)
        assert set(vector) == {1, 2, 3}

    def test_max_merge_on_receive(self):
        detector = make()
        detector.start(0.0)
        beat = GossipHeartbeat(sender=2, vector=((1, 0), (2, 5), (3, 2), (4, 0)))
        detector.on_message(0.5, 2, beat)
        vector = detector.heartbeat_vector()
        assert vector[2] == 5
        assert vector[3] == 2

    def test_own_entry_never_overwritten_by_gossip(self):
        detector = make()
        detector.start(0.0)
        beat = GossipHeartbeat(sender=2, vector=((1, 99), (2, 1), (3, 0), (4, 0)))
        detector.on_message(0.5, 2, beat)
        assert detector.heartbeat_vector()[1] == 1

    def test_lower_entries_are_ignored(self):
        detector = make()
        detector.start(0.0)
        detector.on_message(0.5, 2, GossipHeartbeat(sender=2, vector=((2, 5),)))
        detector.on_message(0.6, 3, GossipHeartbeat(sender=3, vector=((2, 3),)))
        assert detector.heartbeat_vector()[2] == 5


class TestSuspicion:
    def test_timeout_without_news_suspects(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_wakeup(2.0)
        assert detector.suspects() == frozenset({2, 3, 4})

    def test_relayed_news_refreshes_timer(self):
        # Multi-hop: node 2 relays a *new* heartbeat of node 3.
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_message(1.9, 2, GossipHeartbeat(sender=2, vector=((2, 1), (3, 1), (4, 1))))
        detector.on_wakeup(2.0)
        assert detector.suspects() == frozenset()

    def test_stale_relay_does_not_refresh(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_message(0.5, 2, GossipHeartbeat(sender=2, vector=((3, 4),)))
        # Same value again much later: no new information about 3.
        detector.on_message(2.4, 2, GossipHeartbeat(sender=2, vector=((2, 9), (3, 4),)))
        detector.on_wakeup(2.6)
        assert 3 in detector.suspects()

    def test_new_heartbeat_clears_suspicion(self):
        detector = make(period=1.0, timeout=2.0)
        detector.start(0.0)
        detector.on_wakeup(2.0)
        assert 2 in detector.suspects()
        detector.on_message(2.5, 3, GossipHeartbeat(sender=3, vector=((2, 7), (3, 9))))
        assert 2 not in detector.suspects()
        assert 3 not in detector.suspects()

    def test_foreign_message_ignored(self):
        detector = make()
        detector.start(0.0)
        assert detector.on_message(0.5, 2, object()) == []


class TestWakeupSchedule:
    def test_next_wakeup_is_min_of_beat_and_deadline(self):
        detector = make(period=0.7, timeout=2.0)
        detector.start(0.0)
        assert detector.next_wakeup() == pytest.approx(0.7)

    def test_unstarted_detector_sleeps(self):
        assert make().next_wakeup() is None
