"""Unit tests for the bounded-memory streaming grid runner."""

from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import Table
from repro.harness.artifacts import write_artifact
from repro.harness.cache import ResultCache
from repro.harness.runner import run_grid
from repro.harness.spec import ScenarioSpec
from repro.harness.streaming import (
    StreamStats,
    run_grid_streaming,
    stream_outcomes,
)


@dataclass(frozen=True)
class SynthParams:
    cells_count: int = 12
    seed: int = 1

    @classmethod
    def full(cls) -> "SynthParams":
        return cls(cells_count=24)


def synth_cells(params):
    return [{"i": i} for i in range(params.cells_count)]


def synth_run_cell(params, coords, seed):
    # Deterministic, pure, trivially cheap; tuple exercises normalisation.
    return {"square": coords["i"] ** 2, "pair": (coords["i"], seed % 7)}


def synth_tabulate(params, values):
    table = Table(title="synthetic", headers=["cells", "sum"])
    table.add_row(len(values), sum(v["square"] for v in values))
    return table


SYNTH = ScenarioSpec(
    exp_id="synth",
    title="synthetic grid for streaming tests",
    params_cls=SynthParams,
    cells=synth_cells,
    run_cell=synth_run_cell,
    tabulate=synth_tabulate,
)


def indexed_tabulate(params, values):
    # Random access + slicing, the other access pattern tabulates use
    # (f2 slices values in half; f1 sorts a percentile sub-list).
    table = Table(title="synthetic", headers=["first", "last", "head"])
    head = values[:3]
    total = sum(v["square"] for v in head)  # slices must be iterable views
    table.add_row(values[0]["square"], values[-1]["square"], len(head))
    table.add_note(f"head sum {total}")
    return table


class TestStreamOutcomes:
    def test_outcomes_match_classic_runner(self):
        params = SynthParams()
        classic = run_grid(SYNTH, params)
        streamed = list(stream_outcomes(SYNTH, params, window=5))
        assert [o.coords for o in streamed] == [o.coords for o in classic.outcomes]
        assert [o.seed for o in streamed] == [o.seed for o in classic.outcomes]
        assert [o.value for o in streamed] == [o.value for o in classic.outcomes]

    def test_window_caps_resident_outcomes(self):
        stats = StreamStats()
        outcomes = list(
            stream_outcomes(
                SYNTH, SynthParams(cells_count=3000), window=64, stats=stats
            )
        )
        assert len(outcomes) == 3000
        assert stats.cells == 3000
        assert 0 < stats.peak_resident <= 64

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            list(stream_outcomes(SYNTH, SynthParams(), window=0))

    def test_cli_rejects_zero_max_resident(self, tmp_path, capsys):
        # Regression: a falsy 0 must not be silently coerced to the default.
        from repro.harness.cli import main

        argv = ["run", "t2", "--stream", "--max-resident", "0",
                "--out", str(tmp_path), "--quiet", "--no-cache"]
        assert main(argv) == 2
        assert "window must be >= 1" in capsys.readouterr().err


class TestRunGridStreaming:
    def test_artifact_is_byte_identical_to_classic_writer(self, tmp_path):
        params = SynthParams()
        classic_path = write_artifact(tmp_path / "classic", run_grid(SYNTH, params))
        streamed = run_grid_streaming(SYNTH, params, tmp_path / "streamed", window=4)
        assert streamed.path.read_bytes() == classic_path.read_bytes()

    def test_empty_grid_artifact_is_byte_identical(self, tmp_path):
        params = SynthParams(cells_count=0)
        classic_path = write_artifact(tmp_path / "classic", run_grid(SYNTH, params))
        streamed = run_grid_streaming(SYNTH, params, tmp_path / "streamed")
        assert streamed.path.read_bytes() == classic_path.read_bytes()

    def test_spill_file_is_removed(self, tmp_path):
        run_grid_streaming(SYNTH, SynthParams(), tmp_path)
        assert list(tmp_path.glob("*.spill")) == []

    def test_large_grid_streams_with_bounded_residency(self, tmp_path):
        params = SynthParams(cells_count=5000)
        streamed = run_grid_streaming(SYNTH, params, tmp_path, window=128)
        assert streamed.stats.cells == 5000
        assert streamed.stats.peak_resident <= 128
        assert streamed.tables[0].rows[0][0] == 5000
        import json

        payload = json.loads(streamed.path.read_text())
        assert len(payload["cells"]) == 5000
        assert payload["tables"][0]["rows"][0] == [5000, sum(i * i for i in range(5000))]

    def test_tabulate_random_access_and_slices_work(self, tmp_path):
        spec = ScenarioSpec(
            exp_id="synth",
            title="synthetic grid for streaming tests",
            params_cls=SynthParams,
            cells=synth_cells,
            run_cell=synth_run_cell,
            tabulate=indexed_tabulate,
        )
        streamed = run_grid_streaming(spec, SynthParams(cells_count=9), tmp_path)
        assert streamed.tables[0].rows[0] == (0, 64, 3)
        assert streamed.tables[0].notes[-1] == "head sum 5"  # 0 + 1 + 4

    def test_slices_are_lazy_views_not_lists(self, tmp_path):
        # f2-style `values[:split]` on a huge grid must not materialise
        # half the grid; slices are disk-backed views themselves.
        from repro.harness.streaming import _SpilledValues

        observed = {}

        def slicing_tabulate(params, values):
            half = values[: len(values) // 2]
            observed["type"] = type(half)
            observed["len"] = len(half)
            observed["sum"] = sum(v["square"] for v in half)
            table = Table(title="synthetic", headers=["n"])
            table.add_row(len(values))
            return table

        spec = ScenarioSpec(
            exp_id="synth",
            title="synthetic grid for streaming tests",
            params_cls=SynthParams,
            cells=synth_cells,
            run_cell=synth_run_cell,
            tabulate=slicing_tabulate,
        )
        run_grid_streaming(spec, SynthParams(cells_count=100), tmp_path, window=8)
        assert observed["type"] is _SpilledValues
        assert observed["len"] == 50
        assert observed["sum"] == sum(i * i for i in range(50))

    def test_cache_is_shared_with_classic_runner(self, tmp_path):
        params = SynthParams()
        cache = ResultCache(tmp_path / ".cache")
        first = run_grid_streaming(SYNTH, params, tmp_path / "a", cache=cache)
        assert first.stats.cache_hits == 0
        # A classic run of the same grid must be served from the same cache.
        classic = run_grid(SYNTH, params, cache=cache)
        assert classic.cache_hits == len(classic.outcomes)
        second = run_grid_streaming(SYNTH, params, tmp_path / "b", cache=cache)
        assert second.stats.cache_hits == second.stats.cells

    def test_worker_pool_reuse_across_windows(self, tmp_path):
        params = SynthParams(cells_count=10)
        streamed = run_grid_streaming(
            SYNTH, params, tmp_path, workers=2, window=3
        )
        classic_path = write_artifact(tmp_path / "classic", run_grid(SYNTH, params))
        assert streamed.path.read_bytes() == classic_path.read_bytes()
