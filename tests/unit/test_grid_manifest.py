"""Unit tests for the distributed-run manifest, sharding, and plugin loader."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.grid import (
    MANIFEST_NAME,
    ensure_manifest,
    grid_manifest,
    load_manifest,
    parse_worker_id,
    shard_indices,
)
from repro.harness.plugins import load_plugins, plugin_modules
from repro.harness.registry import get_spec
from tests.goldens import smoke_params


@pytest.fixture
def t2():
    return get_spec("t2"), smoke_params()["t2"]


class TestWorkerId:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [("1/1", (1, 1)), ("2/4", (2, 4)), ("4/4", (4, 4))],
    )
    def test_valid(self, text, expected):
        assert parse_worker_id(text) == expected

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/2/3", "1.5/2"])
    def test_malformed(self, text):
        with pytest.raises(ConfigurationError, match="expects k/N"):
            parse_worker_id(text)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "-1/4", "1/0"])
    def test_out_of_range(self, text):
        with pytest.raises(ConfigurationError, match="out of range"):
            parse_worker_id(text)

    def test_shards_partition_the_grid(self):
        shards = [shard_indices(10, k, 3) for k in (1, 2, 3)]
        assert shards[0] == [0, 3, 6, 9]
        assert sorted(i for s in shards for i in s) == list(range(10))


class TestManifest:
    def test_manifest_contents(self, t2):
        spec, params = t2
        manifest = grid_manifest(spec, params)
        assert manifest["experiment"] == "t2"
        assert manifest["plugins"] == {"env": [], "entry_points": []}
        cells = manifest["cells"]
        assert len(cells) == len(spec.grid(params))
        assert all({"coords", "seed", "key"} <= record.keys() for record in cells)
        # Deterministic: building it twice gives the same digest.
        assert grid_manifest(spec, params)["grid_digest"] == manifest["grid_digest"]

    def test_ensure_creates_then_validates(self, t2, tmp_path):
        spec, params = t2
        first = ensure_manifest(tmp_path, spec, params)
        assert (tmp_path / MANIFEST_NAME).exists()
        second = ensure_manifest(tmp_path, spec, params)  # same worker view: ok
        assert first == second == load_manifest(tmp_path)

    def test_params_mismatch_refused(self, t2, tmp_path):
        spec, params = t2
        ensure_manifest(tmp_path, spec, params)
        import dataclasses

        other = dataclasses.replace(params, seed=params.seed + 1)
        with pytest.raises(ConfigurationError, match="params differs"):
            ensure_manifest(tmp_path, spec, other)

    def test_experiment_mismatch_refused(self, t2, tmp_path):
        spec, params = t2
        ensure_manifest(tmp_path, spec, params)
        with pytest.raises(ConfigurationError, match="experiment differs"):
            ensure_manifest(tmp_path, get_spec("t1"), smoke_params()["t1"])

    def test_plugin_mismatch_refused(self, t2, tmp_path, monkeypatch):
        spec, params = t2
        ensure_manifest(tmp_path, spec, params)  # manifest records plugins: []
        # A worker that loaded extra plugins must be turned away.  ``json``
        # is already imported, so "loading" it registers nothing — the
        # refusal is purely about the recorded list differing.
        monkeypatch.setenv("REPRO_PLUGINS", "json")
        with pytest.raises(ConfigurationError, match="plugin set"):
            ensure_manifest(tmp_path, spec, params)

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no run manifest"):
            load_manifest(tmp_path)

    def test_corrupt_manifest_is_a_clear_error(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unreadable run manifest"):
            load_manifest(tmp_path)

    def test_manifest_file_round_trips(self, t2, tmp_path):
        spec, params = t2
        ensure_manifest(tmp_path, spec, params)
        on_disk = json.loads((tmp_path / MANIFEST_NAME).read_text(encoding="utf-8"))
        assert on_disk == grid_manifest(spec, params)


class TestPluginLoader:
    def test_parse_splits_dedupes_sorts(self):
        assert plugin_modules("b, a:b,,a") == ("a", "b")
        assert plugin_modules("") == ()

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLUGINS", "json:math")
        assert plugin_modules() == ("json", "math")
        monkeypatch.delenv("REPRO_PLUGINS")
        assert plugin_modules() == ()

    def test_load_imports_and_reports(self):
        assert load_plugins("json,math") == ("json", "math")

    def test_unimportable_module_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="no_such_plugin_xyz"):
            load_plugins("no_such_plugin_xyz")


class TestEntryPoints:
    @pytest.fixture
    def fake_scan(self, monkeypatch):
        """Inject entry points without installing a distribution."""
        from repro.harness import plugins

        # monkeypatch restores the pre-test cache on teardown, so the fake
        # scan results cannot leak into other tests.
        monkeypatch.setattr(plugins, "_entry_point_cache", None)

        def install(*pairs):
            monkeypatch.setattr(plugins, "_scan_entry_points", lambda: pairs)
            # Anything touching the registry (e.g. the t2 fixture) may have
            # re-primed the cache with the real scan by now.
            monkeypatch.setattr(plugins, "_entry_point_cache", None)

        return install

    def test_discovers_sorts_and_caches(self, fake_scan, monkeypatch):
        from repro.harness import plugins

        calls = []

        def scan():
            calls.append(1)
            return (("b", "math"), ("a", "json"))

        monkeypatch.setattr(plugins, "_scan_entry_points", scan)
        assert plugins.entry_point_modules() == ("json", "math")
        assert plugins.entry_point_modules() == ("json", "math")
        assert len(calls) == 1, "scan result must be cached"
        assert plugins.entry_point_modules(refresh=True) == ("json", "math")
        assert len(calls) == 2

    def test_load_plugins_imports_entry_points(self, fake_scan):
        fake_scan(("ep", "json"))
        assert load_plugins("math") == ("json", "math")

    def test_unimportable_entry_point_names_its_source(self, fake_scan):
        fake_scan(("ep", "no_such_entry_point_mod"))
        with pytest.raises(ConfigurationError, match="entry-point group"):
            load_plugins()

    def test_sources_shape_matches_manifest(self, fake_scan, monkeypatch):
        from repro.harness.plugins import plugin_sources

        fake_scan(("ep", "json"))
        monkeypatch.setenv("REPRO_PLUGINS", "math")
        assert plugin_sources() == {"env": ["math"], "entry_points": ["json"]}

    def test_manifest_records_entry_points(self, fake_scan, t2):
        spec, params = t2
        fake_scan(("ep", "json"))
        manifest = grid_manifest(spec, params)
        assert manifest["plugins"] == {"env": [], "entry_points": ["json"]}
