"""Unit tests for the phi-accrual baseline."""

import math

import pytest

from repro.baselines.heartbeat import Heartbeat
from repro.baselines.phi_accrual import PhiAccrualDetector
from repro.errors import ConfigurationError


def make(pid=1, n=3, **kwargs):
    kwargs.setdefault("period", 1.0)
    return PhiAccrualDetector(pid, frozenset(range(1, n + 1)), **kwargs)


def feed_regular_beats(detector, peer, *, count, period, start=0.0):
    for i in range(count):
        detector.on_message(start + i * period, peer, Heartbeat(sender=peer, seq=i + 1))


class TestConfig:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            make(window_size=1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            make(threshold=0.0)

    def test_name_carries_threshold(self):
        assert "8" in make(threshold=8.0).name


class TestPhiValue:
    def test_phi_is_zero_before_any_beat(self):
        detector = make()
        assert detector.phi(2, now=100.0) == 0.0

    def test_phi_grows_with_silence(self):
        detector = make()
        feed_regular_beats(detector, 2, count=20, period=1.0)
        t_last = 19.0
        small = detector.phi(2, now=t_last + 1.0)
        large = detector.phi(2, now=t_last + 5.0)
        assert large > small

    def test_phi_small_right_after_a_beat(self):
        detector = make()
        feed_regular_beats(detector, 2, count=20, period=1.0)
        assert detector.phi(2, now=19.1) < 1.0

    def test_phi_adapts_to_slower_cadence(self):
        fast = make()
        slow = make()
        feed_regular_beats(fast, 2, count=30, period=1.0)
        feed_regular_beats(slow, 2, count=30, period=3.0)
        # Same absolute silence means much more for the fast cadence.
        silence = 4.0
        assert fast.phi(2, now=29.0 + silence) > slow.phi(2, now=87.0 + silence)

    def test_phi_infinite_for_enormous_silence(self):
        detector = make(min_std=0.01)
        feed_regular_beats(detector, 2, count=30, period=1.0)
        assert detector.phi(2, now=29.0 + 1e6) == math.inf


class TestSuspicion:
    def test_silent_peer_crosses_threshold(self):
        detector = make(threshold=8.0)
        detector.start(0.0)
        feed_regular_beats(detector, 2, count=20, period=1.0)
        feed_regular_beats(detector, 3, count=20, period=1.0)
        # Peer 3 goes silent; step evaluation wakeups until suspected.
        now = 19.0
        for _ in range(200):
            now += 0.25
            detector.on_message(now, 2, Heartbeat(sender=2, seq=1000 + int(now * 4)))
            detector.on_wakeup(now)
            if 3 in detector.suspects():
                break
        assert 3 in detector.suspects()
        assert 2 not in detector.suspects()

    def test_beat_clears_suspicion(self):
        detector = make(threshold=8.0)
        detector.start(0.0)
        feed_regular_beats(detector, 2, count=20, period=1.0)
        for now in range(20, 120):
            detector.on_wakeup(float(now))
        assert 2 in detector.suspects()
        detector.on_message(130.0, 2, Heartbeat(sender=2, seq=999))
        assert 2 not in detector.suspects()

    def test_higher_threshold_suspects_later(self):
        eager = make(threshold=1.0)
        patient = make(threshold=12.0)
        # Jittered cadence (0.9 / 1.1 alternating): mean 1.0, std ≈ 0.1.
        now = 0.0
        times = []
        for i in range(20):
            times.append(now)
            now += 0.9 if i % 2 == 0 else 1.1
        for detector in (eager, patient):
            detector.start(0.0)
            for seq, t in enumerate(times, start=1):
                detector.on_message(t, 2, Heartbeat(sender=2, seq=seq))
        # Silence of 1.45 s ≈ 4.4 sigma: phi ≈ 5 — between the thresholds.
        probe = times[-1] + 1.45
        eager.on_wakeup(probe)
        patient.on_wakeup(probe)
        assert 2 in eager.suspects()
        assert 2 not in patient.suspects()


class TestBeatsAndWakeups:
    def test_start_emits_beat(self):
        detector = make()
        effects = detector.start(0.0)
        assert effects[0].message == Heartbeat(sender=1, seq=1)

    def test_periodic_beats(self):
        detector = make(period=1.0)
        detector.start(0.0)
        effects = detector.on_wakeup(1.0)
        assert effects and effects[0].message.seq == 2

    def test_evaluation_interval_bounds_wakeup(self):
        detector = make(period=1.0, eval_fraction=0.25)
        detector.start(0.0)
        assert detector.next_wakeup() == pytest.approx(0.25)

    def test_stale_seq_ignored(self):
        detector = make()
        detector.on_message(1.0, 2, Heartbeat(sender=2, seq=5))
        detector.on_message(2.0, 2, Heartbeat(sender=2, seq=4))
        # Only one arrival counted: no inter-arrival interval yet recorded.
        assert len(detector._windows[2]) == 0
