"""Unit tests for the online MP monitor."""

import pytest

from repro.core.protocol import QueryRoundOutcome
from repro.errors import ConfigurationError
from repro.sim.monitors import MessagePatternMonitor


def outcome(responders, winners=None, round_id=1):
    responders = tuple(responders)
    winners = frozenset(winners if winners is not None else responders)
    return QueryRoundOutcome(
        round_id=round_id,
        responders=responders,
        winners=winners,
        newly_suspected=(),
        counter_after=round_id,
        suspects_after=frozenset(),
    )


def feed_streak(monitor, responder, queriers, rounds):
    for round_id in range(1, rounds + 1):
        for querier in queriers:
            monitor.observe(querier, outcome([querier, responder], round_id=round_id))


class TestStreaks:
    def test_consecutive_wins_accumulate(self):
        monitor = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=3)
        feed_streak(monitor, 4, [1], 5)
        assert monitor.snapshot(4).streaks[1] == 5

    def test_a_loss_resets_the_streak(self):
        monitor = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=3)
        feed_streak(monitor, 4, [1], 5)
        monitor.observe(1, outcome([1, 2]))  # 4 missing
        assert monitor.snapshot(4).streaks[1] == 0

    def test_streaks_are_per_querier(self):
        monitor = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=3)
        feed_streak(monitor, 4, [1], 4)
        feed_streak(monitor, 4, [2], 2)
        snap = monitor.snapshot(4)
        assert snap.streaks[1] == 4
        assert snap.streaks[2] == 2
        assert snap.queriers_with_streak(3) == frozenset({1})


class TestWitness:
    def test_witness_needs_f_plus_one_streaking_queriers(self):
        monitor = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=3)
        feed_streak(monitor, 4, [1], 3)
        assert monitor.current_witness() is None  # only one querier
        feed_streak(monitor, 4, [2], 3)
        witness = monitor.current_witness()
        assert witness is not None
        assert witness.responder == 4
        assert witness.queriers >= frozenset({1, 2})

    def test_crashed_candidates_are_excluded(self):
        monitor = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=2)
        feed_streak(monitor, 4, [1, 2], 3)
        assert monitor.holds()
        assert not monitor.holds(crashed=frozenset({4, 1, 2, 3}))
        witness = monitor.current_witness(crashed=frozenset({4}))
        assert witness is None or witness.responder != 4

    def test_non_strict_counts_grace_extras(self):
        strict = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=1, strict=True)
        loose = MessagePatternMonitor([1, 2, 3, 4], f=1, min_streak=1, strict=False)
        # 4 responded but outside the first-quorum winner set.
        event = outcome([1, 2, 4], winners={1, 2})
        strict.observe(1, event)
        loose.observe(1, event)
        assert strict.snapshot(4).streaks[1] == 0
        assert loose.snapshot(4).streaks[1] == 1

    def test_min_streak_validation(self):
        with pytest.raises(ConfigurationError):
            MessagePatternMonitor([1, 2], f=0, min_streak=0)


class TestClusterAttachment:
    def test_mp_since_is_stamped_on_a_live_run(self):
        from repro.sim import QueryPacing, SimCluster, UniformLatency
        from repro.sim.cluster import time_free_driver_factory
        from repro.sim.latency import BiasedLatency

        latency = BiasedLatency(
            UniformLatency(0.001, 0.02), frozenset({1}), speedup=8.0, bidirectional=True
        )
        cluster = SimCluster(
            n=6,
            driver_factory=time_free_driver_factory(2, QueryPacing(grace=0.01, idle=0.05)),
            latency=latency,
            seed=3,
            start_stagger=0.05,
        )
        monitor = MessagePatternMonitor(
            cluster.membership, f=2, min_streak=5
        ).attach_to_cluster(cluster)
        cluster.run(until=10.0)
        assert monitor.rounds_observed > 50
        assert monitor.holds()
        witness = monitor.current_witness()
        assert witness.responder == 1
        assert monitor.mp_since is not None
        assert 0.0 < monitor.mp_since < 2.0
