"""Unit tests for the simulator drivers (round loop, timers, lifecycle)."""

import pytest

from repro.core.protocol import DetectorConfig, TimeFreeDetector
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Scheduler
from repro.sim.latency import ConstantLatency
from repro.sim.network import SimNetwork
from repro.sim.node import QueryPacing, QueryResponseDriver, SimProcess, TimedDriver
from repro.sim.rng import RngStreams
from repro.sim.topology import full_mesh
from repro.sim.trace import TraceRecorder


def make_world(n=3):
    scheduler = Scheduler()
    trace = TraceRecorder()
    network = SimNetwork(
        scheduler, full_mesh(range(1, n + 1)), ConstantLatency(0.01), RngStreams(1), trace=trace
    )
    return scheduler, network, trace


def make_qr_node(scheduler, network, trace, pid=1, n=3, f=1, pacing=None):
    process = SimProcess(pid, scheduler, network, trace)
    detector = TimeFreeDetector(DetectorConfig.for_process(pid, range(1, n + 1), f))
    driver = QueryResponseDriver(
        process, detector, pacing if pacing is not None else QueryPacing(grace=0.05)
    )
    process.bind(driver)
    return process, driver


class TestQueryResponseDriver:
    def test_foreign_message_raises(self):
        scheduler, network, trace = make_world()
        process, driver = make_qr_node(scheduler, network, trace)
        with pytest.raises(SimulationError):
            driver.on_message(2, object())

    def test_detach_aborts_collecting_round(self):
        scheduler, network, trace = make_world()
        process, driver = make_qr_node(scheduler, network, trace)
        process.start()
        assert driver.detector.collecting
        process.detach()
        assert not driver.detector.collecting

    def test_attach_restarts_rounds(self):
        scheduler, network, trace = make_world()
        process, driver = make_qr_node(scheduler, network, trace)
        process.start()
        first_round = driver.detector.round_id
        process.detach()
        process.attach()
        assert driver.detector.round_id == first_round + 1
        assert driver.detector.collecting

    def test_crash_stops_everything(self):
        scheduler, network, trace = make_world()
        process, driver = make_qr_node(scheduler, network, trace)
        process.start()
        process.crash()
        scheduler.run(until=10.0)
        # No new rounds after the crash.
        assert driver.detector.round_id == 1
        assert trace.crash_time_of(1) == 0.0

    def test_double_bind_rejected(self):
        scheduler, network, trace = make_world()
        process, driver = make_qr_node(scheduler, network, trace)
        with pytest.raises(SimulationError):
            process.bind(driver)

    def test_start_without_driver_rejected(self):
        scheduler, network, trace = make_world()
        process = SimProcess(2, scheduler, network, trace)
        with pytest.raises(SimulationError):
            process.start()

    def test_pacing_validation(self):
        with pytest.raises(ConfigurationError):
            QueryPacing(grace=-1.0)
        with pytest.raises(ConfigurationError):
            QueryPacing(idle=-0.5)
        with pytest.raises(ConfigurationError):
            QueryPacing(retry=-2.0)


class _FakeTimedCore:
    """Minimal TimedProtocolCore recording calls."""

    def __init__(self, pid=1):
        self._pid = pid
        self.wakeups: list[float] = []
        self.deadline: float | None = 1.0
        self._suspects: frozenset = frozenset()

    @property
    def process_id(self):
        return self._pid

    def start(self, now):
        return []

    def on_message(self, now, sender, message):
        return []

    def on_wakeup(self, now):
        self.wakeups.append(now)
        self.deadline = now + 1.0
        return []

    def next_wakeup(self):
        return self.deadline

    def suspects(self):
        return self._suspects


class TestTimedDriver:
    def test_wakeups_follow_the_core_schedule(self):
        scheduler, network, trace = make_world()
        process = SimProcess(1, scheduler, network, trace)
        core = _FakeTimedCore()
        driver = TimedDriver(process, core)
        process.bind(driver)
        process.start()
        scheduler.run(until=3.5)
        assert core.wakeups == [1.0, 2.0, 3.0]

    def test_crash_silences_the_timer(self):
        scheduler, network, trace = make_world()
        process = SimProcess(1, scheduler, network, trace)
        core = _FakeTimedCore()
        driver = TimedDriver(process, core)
        process.bind(driver)
        process.start()
        scheduler.run(until=1.5)
        process.crash()
        scheduler.run(until=10.0)
        assert core.wakeups == [1.0]

    def test_detach_pauses_attach_resumes(self):
        scheduler, network, trace = make_world()
        process = SimProcess(1, scheduler, network, trace)
        core = _FakeTimedCore()
        driver = TimedDriver(process, core)
        process.bind(driver)
        process.start()
        scheduler.run(until=1.5)
        process.detach()
        scheduler.run(until=5.0)
        paused = list(core.wakeups)
        scheduler.schedule_at(5.0, process.attach)
        scheduler.run(until=7.5)
        assert paused == [1.0]
        # on_attach triggers an immediate wakeup, then the cadence resumes.
        assert core.wakeups[1] == 5.0
        assert core.wakeups[2:] == [6.0, 7.0]
