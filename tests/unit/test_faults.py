"""Unit tests for fault plans."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.faults import (
    CrashFault,
    FaultPlan,
    JoinFault,
    LeaveFault,
    LossBurst,
    MobilityFault,
    PartitionFault,
    RecoveryFault,
    uniform_crashes,
)


class TestCrashFault:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashFault(1, -1.0)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(crashes=[CrashFault(1, 1.0), CrashFault(1, 2.0)])


class TestMobilityFault:
    def test_arrival_must_follow_departure(self):
        with pytest.raises(ConfigurationError):
            MobilityFault(1, depart=5.0, arrive=5.0)

    def test_never_returning_is_allowed(self):
        fault = MobilityFault(1, depart=5.0, arrive=None)
        assert fault.arrive is None


class TestGroundTruth:
    def test_correct_processes(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.0)])
        assert plan.correct_processes([1, 2, 3]) == frozenset({1, 3})

    def test_crash_time(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.5)])
        assert plan.crash_time(2) == 1.5
        assert plan.crash_time(1) is None

    def test_crashed_by(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.0), CrashFault(3, 5.0)])
        assert plan.crashed_by(0.5) == frozenset()
        assert plan.crashed_by(1.0) == frozenset({2})
        assert plan.crashed_by(9.0) == frozenset({2, 3})

    def test_empty_plan(self):
        plan = FaultPlan.none()
        assert plan.crashed_processes() == frozenset()


class TestValidation:
    def test_too_many_crashes_for_f(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 1.0), CrashFault(2, 2.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_non_member_crash(self):
        plan = FaultPlan.of(crashes=[CrashFault(9, 1.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_non_member_move(self):
        plan = FaultPlan.of(moves=[MobilityFault(9, 1.0, 2.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_valid_plan_passes(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 1.0)])
        plan.validate_against([1, 2, 3], f=1)


class TestMobilityAfterCrash:
    """Regression: a move scheduled at/after the mover's crash is nonsense."""

    def test_depart_after_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot move"):
            FaultPlan.of(
                crashes=[CrashFault(1, 5.0)],
                moves=[MobilityFault(1, depart=7.0, arrive=9.0)],
            )

    def test_depart_at_crash_instant_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot move"):
            FaultPlan.of(
                crashes=[CrashFault(1, 5.0)],
                moves=[MobilityFault(1, depart=5.0, arrive=9.0)],
            )

    def test_move_before_crash_allowed(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(1, 5.0)],
            moves=[MobilityFault(1, depart=1.0, arrive=3.0)],
        )
        assert plan.moves[0].depart == 1.0

    def test_other_processes_unaffected(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(1, 5.0)],
            moves=[MobilityFault(2, depart=7.0, arrive=9.0)],
        )
        assert plan.moves[0].process == 2


class TestPartitionFault:
    def test_needs_two_sides(self):
        with pytest.raises(ConfigurationError):
            PartitionFault(sides=((1, 2),), start=1.0, end=2.0)

    def test_sides_must_be_disjoint(self):
        with pytest.raises(ConfigurationError):
            PartitionFault(sides=((1, 2), (2, 3)), start=1.0, end=2.0)

    def test_empty_side_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionFault(sides=((1, 2), ()), start=1.0, end=2.0)

    def test_end_must_follow_start(self):
        with pytest.raises(ConfigurationError):
            PartitionFault(sides=((1,), (2,)), start=2.0, end=2.0)

    def test_never_healing_allowed(self):
        fault = PartitionFault(sides=((1,), (2,)), start=2.0, end=None)
        assert fault.end is None

    def test_side_of(self):
        fault = PartitionFault(sides=((1, 2), (3,)), start=1.0, end=2.0)
        assert fault.side_of() == {1: 0, 2: 0, 3: 1}
        assert fault.members() == frozenset({1, 2, 3})


class TestRecoveryFault:
    def test_recover_must_follow_crash(self):
        with pytest.raises(ConfigurationError):
            RecoveryFault(1, crash=3.0, recover=3.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(
                recoveries=[
                    RecoveryFault(1, crash=1.0, recover=5.0),
                    RecoveryFault(1, crash=4.0, recover=8.0),
                ]
            )

    def test_sequential_windows_allowed(self):
        plan = FaultPlan.of(
            recoveries=[
                RecoveryFault(1, crash=4.0, recover=8.0),
                RecoveryFault(1, crash=1.0, recover=3.0),
            ]
        )
        assert len(plan.recoveries) == 2

    def test_recovery_after_permanent_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(
                crashes=[CrashFault(1, 5.0)],
                recoveries=[RecoveryFault(1, crash=6.0, recover=8.0)],
            )

    def test_recovery_before_permanent_crash_allowed(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(1, 10.0)],
            recoveries=[RecoveryFault(1, crash=2.0, recover=4.0)],
        )
        assert plan.crash_time(1) == 10.0


class TestMembershipFaults:
    def test_duplicate_join_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(joins=[JoinFault(1, 1.0), JoinFault(1, 2.0)])

    def test_duplicate_leave_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(leaves=[LeaveFault(1, 1.0), LeaveFault(1, 2.0)])

    def test_leave_and_crash_conflict(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(crashes=[CrashFault(1, 3.0)], leaves=[LeaveFault(1, 5.0)])

    def test_join_must_precede_other_faults(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(
                crashes=[CrashFault(1, 3.0)], joins=[JoinFault(1, 5.0)]
            )

    def test_join_then_crash_allowed(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(1, 8.0)], joins=[JoinFault(1, 2.0)]
        )
        assert plan.joins[0].time == 2.0

    def test_leavers_are_not_correct(self):
        plan = FaultPlan.of(leaves=[LeaveFault(2, 5.0)])
        assert plan.correct_processes([1, 2, 3]) == frozenset({1, 3})


class TestLossBurst:
    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LossBurst(start=1.0, end=2.0, rate=0.0)

    def test_rate_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            LossBurst(start=1.0, end=2.0, rate=1.5)

    def test_window_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            LossBurst(start=2.0, end=2.0, rate=0.5)

    def test_link_scoped(self):
        burst = LossBurst(start=1.0, end=2.0, rate=0.5, links=((1, 2),))
        assert burst.links == ((1, 2),)


class TestEpochQueries:
    def plan(self):
        return FaultPlan.of(
            crashes=[CrashFault(4, 8.0)],
            recoveries=[RecoveryFault(1, crash=2.0, recover=5.0)],
            joins=[JoinFault(2, 3.0)],
            leaves=[LeaveFault(3, 6.0)],
        )

    def test_down_intervals(self):
        plan = self.plan()
        assert plan.down_intervals(1, horizon=10.0) == ((2.0, 5.0),)
        assert plan.down_intervals(2, horizon=10.0) == ((0.0, 3.0),)
        assert plan.down_intervals(3, horizon=10.0) == ((6.0, 10.0),)
        assert plan.down_intervals(4, horizon=10.0) == ((8.0, 10.0),)
        assert plan.down_intervals(5, horizon=10.0) == ()

    def test_alive_at_boundaries(self):
        plan = self.plan()
        # Down intervals are [start, end): down at the crash instant,
        # alive again at the recovery instant.
        assert plan.alive_at(1, 2.0) is False
        assert plan.alive_at(1, 5.0) is True
        assert plan.alive_at(2, 3.0) is True
        assert plan.alive_at(3, 6.0) is False
        assert plan.alive_at(4, 8.0) is False
        assert plan.alive_at(4, 1e9) is False

    def test_alive_intervals_complement(self):
        plan = self.plan()
        assert plan.alive_intervals(1, horizon=10.0) == ((0.0, 2.0), (5.0, 10.0))
        assert plan.alive_intervals(2, horizon=10.0) == ((3.0, 10.0),)
        assert plan.alive_intervals(5, horizon=10.0) == ((0.0, 10.0),)

    def test_incarnation_of(self):
        plan = self.plan()
        assert plan.incarnation_of(1, 1.0) == 0
        assert plan.incarnation_of(1, 4.9) == 0
        assert plan.incarnation_of(1, 5.0) == 1
        assert plan.incarnation_of(5, 100.0) == 0

    def test_down_at(self):
        plan = self.plan()
        assert plan.down_at(0.0) == frozenset({2})
        assert plan.down_at(2.5) == frozenset({1, 2})
        assert plan.down_at(4.0) == frozenset({1})
        assert plan.down_at(9.0) == frozenset({3, 4})

    def test_down_at_matches_crashed_by_for_crash_only_plans(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.0), CrashFault(3, 5.0)])
        for t in (0.0, 1.0, 3.0, 5.0, 9.0):
            assert plan.down_at(t) == plan.crashed_by(t)

    def test_correct_at(self):
        plan = self.plan()
        assert plan.correct_at(2.5, [1, 2, 3, 4, 5]) == frozenset({3, 4, 5})
        assert plan.correct_at(9.0, [1, 2, 3, 4, 5]) == frozenset({1, 2, 5})

    def test_epoch_times(self):
        plan = self.plan()
        assert plan.epoch_times() == (2.0, 3.0, 5.0, 6.0, 8.0)

    def test_unclipped_terminal_interval(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 3.0)])
        assert plan.down_intervals(1) == ((3.0, math.inf),)


class TestMerged:
    def test_merges_all_kinds(self):
        base = FaultPlan.of(crashes=[CrashFault(1, 5.0)])
        extra = FaultPlan.of(
            partitions=[PartitionFault(sides=((2,), (3,)), start=1.0, end=2.0)],
            bursts=[LossBurst(start=1.0, end=2.0, rate=0.5)],
        )
        merged = base.merged(extra)
        assert merged.crashes == base.crashes
        assert merged.partitions == extra.partitions
        assert merged.bursts == extra.bursts

    def test_merge_revalidates(self):
        base = FaultPlan.of(crashes=[CrashFault(1, 5.0)])
        extra = FaultPlan.of(leaves=[LeaveFault(1, 8.0)])
        with pytest.raises(ConfigurationError):
            base.merged(extra)


class TestExtendedValidation:
    def test_non_member_recovery(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(9, crash=1.0, recover=2.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_non_member_partition_side(self):
        plan = FaultPlan.of(
            partitions=[PartitionFault(sides=((1,), (9,)), start=1.0, end=2.0)]
        )
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_recoveries_do_not_count_toward_f(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(1, 9.0)],
            recoveries=[
                RecoveryFault(2, crash=1.0, recover=2.0),
                RecoveryFault(3, crash=1.0, recover=2.0),
            ],
        )
        plan.validate_against([1, 2, 3], f=1)


class TestUniformCrashes:
    def test_times_within_window(self):
        plan = uniform_crashes([1, 2, 3], random.Random(4), start=5.0, end=10.0)
        assert all(5.0 <= fault.time <= 10.0 for fault in plan.crashes)
        assert plan.crashed_processes() == frozenset({1, 2, 3})

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_crashes([1], random.Random(4), start=10.0, end=5.0)
