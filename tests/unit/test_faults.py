"""Unit tests for fault plans."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.faults import CrashFault, FaultPlan, MobilityFault, uniform_crashes


class TestCrashFault:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashFault(1, -1.0)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.of(crashes=[CrashFault(1, 1.0), CrashFault(1, 2.0)])


class TestMobilityFault:
    def test_arrival_must_follow_departure(self):
        with pytest.raises(ConfigurationError):
            MobilityFault(1, depart=5.0, arrive=5.0)

    def test_never_returning_is_allowed(self):
        fault = MobilityFault(1, depart=5.0, arrive=None)
        assert fault.arrive is None


class TestGroundTruth:
    def test_correct_processes(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.0)])
        assert plan.correct_processes([1, 2, 3]) == frozenset({1, 3})

    def test_crash_time(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.5)])
        assert plan.crash_time(2) == 1.5
        assert plan.crash_time(1) is None

    def test_crashed_by(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 1.0), CrashFault(3, 5.0)])
        assert plan.crashed_by(0.5) == frozenset()
        assert plan.crashed_by(1.0) == frozenset({2})
        assert plan.crashed_by(9.0) == frozenset({2, 3})

    def test_empty_plan(self):
        plan = FaultPlan.none()
        assert plan.crashed_processes() == frozenset()


class TestValidation:
    def test_too_many_crashes_for_f(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 1.0), CrashFault(2, 2.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_non_member_crash(self):
        plan = FaultPlan.of(crashes=[CrashFault(9, 1.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_non_member_move(self):
        plan = FaultPlan.of(moves=[MobilityFault(9, 1.0, 2.0)])
        with pytest.raises(ConfigurationError):
            plan.validate_against([1, 2, 3], f=1)

    def test_valid_plan_passes(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 1.0)])
        plan.validate_against([1, 2, 3], f=1)


class TestUniformCrashes:
    def test_times_within_window(self):
        plan = uniform_crashes([1, 2, 3], random.Random(4), start=5.0, end=10.0)
        assert all(5.0 <= fault.time <= 10.0 for fault in plan.crashes)
        assert plan.crashed_processes() == frozenset({1, 2, 3})

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_crashes([1], random.Random(4), start=10.0, end=5.0)
