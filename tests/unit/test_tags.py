"""Unit tests for the counter-tagged suspicion/mistake state.

Each test cross-references the line of Algorithm 1 whose semantics it pins
down.
"""

import pytest

from repro.core import tags
from repro.core.tags import EMPTY_DELTA, MergeDelta, MergeOutcome, SuspicionState, TaggedSet


class TestTaggedSet:
    def test_add_replaces_existing_record(self):
        ts = TaggedSet()
        ts.add("a", 1)
        ts.add("a", 7)
        assert ts.tag_of("a") == 7
        assert len(ts) == 1

    def test_discard_reports_presence(self):
        ts = TaggedSet([("a", 1)])
        assert ts.discard("a") is True
        assert ts.discard("a") is False
        assert "a" not in ts

    def test_snapshot_is_sorted_and_immutable(self):
        ts = TaggedSet([("b", 2), ("a", 1)])
        snap = ts.snapshot()
        assert snap == (("a", 1), ("b", 2))
        ts.add("c", 3)
        assert snap == (("a", 1), ("b", 2))

    def test_ids_and_max_tag(self):
        ts = TaggedSet([("a", 5), ("b", 9)])
        assert ts.ids() == frozenset({"a", "b"})
        assert ts.max_tag() == 9
        assert TaggedSet().max_tag() is None

    def test_copy_is_independent(self):
        ts = TaggedSet([("a", 1)])
        clone = ts.copy()
        clone.add("a", 2)
        assert ts.tag_of("a") == 1

    def test_equality(self):
        assert TaggedSet([("a", 1)]) == TaggedSet({"a": 1})
        assert TaggedSet([("a", 1)]) != TaggedSet([("a", 2)])

    def test_iteration_order_is_deterministic(self):
        ts = TaggedSet([(3, 1), (1, 2), (2, 3)])
        assert [pid for pid, _ in ts] == [1, 2, 3]

    def test_constructor_from_mapping(self):
        ts = TaggedSet({"x": 4})
        assert ts.tag_of("x") == 4


class TestLocalSuspicion:
    """Lines 9-15: suspicions raised at the end of a query round."""

    def test_fresh_suspicion_uses_current_counter(self):
        state = SuspicionState(owner=1)
        state.counter = 5
        result = state.suspect_locally(2)
        assert result.outcome is MergeOutcome.SUSPICION_ADOPTED
        assert state.suspected.tag_of(2) == 5

    def test_already_suspected_is_ignored(self):
        state = SuspicionState(owner=1)
        state.suspect_locally(2)
        before = state.suspected.tag_of(2)
        result = state.suspect_locally(2)
        assert result.outcome is MergeOutcome.IGNORED
        assert state.suspected.tag_of(2) == before

    def test_mistake_record_bumps_counter_past_its_tag(self):
        # Lines 10-12: a prior mistake <p, c> forces counter >= c + 1 so the
        # new suspicion supersedes the stale refutation.
        state = SuspicionState(owner=1)
        state.mistakes.add(2, 9)
        state.counter = 3
        state.suspect_locally(2)
        assert state.counter == 10
        assert state.suspected.tag_of(2) == 10
        assert 2 not in state.mistakes

    def test_mistake_with_lower_tag_does_not_lower_counter(self):
        state = SuspicionState(owner=1)
        state.mistakes.add(2, 1)
        state.counter = 8
        state.suspect_locally(2)
        assert state.counter == 8
        assert state.suspected.tag_of(2) == 8

    def test_never_suspects_self(self):
        state = SuspicionState(owner=1)
        with pytest.raises(ValueError):
            state.suspect_locally(1)

    def test_end_round_increments_counter(self):
        state = SuspicionState(owner=1)
        assert state.end_round() == 1
        assert state.end_round() == 2


class TestRemoteSuspicionMerge:
    """Lines 21-31: merging a received ``suspected_j`` record."""

    def test_unknown_process_is_adopted(self):
        state = SuspicionState(owner=1)
        result = state.merge_remote_suspicion(3, 7)
        assert result.outcome is MergeOutcome.SUSPICION_ADOPTED
        assert state.suspected.tag_of(3) == 7

    def test_strictly_newer_tag_replaces_older_suspicion(self):
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(3, 5)
        state.merge_remote_suspicion(3, 9)
        assert state.suspected.tag_of(3) == 9

    def test_equal_tag_suspicion_is_ignored(self):
        # Line 22 requires counter < counter_x (strict).
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(3, 5)
        result = state.merge_remote_suspicion(3, 5)
        assert result.outcome is MergeOutcome.IGNORED

    def test_older_tag_is_ignored(self):
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(3, 5)
        result = state.merge_remote_suspicion(3, 4)
        assert result.outcome is MergeOutcome.IGNORED
        assert state.suspected.tag_of(3) == 5

    def test_newer_suspicion_cancels_standing_mistake(self):
        # Lines 27-28: adopting a suspicion removes the mistake record.
        state = SuspicionState(owner=1)
        state.mistakes.add(3, 4)
        result = state.merge_remote_suspicion(3, 6)
        assert result.outcome is MergeOutcome.SUSPICION_ADOPTED
        assert 3 not in state.mistakes

    def test_suspicion_not_newer_than_mistake_is_ignored(self):
        state = SuspicionState(owner=1)
        state.mistakes.add(3, 6)
        result = state.merge_remote_suspicion(3, 6)
        assert result.outcome is MergeOutcome.IGNORED
        assert 3 in state.mistakes

    def test_self_suspicion_triggers_refutation(self):
        # Lines 23-25: pi adds itself to mistake_i with counter past the tag.
        state = SuspicionState(owner=1)
        state.counter = 2
        result = state.merge_remote_suspicion(1, 10)
        assert result.outcome is MergeOutcome.SELF_REFUTED
        assert state.counter == 11
        assert state.mistakes.tag_of(1) == 11
        assert 1 not in state.suspected

    def test_self_refutation_keeps_higher_local_counter(self):
        state = SuspicionState(owner=1)
        state.counter = 50
        state.merge_remote_suspicion(1, 10)
        assert state.counter == 50
        assert state.mistakes.tag_of(1) == 50

    def test_stale_self_suspicion_is_ignored_after_refutation(self):
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(1, 10)
        refuted_tag = state.mistakes.tag_of(1)
        result = state.merge_remote_suspicion(1, 10)
        assert result.outcome is MergeOutcome.IGNORED
        assert state.mistakes.tag_of(1) == refuted_tag


class TestRemoteMistakeMerge:
    """Lines 32-37: merging a received ``mistake_j`` record."""

    def test_unknown_process_mistake_is_adopted(self):
        state = SuspicionState(owner=1)
        result = state.merge_remote_mistake(4, 3)
        assert result.outcome is MergeOutcome.MISTAKE_ADOPTED
        assert state.mistakes.tag_of(4) == 3

    def test_equal_tag_mistake_wins_over_suspicion(self):
        # Line 33 uses <= : on a tie the mistake takes precedence.
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(4, 5)
        result = state.merge_remote_mistake(4, 5)
        assert result.outcome is MergeOutcome.MISTAKE_ADOPTED
        assert 4 not in state.suspected
        assert state.mistakes.tag_of(4) == 5

    def test_older_mistake_is_ignored(self):
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(4, 5)
        result = state.merge_remote_mistake(4, 4)
        assert result.outcome is MergeOutcome.IGNORED
        assert 4 in state.suspected

    def test_mistake_clears_suspicion(self):
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(4, 5)
        state.merge_remote_mistake(4, 8)
        assert state.suspects() == frozenset()
        assert state.mistakes.tag_of(4) == 8

    def test_identical_mistake_is_not_readopted(self):
        # Lemma 4 relies on a repeated mistake failing line 33's predicate;
        # the <= only applies against a *suspicion* with the same tag.
        state = SuspicionState(owner=1)
        first = state.merge_remote_mistake(4, 5)
        second = state.merge_remote_mistake(4, 5)
        assert first.outcome is MergeOutcome.MISTAKE_ADOPTED
        assert second.outcome is MergeOutcome.IGNORED

    def test_strictly_newer_mistake_replaces_mistake(self):
        state = SuspicionState(owner=1)
        state.merge_remote_mistake(4, 5)
        result = state.merge_remote_mistake(4, 6)
        assert result.outcome is MergeOutcome.MISTAKE_ADOPTED
        assert state.mistakes.tag_of(4) == 6


class TestTaggedSetCaching:
    """The snapshot/ids caches and the version counter behind them."""

    def test_snapshot_is_cached_between_mutations(self):
        ts = TaggedSet([("b", 2), ("a", 1)])
        assert ts.snapshot() is ts.snapshot()
        assert ts.ids() is ts.ids()

    def test_mutation_invalidates_the_caches(self):
        ts = TaggedSet([("a", 1)])
        snap, ids = ts.snapshot(), ts.ids()
        ts.add("b", 2)
        assert ts.snapshot() == (("a", 1), ("b", 2))
        assert ts.ids() == frozenset({"a", "b"})
        assert snap == (("a", 1),)  # old tuple untouched
        assert ids == frozenset({"a"})

    def test_version_bumps_only_on_effective_change(self):
        ts = TaggedSet()
        v0 = ts.version
        ts.add("a", 1)
        v1 = ts.version
        assert v1 > v0
        ts.add("a", 1)  # identical record: not a mutation
        assert ts.version == v1
        snap = ts.snapshot()
        ts.add("a", 1)
        assert ts.snapshot() is snap
        ts.add("a", 2)  # tag replacement is a mutation
        assert ts.version > v1

    def test_discard_and_clear_bump_only_when_present(self):
        ts = TaggedSet([("a", 1)])
        v = ts.version
        assert ts.discard("missing") is False
        assert ts.version == v
        assert ts.discard("a") is True
        assert ts.version > v
        v = ts.version
        ts.clear()  # already empty: no-op
        assert ts.version == v

    def test_iteration_uses_the_cached_order(self):
        ts = TaggedSet([(3, 1), (1, 2), (2, 3)])
        assert list(ts) == list(ts.snapshot())


class TestBatchedMerges:
    """merge_query / merge_remote_suspicions / merge_remote_mistakes."""

    def _steady_state(self):
        state = SuspicionState(owner=1)
        for pid in (2, 3, 4):
            state.suspected.add(pid, 5)
        for pid in (5, 6):
            state.mistakes.add(pid, 5)
        state.counter = 10
        return state

    def test_all_stale_batch_returns_the_empty_singleton(self):
        state = self._steady_state()
        delta = state.merge_query(
            state.suspected.snapshot(), state.mistakes.snapshot()
        )
        assert delta is EMPTY_DELTA
        assert not delta

    def test_steady_state_merge_allocates_no_merge_results(self, monkeypatch):
        # The acceptance check of the batched fast path: with every record
        # stale, not a single MergeResult may be constructed.  Replacing the
        # class with a tripwire makes any construction explode.
        state = self._steady_state()
        suspected = state.suspected.snapshot()
        mistakes = state.mistakes.snapshot()

        def tripwire(*args, **kwargs):
            raise AssertionError("batched merge allocated a MergeResult")

        monkeypatch.setattr(tags, "MergeResult", tripwire)
        delta = state.merge_query(suspected, mistakes)
        assert delta is EMPTY_DELTA

    def test_adoption_is_reported_in_record_order(self):
        state = SuspicionState(owner=1)
        delta = state.merge_query(((3, 4), (2, 1)), ((4, 2),))
        assert delta.suspicions_adopted == (3, 2)
        assert delta.mistakes_adopted == (4,)
        assert not delta.self_refuted
        assert bool(delta)

    def test_self_refutation_sets_the_flag_not_the_adoption_list(self):
        state = SuspicionState(owner=1)
        state.counter = 2
        delta = state.merge_query(((1, 10),), ())
        assert delta.self_refuted
        assert delta.suspicions_adopted == ()
        assert state.counter == 11
        assert state.mistakes.tag_of(1) == 11
        assert 1 not in state.suspected

    def test_convenience_wrappers_touch_only_their_stream(self):
        state = SuspicionState(owner=1)
        sus_delta = state.merge_remote_suspicions(((2, 3),))
        assert sus_delta == MergeDelta(suspicions_adopted=(2,))
        mis_delta = state.merge_remote_mistakes(((2, 4),))
        assert mis_delta == MergeDelta(mistakes_adopted=(2,))
        assert state.mistakes.tag_of(2) == 4

    def test_tie_within_one_batch_goes_to_the_mistake(self):
        state = SuspicionState(owner=1)
        delta = state.merge_query(((2, 5),), ((2, 5),))
        assert 2 not in state.suspected
        assert state.mistakes.tag_of(2) == 5
        assert delta.suspicions_adopted == (2,)
        assert delta.mistakes_adopted == (2,)


class TestInvariants:
    def test_fresh_state_is_healthy(self):
        assert SuspicionState(owner=1).invariant_violations() == []

    def test_overlap_is_reported(self):
        state = SuspicionState(owner=1)
        state.suspected.add(2, 1)
        state.mistakes.add(2, 1)
        assert any("overlap" in p for p in state.invariant_violations())

    def test_self_suspicion_is_reported(self):
        state = SuspicionState(owner=1)
        state.suspected.add(1, 1)
        assert any("suspects itself" in p for p in state.invariant_violations())

    def test_self_mistake_tag_ahead_of_counter_is_reported(self):
        # The third documented check (previously unimplemented): a mistake
        # record about the local process is always authored locally at the
        # then-current counter, so a tag above counter_i is a corrupt state.
        state = SuspicionState(owner=1)
        state.mistakes.add(1, 7)
        state.counter = 3
        assert any("self-mistake" in p for p in state.invariant_violations())

    def test_self_mistake_at_or_below_counter_is_healthy(self):
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(1, 6)  # refutes: counter 7, tag 7
        assert state.invariant_violations() == []

    def test_remote_tags_may_exceed_the_local_counter(self):
        # Tags about OTHER processes are issued against the remote counter
        # and legitimately run ahead of ours — not a violation.
        state = SuspicionState(owner=1)
        state.merge_remote_suspicion(2, 50)
        state.merge_remote_mistake(3, 60)
        assert state.counter == 0
        assert state.invariant_violations() == []
