"""Corrupt-entry handling in the result cache.

On a shared (NFS) cache a corrupt entry means torn writes or bit rot —
very different from a cold cache — so corrupt reads must be counted
separately from plain misses, recomputed transparently, and surfaced by
both the run summary and ``repro cache info --verify``.
"""

import json

import pytest

from repro.harness import ResultCache, evaluate_cell
from repro.harness.cli import main
from repro.harness.registry import get_spec
from repro.harness.spec import cell_seed
from tests.goldens import smoke_params


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def corrupt_entry(cache, key, text):
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


class TestGet:
    def test_absent_entry_is_a_plain_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert (cache.misses, cache.corrupt) == (1, 0)

    @pytest.mark.parametrize(
        "text",
        [
            "",  # zero-length file (torn write)
            "{truncated",  # unparseable JSON
            "[1, 2, 3]",  # parseable, wrong shape
            json.dumps({"key": "f" * 64, "value": 1}),  # recorded key differs
            json.dumps({"key": "0" * 64}),  # no value field
        ],
    )
    def test_corrupt_entry_is_a_counted_miss(self, cache, text):
        key = "0" * 64
        corrupt_entry(cache, key, text)
        assert cache.get(key) is None
        assert (cache.misses, cache.corrupt) == (1, 1)

    def test_good_entry_is_a_hit(self, cache):
        key = "0" * 64
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert (cache.hits, cache.misses, cache.corrupt) == (1, 0, 0)

    def test_overwrite_heals_a_corrupt_entry(self, cache):
        key = "0" * 64
        corrupt_entry(cache, key, "{broken")
        assert cache.get(key) is None
        cache.put(key, 42)
        assert cache.get(key) == 42
        assert cache.corrupt == 1  # the one corrupt read, not ongoing


class TestEvaluateCellHealing:
    def test_corrupt_entry_is_recomputed_and_rewritten(self, cache):
        spec, params = get_spec("t2"), smoke_params()["t2"]
        coords = spec.grid(params)[0]
        seed = cell_seed(spec.exp_id, coords, params.seed)
        value, hit = evaluate_cell(spec, params, coords, seed, cache=cache)
        assert not hit
        key = cache.key_for(spec.exp_id, params, coords)
        corrupt_entry(cache, key, "{torn write")
        healed, hit = evaluate_cell(spec, params, coords, seed, cache=cache)
        assert not hit  # recomputed, not served
        assert healed == value
        assert cache.corrupt == 1
        # The rewrite healed the entry: next read is a hit again.
        _, hit = evaluate_cell(spec, params, coords, seed, cache=cache)
        assert hit


class TestStatsVerify:
    def test_cheap_stats_do_not_verify(self, cache):
        corrupt_entry(cache, "0" * 64, "{broken")
        assert cache.stats().corrupt == 0
        assert cache.stats().entries == 1

    def test_verify_counts_corrupt_entries(self, cache):
        cache.put("a" * 64, 1)
        corrupt_entry(cache, "b" * 64, "{broken")
        corrupt_entry(cache, "c" * 64, json.dumps({"key": "wrong", "value": 1}))
        stats = cache.stats(verify=True)
        assert (stats.entries, stats.corrupt) == (3, 2)


class TestCli:
    def test_cache_info_verify_flags_corruption(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, 1)
        assert main(["cache", "info", "--dir", str(tmp_path), "--verify"]) == 0
        assert "0 corrupt" in capsys.readouterr().out
        corrupt_entry(cache, "b" * 64, "{broken")
        assert main(["cache", "info", "--dir", str(tmp_path), "--verify"]) == 1
        assert "1 corrupt" in capsys.readouterr().out

    def test_run_summary_reports_recomputed_corrupt_entries(self, tmp_path, capsys):
        out = tmp_path / "results"
        argv = ["run", "t2", "--out", str(out), "--quiet"]
        assert main(argv) == 0
        capsys.readouterr()
        # Corrupt every cached entry, then rerun: the summary must say so.
        cache = ResultCache(out / ".cache")
        entries = [path for path, _stat in cache._entries()]
        assert entries
        for path in entries:
            path.write_text("{torn", encoding="utf-8")
        assert main(argv) == 0
        summary = capsys.readouterr().out.splitlines()[-1]
        assert f"{len(entries)} corrupt cache entries recomputed" in summary
        assert "(0 cached)" in summary
