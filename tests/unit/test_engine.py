"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Scheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(3.0, fired.append, "c")
        scheduler.schedule_at(1.0, fired.append, "a")
        scheduler.schedule_at(2.0, fired.append, "b")
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        scheduler = Scheduler()
        fired = []
        for tag in ("first", "second", "third"):
            scheduler.schedule_at(1.0, fired.append, tag)
        scheduler.run()
        assert fired == ["first", "second", "third"]

    def test_now_tracks_current_event(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(2.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]

    def test_schedule_after_is_relative(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(1.0, lambda: scheduler.schedule_after(0.5, lambda: seen.append(scheduler.now)))
        scheduler.run()
        assert seen == [1.5]

    def test_scheduling_in_the_past_is_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_negative_delay_is_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule_after(-1.0, lambda: None)


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(1.0, fired.append, "early")
        scheduler.schedule_at(10.0, fired.append, "late")
        scheduler.run(until=5.0)
        assert fired == ["early"]
        assert scheduler.now == 5.0

    def test_run_until_can_resume(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(1.0, fired.append, "a")
        scheduler.schedule_at(10.0, fired.append, "b")
        scheduler.run(until=5.0)
        scheduler.run(until=15.0)
        assert fired == ["a", "b"]

    def test_run_until_in_the_past_is_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run(until=5.0)
        with pytest.raises(SimulationError):
            scheduler.run(until=1.0)

    def test_max_events_bounds_processing(self):
        scheduler = Scheduler()
        fired = []
        for i in range(10):
            scheduler.schedule_at(float(i), fired.append, i)
        processed = scheduler.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_max_events_break_does_not_jump_clock_past_pending_events(self):
        # Regression: `run(until=U, max_events=k)` used to advance `now` to
        # U even when events earlier than U were still pending, so the next
        # `run` call moved time backwards through them.
        scheduler = Scheduler()
        fired = []
        for i in (1.0, 2.0, 3.0):
            scheduler.schedule_at(i, fired.append, i)
        scheduler.run(until=10.0, max_events=1)
        assert fired == [1.0]
        assert scheduler.now == 1.0  # not 10.0: events at 2.0/3.0 pending
        seen = []
        scheduler.schedule_at(1.5, lambda: seen.append(scheduler.now))
        scheduler.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert seen == [1.5]
        assert scheduler.now == 10.0

    def test_max_events_break_with_no_pending_earlier_events_resumes_cleanly(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(1.0, fired.append, "a")
        scheduler.schedule_at(20.0, fired.append, "b")
        scheduler.run(until=10.0, max_events=1)
        # The remaining event is beyond `until`; a follow-up bounded run
        # must still reach `until` without touching it.
        scheduler.run(until=10.0)
        assert fired == ["a"]
        assert scheduler.now == 10.0

    def test_stop_halts_the_loop(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("x")
            scheduler.stop()

        scheduler.schedule_at(1.0, first)
        scheduler.schedule_at(2.0, fired.append, "y")
        scheduler.run()
        assert fired == ["x"]

    def test_events_processed_counter(self):
        scheduler = Scheduler()
        for i in range(4):
            scheduler.schedule_at(float(i), lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule_at(1.0, fired.append, "no")
        scheduler.schedule_at(2.0, fired.append, "yes")
        assert handle.cancel() is True
        scheduler.run()
        assert fired == ["yes"]

    def test_double_cancel_reports_false(self):
        scheduler = Scheduler()
        handle = scheduler.schedule_at(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancel_after_fire_reports_false(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule_at(1.0, fired.append, "x")
        scheduler.run()
        assert fired == ["x"]
        assert handle.fired is True
        assert handle.cancel() is False
        assert handle.cancelled is False

    def test_pending_events_excludes_cancelled(self):
        scheduler = Scheduler()
        scheduler.schedule_at(1.0, lambda: None)
        handle = scheduler.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert scheduler.pending_events() == 1

    def test_cancel_during_callback_suppresses_later_event(self):
        scheduler = Scheduler()
        fired = []
        doomed = scheduler.schedule_at(2.0, fired.append, "no")
        scheduler.schedule_at(1.0, lambda: doomed.cancel())
        scheduler.run()
        assert fired == []


@pytest.fixture(params=["wheel", "heap"])
def backend(request):
    return request.param


class TestLazyDeletion:
    """Lazy-deletion cancellation (with sweeping) must never change semantics,
    on either backend."""

    def test_mass_cancellation_triggers_sweep(self, backend):
        # Enough cancellations to cross either backend's sweep trigger
        # (the wheel's is deliberately high — cascade reaps for it).
        count = 20000
        scheduler = Scheduler(backend=backend)
        fired = []
        handles = [scheduler.schedule_at(1.0 + i, fired.append, i) for i in range(count)]
        survivors = [i for i in range(count) if i % 7 == 0]
        for i, handle in enumerate(handles):
            if i % 7 != 0:
                assert handle.cancel() is True
        # Sweeping has reclaimed cancelled entries from the queue structure...
        if backend == "heap":
            assert len(scheduler._heap) < count
        else:
            assert scheduler._l0_count + len(scheduler._spill) + sum(
                len(block) for block in scheduler._l1
            ) < count
        assert scheduler.pending_events() == len(survivors)
        # ...and the surviving events still fire, in order.
        scheduler.run()
        assert fired == survivors

    def test_determinism_under_interleaved_cancel(self, backend):
        """Identical schedule/cancel scripts produce identical fire sequences
        whether or not sweeping kicked in along the way."""

        def script(cancel_batch: int) -> list[int]:
            scheduler = Scheduler(backend=backend)
            fired = []
            handles = {}
            for i in range(300):
                handles[i] = scheduler.schedule_at(float(i % 13) + 1.0, fired.append, i)
            for i in range(0, 300, cancel_batch):
                handles[i].cancel()
            scheduler.run()
            return fired

        # cancel_batch=2 cancels every other event; cancel_batch=300 only one.
        fired_compacted = script(2)
        fired_quiet = script(300)
        expected_all = sorted(range(300), key=lambda i: (float(i % 13) + 1.0, i))
        assert fired_quiet == [i for i in expected_all if i % 300 != 0]
        assert fired_compacted == [i for i in expected_all if i % 2 != 0]

    def test_same_timestamp_order_survives_sweep(self, backend):
        scheduler = Scheduler(backend=backend)
        fired = []
        keepers = [scheduler.schedule_at(5.0, fired.append, f"k{i}") for i in range(5)]
        doomed = [scheduler.schedule_at(5.0, fired.append, f"d{i}") for i in range(200)]
        for handle in doomed:
            handle.cancel()
        assert all(not handle.cancelled for handle in keepers)
        scheduler.run()
        assert fired == [f"k{i}" for i in range(5)]


class TestBackendSelection:
    def test_default_backend_is_wheel(self):
        assert Scheduler().backend == "wheel"

    def test_heap_backend_is_selectable_and_isinstance_compatible(self):
        scheduler = Scheduler(backend="heap")
        assert scheduler.backend == "heap"
        assert isinstance(scheduler, Scheduler)

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler(backend="btree")


class TestTimerWheelTiers:
    """Exercise the wheel's level-1 and spill tiers explicitly."""

    def test_far_future_events_cross_tiers_in_order(self):
        from repro.sim.engine import _DEFAULT_QUANTUM, _L0_SIZE, _SPAN

        scheduler = Scheduler()
        fired = []
        # One event per tier: level-0, level-1, and the sorted spill list.
        times = [
            _DEFAULT_QUANTUM * (_L0_SIZE // 2),
            _DEFAULT_QUANTUM * (_L0_SIZE * 4),
            _DEFAULT_QUANTUM * (_SPAN * 3),
        ]
        for t in reversed(times):
            scheduler.schedule_at(t, fired.append, t)
        scheduler.run()
        assert fired == times
        assert scheduler.now == times[-1]

    def test_spill_events_share_a_tick_with_wheel_events(self):
        from repro.sim.engine import _DEFAULT_QUANTUM, _SPAN

        scheduler = Scheduler()
        fired = []
        far = _DEFAULT_QUANTUM * (_SPAN + 10)
        # Scheduled while far away (goes to spill), then the wheel advances
        # and a same-time event lands in level 0 directly.
        scheduler.schedule_at(far, fired.append, "spilled")
        scheduler.schedule_at(far - 1.0, lambda: scheduler.schedule_at(far, fired.append, "direct"))
        scheduler.run()
        assert fired == ["spilled", "direct"]

    def test_cancelled_spill_events_are_reclaimed(self):
        from repro.sim.engine import _DEFAULT_QUANTUM, _SPAN

        count = 20000  # enough to cross the wheel's sweep trigger
        scheduler = Scheduler()
        far = _DEFAULT_QUANTUM * _SPAN * 2
        handles = [scheduler.schedule_at(far + i, lambda: None) for i in range(count)]
        for handle in handles[:-1]:
            handle.cancel()
        assert scheduler.pending_events() == 1
        assert len(scheduler._spill) < count
        scheduler.run()
        assert scheduler.events_processed == 1

    def test_same_tick_preserves_schedule_order_across_insert_paths(self):
        from repro.sim.engine import _DEFAULT_QUANTUM

        scheduler = Scheduler()
        fired = []
        # Distinct float times within one wheel tick must still fire in
        # (time, seq) order, not insertion order.
        tick_base = _DEFAULT_QUANTUM * 100
        scheduler.schedule_at(tick_base + _DEFAULT_QUANTUM * 0.75, fired.append, "late")
        scheduler.schedule_at(tick_base + _DEFAULT_QUANTUM * 0.25, fired.append, "early")
        scheduler.run()
        assert fired == ["early", "late"]

    def test_reentrant_schedule_into_current_tick_fires_this_run(self):
        scheduler = Scheduler()
        fired = []

        def chain():
            fired.append("first")
            scheduler.schedule_at(scheduler.now, fired.append, "second")

        scheduler.schedule_at(1.0, chain)
        scheduler.run()
        assert fired == ["first", "second"]


class TestScheduleBatch:
    def test_batch_fires_in_time_then_insertion_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_batch(
            [
                (2.0, fired.append, ("late",)),
                (1.0, fired.append, ("early",)),
                (2.0, fired.append, ("late-2",)),
            ]
        )
        scheduler.run()
        assert fired == ["early", "late", "late-2"]

    def test_batch_interleaves_with_singly_scheduled_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(1.0, fired.append, "single")
        scheduler.schedule_batch([(1.0, fired.append, ("batched",))])
        scheduler.run()
        assert fired == ["single", "batched"]

    def test_batch_handles_cancel(self):
        scheduler = Scheduler()
        fired = []
        handles = scheduler.schedule_batch(
            [(1.0, fired.append, (i,)) for i in range(4)]
        )
        handles[1].cancel()
        scheduler.run()
        assert fired == [0, 2, 3]
        assert [handle.fired for handle in handles] == [True, False, True, True]

    def test_batch_in_the_past_is_rejected_atomically(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_batch([(6.0, lambda: None, ()), (1.0, lambda: None, ())])
        # The valid first item must not have been committed.
        assert scheduler.pending_events() == 0

    def test_empty_batch_is_a_no_op(self):
        scheduler = Scheduler()
        assert scheduler.schedule_batch([]) == []
        assert scheduler.pending_events() == 0

    def test_batch_matches_sequential_scheduling_exactly(self):
        """A batch and the equivalent schedule_at loop fire identically."""
        items = [((i * 7) % 5 + 1.0, i) for i in range(50)]

        def run_with(batch: bool) -> list[int]:
            scheduler = Scheduler()
            fired = []
            if batch:
                scheduler.schedule_batch(
                    [(t, fired.append, (i,)) for t, i in items]
                )
            else:
                for t, i in items:
                    scheduler.schedule_at(t, fired.append, i)
            scheduler.run()
            return fired

        assert run_with(batch=True) == run_with(batch=False)
