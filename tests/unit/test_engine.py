"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Scheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(3.0, fired.append, "c")
        scheduler.schedule_at(1.0, fired.append, "a")
        scheduler.schedule_at(2.0, fired.append, "b")
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        scheduler = Scheduler()
        fired = []
        for tag in ("first", "second", "third"):
            scheduler.schedule_at(1.0, fired.append, tag)
        scheduler.run()
        assert fired == ["first", "second", "third"]

    def test_now_tracks_current_event(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(2.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]

    def test_schedule_after_is_relative(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(1.0, lambda: scheduler.schedule_after(0.5, lambda: seen.append(scheduler.now)))
        scheduler.run()
        assert seen == [1.5]

    def test_scheduling_in_the_past_is_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_negative_delay_is_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule_after(-1.0, lambda: None)


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(1.0, fired.append, "early")
        scheduler.schedule_at(10.0, fired.append, "late")
        scheduler.run(until=5.0)
        assert fired == ["early"]
        assert scheduler.now == 5.0

    def test_run_until_can_resume(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(1.0, fired.append, "a")
        scheduler.schedule_at(10.0, fired.append, "b")
        scheduler.run(until=5.0)
        scheduler.run(until=15.0)
        assert fired == ["a", "b"]

    def test_run_until_in_the_past_is_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run(until=5.0)
        with pytest.raises(SimulationError):
            scheduler.run(until=1.0)

    def test_max_events_bounds_processing(self):
        scheduler = Scheduler()
        fired = []
        for i in range(10):
            scheduler.schedule_at(float(i), fired.append, i)
        processed = scheduler.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_stop_halts_the_loop(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("x")
            scheduler.stop()

        scheduler.schedule_at(1.0, first)
        scheduler.schedule_at(2.0, fired.append, "y")
        scheduler.run()
        assert fired == ["x"]

    def test_events_processed_counter(self):
        scheduler = Scheduler()
        for i in range(4):
            scheduler.schedule_at(float(i), lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule_at(1.0, fired.append, "no")
        scheduler.schedule_at(2.0, fired.append, "yes")
        assert handle.cancel() is True
        scheduler.run()
        assert fired == ["yes"]

    def test_double_cancel_reports_false(self):
        scheduler = Scheduler()
        handle = scheduler.schedule_at(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_pending_events_excludes_cancelled(self):
        scheduler = Scheduler()
        scheduler.schedule_at(1.0, lambda: None)
        handle = scheduler.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert scheduler.pending_events() == 1
