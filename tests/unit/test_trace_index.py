"""Property tests: indexed timeline queries == the old linear-scan results.

The per-observer trace index must be observationally invisible: for every
query and every (time-ordered, as the scheduler guarantees) trace, the
indexed implementation returns results identical to the pre-index
full-trace scans.  The originals are kept here verbatim as private
reference oracles and both are run over randomized traces.

Every test runs under both the columnar store and the object-recorder
oracle backend — the reference scans read the materialized
``suspicion_changes`` view, which both backends must serve identically.
"""

import random

import pytest

from repro.sim.trace import TraceRecorder


@pytest.fixture(params=["columnar", "object"])
def backend(request):
    return request.param

# ---------------------------------------------------------------------------
# reference oracles: the pre-index linear-scan implementations, verbatim
# ---------------------------------------------------------------------------


def _ref_changes_of(trace, observer):
    return [c for c in trace.suspicion_changes if c.observer == observer]


def _ref_suspects_at(trace, observer, time):
    result = frozenset()
    for change in trace.suspicion_changes:
        if change.time > time:
            break
        if change.observer == observer:
            result = change.suspects
    return result


def _ref_first_suspicion_time(trace, observer, target, *, after=0.0):
    for change in trace.suspicion_changes:
        if change.time < after or change.observer != observer:
            continue
        if target in change.added:
            return change.time
    return None


def _ref_permanent_suspicion_time(trace, observer, target):
    start = None
    suspected = False
    for change in trace.suspicion_changes:
        if change.observer != observer:
            continue
        if target in change.added and not suspected:
            suspected = True
            start = change.time
        elif target in change.removed and suspected:
            suspected = False
            start = None
    return start if suspected else None


def _ref_suspicion_intervals(trace, observer, target, *, horizon):
    intervals = []
    start = None
    for change in trace.suspicion_changes:
        if change.observer != observer:
            continue
        if target in change.added and start is None:
            start = change.time
        elif target in change.removed and start is not None:
            intervals.append((start, change.time))
            start = None
    if start is not None:
        intervals.append((start, horizon))
    return intervals


def _ref_false_suspicion_count_at(trace, time, crashed):
    count = 0
    per_observer = {}
    for change in trace.suspicion_changes:
        if change.time > time:
            break
        per_observer[change.observer] = change.suspects
    for suspects in per_observer.values():
        count += sum(1 for target in suspects if target not in crashed)
    return count


def _ref_rounds_of(trace, querier):
    return [r for r in trace.rounds if r.querier == querier]


# ---------------------------------------------------------------------------
# randomized traces
# ---------------------------------------------------------------------------


def random_trace(seed, *, observers=6, changes=120, backend="columnar"):
    """A time-ordered random trace, as the simulator would record it."""
    rng = random.Random(seed)
    ids = list(range(1, observers + 1))
    trace = TraceRecorder(backend=backend)
    current = {pid: frozenset() for pid in ids}
    now = 0.0
    for _ in range(changes):
        now += rng.choice([0.0, rng.random()])  # duplicate timestamps too
        observer = rng.choice(ids)
        after = frozenset(rng.sample(ids, rng.randrange(0, observers)))
        trace.record_suspicion_change(now, observer, current[observer], after)
        current[observer] = after
    return trace, ids, now


QUERY_TIMES = [0.0, 0.5, 3.7, 1e9]


@pytest.mark.parametrize("seed", range(12))
def test_indexed_queries_match_linear_scan_oracles(seed, backend):
    trace, ids, end = random_trace(seed, backend=backend)
    horizon = end + 1.0
    sample_times = QUERY_TIMES + [end * f for f in (0.25, 0.5, 0.75, 1.0)]
    for observer in ids:
        assert trace.changes_of(observer) == _ref_changes_of(trace, observer)
        for t in sample_times:
            assert trace.suspects_at(observer, t) == _ref_suspects_at(
                trace, observer, t
            )
        for target in ids:
            assert trace.first_suspicion_time(observer, target) == (
                _ref_first_suspicion_time(trace, observer, target)
            )
            for after in sample_times:
                assert trace.first_suspicion_time(
                    observer, target, after=after
                ) == _ref_first_suspicion_time(trace, observer, target, after=after)
            assert trace.permanent_suspicion_time(observer, target) == (
                _ref_permanent_suspicion_time(trace, observer, target)
            )
            assert trace.suspicion_intervals(
                observer, target, horizon=horizon
            ) == _ref_suspicion_intervals(trace, observer, target, horizon=horizon)
    crash_sets = [frozenset(), frozenset(ids[:2]), frozenset(ids)]
    for t in sample_times:
        for crashed in crash_sets:
            assert trace.false_suspicion_count_at(t, crashed) == (
                _ref_false_suspicion_count_at(trace, t, crashed)
            )


@pytest.mark.parametrize("seed", range(4))
def test_index_stays_correct_across_interleaved_appends_and_reads(seed, backend):
    """Reads may interleave with appends: the index must pick up new tail."""
    rng = random.Random(seed)
    ids = [1, 2, 3]
    trace = TraceRecorder(backend=backend)
    current = {pid: frozenset() for pid in ids}
    now = 0.0
    for step in range(60):
        now += rng.random()
        observer = rng.choice(ids)
        after = frozenset(rng.sample(ids, rng.randrange(0, 3)))
        trace.record_suspicion_change(now, observer, current[observer], after)
        current[observer] = after
        if step % 7 == 0:  # read mid-append: index must extend incrementally
            for obs in ids:
                assert trace.suspects_at(obs, now) == _ref_suspects_at(
                    trace, obs, now
                )
                assert trace.changes_of(obs) == _ref_changes_of(trace, obs)
    for obs in ids:
        for target in ids:
            assert trace.permanent_suspicion_time(obs, target) == (
                _ref_permanent_suspicion_time(trace, obs, target)
            )


def test_index_rebuilds_after_wholesale_list_replacement(backend):
    """Fixtures may replace ``suspicion_changes`` outright; detect shrinkage."""
    trace, ids, end = random_trace(99, observers=3, changes=30, backend=backend)
    trace.changes_of(1)  # force the index
    kept = trace.suspicion_changes[:5]
    trace.suspicion_changes = kept
    assert trace.changes_of(1) == _ref_changes_of(trace, 1)
    assert trace.suspects_at(1, end) == _ref_suspects_at(trace, 1, end)


def test_index_rebuilds_after_same_length_list_replacement(backend):
    """Replacement is detected by identity, not just by length changes."""
    import dataclasses

    trace, ids, end = random_trace(17, observers=3, changes=30, backend=backend)
    trace.changes_of(1)  # force the index on the original list
    replacement = list(trace.suspicion_changes)
    replacement[0] = dataclasses.replace(
        replacement[0],
        suspects=frozenset({99}),
        added=frozenset({99}),
        removed=frozenset(),
    )
    trace.suspicion_changes = replacement  # same length, different content
    for obs in ids:
        assert trace.changes_of(obs) == _ref_changes_of(trace, obs)
        assert trace.suspects_at(obs, end) == _ref_suspects_at(trace, obs, end)
    assert trace.first_suspicion_time(replacement[0].observer, 99) == (
        _ref_first_suspicion_time(trace, replacement[0].observer, 99)
    )


def test_index_rebuilds_after_in_place_truncation(backend):
    trace, ids, end = random_trace(23, observers=3, changes=30, backend=backend)
    trace.changes_of(1)  # force the index
    del trace.suspicion_changes[10:]
    for obs in ids:
        assert trace.changes_of(obs) == _ref_changes_of(trace, obs)
        assert trace.permanent_suspicion_time(obs, 1) == (
            _ref_permanent_suspicion_time(trace, obs, 1)
        )


def test_rounds_index_matches_linear_scan(backend):
    from repro.sim.trace import RoundRecord

    rng = random.Random(7)
    trace = TraceRecorder(backend=backend)
    for i in range(40):
        querier = rng.choice([1, 2, 3])
        trace.record_round(
            RoundRecord(querier, i, float(i), i + 0.1, i + 0.2, (1, 2), frozenset())
        )
        if i % 9 == 0:
            for q in (1, 2, 3):
                assert trace.rounds_of(q) == _ref_rounds_of(trace, q)
    for q in (1, 2, 3, 4):
        assert trace.rounds_of(q) == _ref_rounds_of(trace, q)
