"""Unit tests for the microbench harness (workload registry, --mem protocol).

The floors themselves are exercised by the bench-gate in CI; here we pin
the payload *shape* — especially the ``--mem`` cells the trace workload's
memory claim in ``benchmarks/BENCH_MICRO.json`` is built from — with a
deliberately tiny event count so the suite stays fast.
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness.microbench import (
    WORKLOADS,
    bench_trace,
    microbench_table,
    run_microbench,
)

EVENTS = 2_000  # bench_trace clamps per-observer records, so this is quick


class TestRegistry:
    def test_trace_workloads_registered(self):
        assert "trace" in WORKLOADS
        assert "trace-query" in WORKLOADS

    def test_consensus_workload_registered_with_a_floor(self):
        import json
        from pathlib import Path

        assert "consensus" in WORKLOADS
        floors = json.loads(
            Path("benchmarks/bench_floors.json").read_text(encoding="utf-8")
        )["floors_kev_per_s"]
        assert floors["consensus"] > 0

    def test_unknown_workload_is_a_clear_error(self):
        with pytest.raises(ConfigurationError, match="no_such_workload"):
            run_microbench(events=EVENTS, only=("no_such_workload",))

    def test_trace_workload_has_a_mem_baseline(self):
        # The --mem ratio is only honest if the baseline is the object
        # backend driven through the *same* recording and query script.
        assert callable(getattr(bench_trace, "mem_baseline", None))


class TestMemProtocol:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_microbench(events=EVENTS, only=("trace",), mem=True)

    def test_cell_shape(self, payload):
        (cell,) = payload["cells"]
        assert cell["coords"] == {"workload": "trace"}
        value = cell["value"]
        assert {"events", "seconds", "kev_per_s"} <= value.keys()
        assert value["peak_kb"] > 0
        assert value["baseline_peak_kb"] > 0
        assert value["mem_ratio"] == round(
            value["baseline_peak_kb"] / value["peak_kb"], 1
        )

    def test_params_record_the_mem_flag(self, payload):
        assert payload["params"]["mem"] is True
        assert payload["params"]["workloads"] == ["trace"]

    def test_table_grows_a_peak_column_and_a_ratio_note(self, payload):
        table = microbench_table(payload)
        assert table.headers[-1] == "peak KiB"
        assert any("object-backend baseline" in note for note in table.notes)

    def test_without_mem_no_memory_keys(self):
        payload = run_microbench(events=EVENTS, only=("trace",))
        (cell,) = payload["cells"]
        assert "peak_kb" not in cell["value"]
        assert payload["params"]["mem"] is False
        assert microbench_table(payload).headers[-1] == "kev/s"
