"""Unit tests for seeded random streams."""

from repro.sim.rng import RngStreams


class TestStreams:
    def test_same_name_returns_same_stream_object(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_are_independent(self):
        streams = RngStreams(1)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_same_seed_reproduces_draws(self):
        first = RngStreams(42).stream("net").random()
        second = RngStreams(42).stream("net").random()
        assert first == second

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("net").random() != RngStreams(2).stream("net").random()

    def test_adding_a_consumer_does_not_perturb_existing_streams(self):
        # The whole point of named streams: draws of "a" are identical
        # whether or not someone else ever touches "b".
        lone = RngStreams(7)
        seq_alone = [lone.stream("a").random() for _ in range(5)]
        shared = RngStreams(7)
        shared.stream("b").random()  # extra consumer
        seq_shared = [shared.stream("a").random() for _ in range(5)]
        assert seq_alone == seq_shared

    def test_multipart_names(self):
        streams = RngStreams(1)
        assert streams.stream("net", 1, "delay") is streams.stream("net", 1, "delay")
        assert streams.stream("net", 1) is not streams.stream("net", 2)

    def test_seed_property(self):
        assert RngStreams(9).seed == 9
