"""Unit tests for the latency models."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.latency import (
    BiasedLatency,
    ConstantLatency,
    ExponentialLatency,
    LogNormalLatency,
    PairwiseLatency,
    ParetoLatency,
    RegimeShiftLatency,
    UniformLatency,
)


def draws(model, count=2000, seed=7, src=1, dst=2):
    rng = random.Random(seed)
    return [model.sample(rng, src, dst) for _ in range(count)]


class TestConstant:
    def test_no_jitter_is_exact(self):
        assert draws(ConstantLatency(0.5), count=5) == [0.5] * 5

    def test_jitter_stays_in_band(self):
        values = draws(ConstantLatency(0.5, jitter=0.2))
        assert all(0.5 <= v <= 0.7 for v in values)

    def test_mean(self):
        assert ConstantLatency(0.5, jitter=0.2).mean() == pytest.approx(0.6)

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(0.0)


class TestUniform:
    def test_band(self):
        values = draws(UniformLatency(0.1, 0.3))
        assert all(0.1 <= v <= 0.3 for v in values)

    def test_mean(self):
        assert UniformLatency(0.1, 0.3).mean() == pytest.approx(0.2)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.3, 0.1)


class TestExponential:
    def test_empirical_mean_close_to_parameter(self):
        values = draws(ExponentialLatency(mean=0.01), count=20_000)
        assert sum(values) / len(values) == pytest.approx(0.01, rel=0.05)

    def test_floor_is_respected(self):
        values = draws(ExponentialLatency(mean=0.01, floor=0.005))
        assert all(v >= 0.005 for v in values)

    def test_mean_includes_floor(self):
        assert ExponentialLatency(0.01, floor=0.005).mean() == pytest.approx(0.015)


class TestLogNormal:
    def test_median_is_respected(self):
        values = sorted(draws(LogNormalLatency(median=0.01, sigma=1.0), count=20_000))
        empirical_median = values[len(values) // 2]
        assert empirical_median == pytest.approx(0.01, rel=0.1)

    def test_sigma_zero_degenerates_to_median(self):
        values = draws(LogNormalLatency(median=0.01, sigma=0.0), count=10)
        assert all(v == pytest.approx(0.01) for v in values)

    def test_mean_formula(self):
        model = LogNormalLatency(median=0.01, sigma=1.0)
        assert model.mean() == pytest.approx(0.01 * math.exp(0.5))


class TestPareto:
    def test_minimum_is_scale(self):
        values = draws(ParetoLatency(scale=0.002, shape=2.0))
        assert all(v >= 0.002 for v in values)

    def test_infinite_mean_below_shape_one(self):
        assert ParetoLatency(scale=1.0, shape=0.9).mean() == math.inf

    def test_finite_mean(self):
        assert ParetoLatency(scale=1.0, shape=3.0).mean() == pytest.approx(1.5)


class TestBiased:
    def test_favored_sender_is_faster(self):
        model = BiasedLatency(ConstantLatency(0.8), frozenset({1}), speedup=4.0)
        rng = random.Random(1)
        assert model.sample(rng, 1, 2) == pytest.approx(0.2)
        assert model.sample(rng, 2, 3) == pytest.approx(0.8)

    def test_bidirectional_speeds_up_inbound_too(self):
        model = BiasedLatency(
            ConstantLatency(0.8), frozenset({1}), speedup=4.0, bidirectional=True
        )
        rng = random.Random(1)
        assert model.sample(rng, 2, 1) == pytest.approx(0.2)

    def test_unidirectional_leaves_inbound_alone(self):
        model = BiasedLatency(
            ConstantLatency(0.8), frozenset({1}), speedup=4.0, bidirectional=False
        )
        rng = random.Random(1)
        assert model.sample(rng, 2, 1) == pytest.approx(0.8)

    def test_slowdown_with_speedup_below_one(self):
        model = BiasedLatency(ConstantLatency(0.8), frozenset({1}), speedup=0.5)
        rng = random.Random(1)
        assert model.sample(rng, 1, 2) == pytest.approx(1.6)

    def test_rejects_nonpositive_speedup(self):
        with pytest.raises(ConfigurationError):
            BiasedLatency(ConstantLatency(1.0), frozenset(), speedup=0.0)


class TestPairwise:
    def test_override_applies_to_directed_pair(self):
        model = PairwiseLatency(
            ConstantLatency(0.1), {(1, 2): ConstantLatency(0.9)}
        )
        rng = random.Random(1)
        assert model.sample(rng, 1, 2) == pytest.approx(0.9)
        assert model.sample(rng, 2, 1) == pytest.approx(0.1)


class TestRegimeShift:
    def test_before_shift_uses_base(self):
        model = RegimeShiftLatency(ConstantLatency(0.1), shift_at=10.0, factor=5.0)
        rng = random.Random(1)
        assert model.sample_at(rng, 1, 2, now=9.9) == pytest.approx(0.1)

    def test_after_shift_multiplies(self):
        model = RegimeShiftLatency(ConstantLatency(0.1), shift_at=10.0, factor=5.0)
        rng = random.Random(1)
        assert model.sample_at(rng, 1, 2, now=10.0) == pytest.approx(0.5)

    def test_plain_sample_is_rejected(self):
        model = RegimeShiftLatency(ConstantLatency(0.1), shift_at=10.0, factor=5.0)
        with pytest.raises(ConfigurationError):
            model.sample(random.Random(1), 1, 2)

    def test_composes_under_bias(self):
        # BiasedLatency must propagate the time-aware path to its base.
        shifted = RegimeShiftLatency(ConstantLatency(0.4), shift_at=5.0, factor=10.0)
        model = BiasedLatency(shifted, frozenset({1}), speedup=4.0)
        rng = random.Random(1)
        assert model.sample_at(rng, 1, 2, now=6.0) == pytest.approx(1.0)
        assert model.sample_at(rng, 2, 3, now=6.0) == pytest.approx(4.0)


class TestDefaultSampleAt:
    def test_stationary_models_ignore_time(self):
        model = ConstantLatency(0.3)
        rng = random.Random(1)
        assert model.sample_at(rng, 1, 2, now=999.0) == pytest.approx(0.3)


class TestSampleMany:
    """Batch sampling must consume the RNG exactly like sequential calls."""

    MODELS = [
        ConstantLatency(0.5),
        ConstantLatency(0.5, jitter=0.2),
        UniformLatency(0.1, 0.9),
        ExponentialLatency(0.001),
        ExponentialLatency(0.001, floor=0.0005),
        LogNormalLatency(0.01, 1.2, floor=0.001),
        ParetoLatency(0.002, 1.5),
        BiasedLatency(ExponentialLatency(0.001), frozenset({3}), 4.0),
        BiasedLatency(
            UniformLatency(0.1, 0.2), frozenset({1}), 2.0, bidirectional=False
        ),
        PairwiseLatency(
            ConstantLatency(0.3), {(1, 4): ConstantLatency(0.9, jitter=0.1)}
        ),
    ]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_batch_equals_sequential_sample_at(self, model):
        dsts = [2, 3, 4, 5, 6, 7]
        sequential = [
            model.sample_at(random.Random(42), 1, dst, 0.0) for dst in [2]
        ]  # warm-up sanity: model is usable
        assert sequential[0] > 0
        rng_a, rng_b = random.Random(7), random.Random(7)
        expected = [model.sample_at(rng_a, 1, dst, 5.0) for dst in dsts]
        got = model.sample_many(rng_b, 1, dsts, 5.0)
        assert got == expected
        # The two RNGs must also end in the same state (no extra draws).
        assert rng_a.random() == rng_b.random()

    @pytest.mark.parametrize("now", [0.0, 10.0])
    def test_regime_shift_batch_matches_sequential(self, now):
        model = RegimeShiftLatency(ExponentialLatency(0.001), shift_at=5.0, factor=3.0)
        dsts = [2, 3, 4, 5]
        rng_a, rng_b = random.Random(3), random.Random(3)
        expected = [model.sample_at(rng_a, 1, dst, now) for dst in dsts]
        assert model.sample_many(rng_b, 1, dsts, now) == expected

    def test_empty_destination_list(self):
        assert ConstantLatency(0.5).sample_many(random.Random(1), 1, [], 0.0) == []
        assert ExponentialLatency(0.01).sample_many(random.Random(1), 1, [], 0.0) == []
