"""Unit tests for the unknown-membership / partial-connectivity detector."""

import pytest

from repro.core.messages import Query, Response
from repro.errors import ConfigurationError, ProtocolError
from repro.partial import PartialDetectorConfig, PartialTimeFreeDetector


def make(pid=1, d=4, f=1, mobility=True):
    return PartialTimeFreeDetector(
        PartialDetectorConfig(process_id=pid, range_density=d, f=f),
        mobility=mobility,
    )


def query_from(sender, round_id=1, suspected=(), mistakes=()):
    return Query(sender=sender, round_id=round_id, suspected=suspected, mistakes=mistakes)


class TestConfig:
    def test_quorum_is_d_minus_f(self):
        config = PartialDetectorConfig(process_id=1, range_density=7, f=2)
        assert config.quorum == 5

    def test_d_must_exceed_f(self):
        with pytest.raises(ConfigurationError):
            PartialDetectorConfig(process_id=1, range_density=2, f=2)

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            PartialDetectorConfig(process_id=1, range_density=3, f=-1)


class TestMembershipLearning:
    def test_known_starts_empty(self):
        assert make().known() == frozenset()

    def test_query_reception_teaches_sender(self):
        detector = make()
        detector.on_query(query_from(5))
        assert detector.known() == frozenset({5})

    def test_own_query_is_not_learned(self):
        detector = make()
        assert detector.on_query(query_from(1)) is None
        assert detector.known() == frozenset()

    def test_responses_do_not_teach(self):
        # known_j is defined by received *queries* only (line 20).
        detector = make(d=2, f=1)
        detector.start_round()
        detector.on_response(Response(sender=7, round_id=1))
        assert detector.known() == frozenset()


class TestRounds:
    def test_only_known_processes_can_be_suspected(self):
        detector = make(d=2, f=1)  # quorum 1: own response suffices
        detector.on_query(query_from(5))
        detector.on_query(query_from(6))
        detector.start_round()
        detector.on_response(Response(sender=5, round_id=1))
        outcome = detector.finish_round()
        # 6 is known but did not respond; 5 responded.
        assert outcome.newly_suspected == (6,)
        assert detector.suspects() == frozenset({6})

    def test_unknown_silent_processes_are_not_suspected(self):
        detector = make(d=2, f=1)
        detector.start_round()
        outcome = detector.finish_round()
        assert outcome.newly_suspected == ()

    def test_quorum_counts_any_responder(self):
        # Responders need not be in `known` (they heard our broadcast).
        detector = make(d=3, f=1)  # quorum 2
        detector.start_round()
        assert not detector.quorum_reached()
        detector.on_response(Response(sender=9, round_id=1))
        assert detector.quorum_reached()

    def test_cannot_finish_early(self):
        detector = make(d=4, f=1)  # quorum 3
        detector.start_round()
        with pytest.raises(ProtocolError):
            detector.finish_round()

    def test_round_ids_pair_queries_and_responses(self):
        detector = make(d=2, f=1)
        detector.start_round()
        assert detector.on_response(Response(sender=5, round_id=99)) is False


class TestMobilityEviction:
    """Algorithm 2 lines 36-38."""

    def test_relayed_mistake_evicts_from_known(self):
        detector = make()
        detector.on_query(query_from(5))  # learn 5
        assert 5 in detector.known()
        # 7 relays a mistake raised by 5 -> 5 moved to a remote range... but
        # here the mistake is *about* 5 and carried by 7 (7 != 5): evict 5.
        detector.on_query(query_from(7, mistakes=((5, 3),)))
        assert 5 not in detector.known()
        assert 7 in detector.known()

    def test_self_raised_mistake_does_not_evict(self):
        detector = make()
        detector.on_query(query_from(5))
        # 5 itself carries its own mistake: it is in our range; keep it.
        detector.on_query(query_from(5, round_id=2, mistakes=((5, 3),)))
        assert 5 in detector.known()

    def test_stale_mistake_does_not_evict(self):
        detector = make()
        detector.on_query(query_from(5))
        detector.on_query(query_from(7, mistakes=((5, 3),)))  # evicts
        detector.on_query(query_from(5, round_id=2))  # re-learned
        # The same (now stale) mistake arrives again via another relay:
        # predicate at line 33 fails, eviction must not re-run.
        detector.on_query(query_from(8, mistakes=((5, 3),)))
        assert 5 in detector.known()

    def test_mistake_about_me_never_evicts_me(self):
        detector = make(pid=1)
        detector.on_query(query_from(7, mistakes=((1, 3),)))
        # No self-entry in known, but more importantly no crash and the
        # mistake is recorded.
        assert 1 not in detector.known()

    def test_eviction_disabled_without_mobility(self):
        detector = make(mobility=False)
        detector.on_query(query_from(5))
        detector.on_query(query_from(7, mistakes=((5, 3),)))
        assert 5 in detector.known()


class TestSuspicionPropagation:
    def test_flooding_merges_like_core(self):
        detector = make()
        detector.on_query(query_from(5, suspected=((8, 4),)))
        assert detector.suspects() == frozenset({8})
        detector.on_query(query_from(6, round_id=2, mistakes=((8, 4),)))
        assert detector.suspects() == frozenset()

    def test_self_suspicion_is_refuted(self):
        detector = make(pid=1)
        detector.on_query(query_from(5, suspected=((1, 9),)))
        broadcast = detector.start_round()
        assert broadcast.message.mistakes == ((1, 10),)

    def test_evicted_process_is_not_resuspected_at_round_end(self):
        # The point of Algorithm 2: after eviction, the mover's old
        # neighbors stop re-suspecting it.
        detector = make(d=2, f=1)
        detector.on_query(query_from(5))
        detector.start_round()
        outcome = detector.finish_round()
        assert outcome.newly_suspected == (5,)
        # 5's self-mistake arrives via relay 7 -> clears suspicion + evicts.
        detector.on_query(query_from(7, round_id=2, mistakes=((5, 6),)))
        assert detector.suspects() == frozenset()
        detector.start_round()
        detector.on_response(Response(sender=7, round_id=2))
        outcome = detector.finish_round()
        # 5 was evicted from `known`, so its silence no longer raises a
        # suspicion (7, the relay, responded normally).
        assert 5 not in outcome.newly_suspected
        assert outcome.newly_suspected == ()
