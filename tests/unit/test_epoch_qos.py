"""Unit tests for epoch-aware QoS scoring: suspicion intervals are judged
against the fault plan's alive intervals, so suspecting a node that is
down-but-will-recover is *correct* until the recovery instant."""

import pytest

from repro.metrics import (
    EpochMistakeStats,
    epoch_detection_stats,
    epoch_mistake_stats,
)
from repro.sim.faults import (
    CrashFault,
    FaultPlan,
    LeaveFault,
    RecoveryFault,
)
from repro.sim.trace import TraceRecorder

MEMBERS = (1, 2, 3)
EMPTY = frozenset()


def record_suspicion(trace, observer, target, start, end=None):
    trace.record_suspicion_change(start, observer, EMPTY, frozenset({target}))
    if end is not None:
        trace.record_suspicion_change(end, observer, frozenset({target}), EMPTY)


class TestEpochMistakeStats:
    def test_no_suspicions_is_perfect(self):
        trace = TraceRecorder()
        stats = epoch_mistake_stats(
            trace, FaultPlan.none(), MEMBERS, horizon=10.0
        )
        assert isinstance(stats, EpochMistakeStats)
        assert stats.count == 0
        assert stats.total_duration == 0.0
        assert stats.query_accuracy_probability == 1.0
        # 6 ordered pairs alive the whole horizon
        assert stats.alive_pair_time == pytest.approx(60.0)

    def test_false_suspicion_counts(self):
        trace = TraceRecorder()
        record_suspicion(trace, 1, 2, 2.0, 5.0)
        stats = epoch_mistake_stats(
            trace, FaultPlan.none(), MEMBERS, horizon=10.0
        )
        assert stats.count == 1
        assert stats.total_duration == pytest.approx(3.0)
        assert stats.query_accuracy_probability == pytest.approx(1.0 - 3.0 / 60.0)

    def test_suspicion_of_down_node_is_not_a_mistake(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(2, crash=3.0, recover=7.0)])
        trace = TraceRecorder()
        # Suspected exactly while down: zero mistake time.
        record_suspicion(trace, 1, 2, 3.0, 7.0)
        stats = epoch_mistake_stats(trace, plan, MEMBERS, horizon=10.0)
        assert stats.count == 0
        assert stats.total_duration == 0.0

    def test_suspicion_overhanging_recovery_is_partially_wrong(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(2, crash=3.0, recover=7.0)])
        trace = TraceRecorder()
        # Suspicion [3, 9): wrong only on [7, 9) after the recovery.
        record_suspicion(trace, 1, 2, 3.0, 9.0)
        stats = epoch_mistake_stats(trace, plan, MEMBERS, horizon=10.0)
        assert stats.count == 1
        assert stats.total_duration == pytest.approx(2.0)

    def test_dead_observer_cannot_be_wrong(self):
        plan = FaultPlan.of(crashes=[CrashFault(1, 4.0)])
        trace = TraceRecorder()
        # Observer 1 is down from t=4; its lingering suspicion stops counting.
        record_suspicion(trace, 1, 2, 2.0)  # never withdrawn
        stats = epoch_mistake_stats(trace, plan, MEMBERS, horizon=10.0)
        assert stats.total_duration == pytest.approx(2.0)  # only [2, 4)

    def test_alive_pair_time_shrinks_with_downtime(self):
        plan = FaultPlan.of(crashes=[CrashFault(3, 5.0)])
        trace = TraceRecorder()
        stats = epoch_mistake_stats(trace, plan, MEMBERS, horizon=10.0)
        # Pairs within {1,2}: 2 * 10.  Pairs touching 3: 4 * 5.
        assert stats.alive_pair_time == pytest.approx(20.0 + 20.0)


class TestEpochDetectionStats:
    def test_terminal_crash_uses_permanent_suspicion(self):
        plan = FaultPlan.of(crashes=[CrashFault(3, 4.0)])
        trace = TraceRecorder()
        record_suspicion(trace, 1, 3, 5.0)
        record_suspicion(trace, 2, 3, 6.0)
        windows = epoch_detection_stats(trace, plan, MEMBERS, horizon=10.0)
        assert len(windows) == 1
        window = windows[0]
        assert window.crashed == 3
        assert window.crash_time == 4.0
        assert window.latencies == {1: pytest.approx(1.0), 2: pytest.approx(2.0)}
        assert window.mean_latency == pytest.approx(1.5)
        assert window.detected_by_all

    def test_terminal_crash_ignores_withdrawn_suspicion(self):
        plan = FaultPlan.of(crashes=[CrashFault(3, 4.0)])
        trace = TraceRecorder()
        record_suspicion(trace, 1, 3, 5.0, 6.0)  # withdrawn: not permanent
        record_suspicion(trace, 2, 3, 6.0)
        windows = epoch_detection_stats(trace, plan, MEMBERS, horizon=10.0)
        window = windows[0]
        assert window.undetected == frozenset({1})
        assert not window.detected_by_all

    def test_transient_window_uses_first_overlapping_suspicion(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(3, crash=4.0, recover=8.0)])
        trace = TraceRecorder()
        # Flickered before the crash, then genuinely detected at 5.5 —
        # withdrawal after the recovery still counts as a detection.
        record_suspicion(trace, 1, 3, 1.0, 2.0)
        record_suspicion(trace, 1, 3, 5.5, 8.2)
        windows = epoch_detection_stats(trace, plan, MEMBERS, horizon=10.0)
        assert len(windows) == 1
        window = windows[0]
        assert window.crash_time == 4.0
        assert window.latencies == {1: pytest.approx(1.5)}
        assert window.undetected == frozenset({2})

    def test_undetected_transient_window(self):
        plan = FaultPlan.of(recoveries=[RecoveryFault(3, crash=4.0, recover=8.0)])
        trace = TraceRecorder()
        windows = epoch_detection_stats(trace, plan, MEMBERS, horizon=10.0)
        assert windows[0].latencies == {}
        assert windows[0].undetected == frozenset({1, 2})

    def test_observer_set_excludes_the_departed(self):
        plan = FaultPlan.of(
            crashes=[CrashFault(3, 4.0)], leaves=[LeaveFault(2, 1.0)]
        )
        trace = TraceRecorder()
        record_suspicion(trace, 1, 3, 5.0)
        windows = epoch_detection_stats(trace, plan, MEMBERS, horizon=10.0)
        crash_window = next(w for w in windows if w.crashed == 3)
        # Only 1 is a correct observer at the end of 3's window.
        assert set(crash_window.latencies) | crash_window.undetected == {1}
        assert crash_window.latencies == {1: pytest.approx(1.0)}

    def test_one_window_per_down_interval(self):
        plan = FaultPlan.of(
            recoveries=[
                RecoveryFault(3, crash=2.0, recover=4.0),
                RecoveryFault(3, crash=6.0, recover=8.0),
            ]
        )
        trace = TraceRecorder()
        windows = epoch_detection_stats(trace, plan, MEMBERS, horizon=10.0)
        assert [(w.crashed, w.crash_time) for w in windows] == [(3, 2.0), (3, 6.0)]


class TestEpochEdgeCases:
    def test_everything_down_means_perfect_accuracy(self):
        plan = FaultPlan.of(crashes=[CrashFault(pid, 0.0) for pid in MEMBERS])
        trace = TraceRecorder()
        stats = epoch_mistake_stats(trace, plan, MEMBERS, horizon=10.0)
        assert stats.alive_pair_time == 0.0
        assert stats.query_accuracy_probability == 1.0

    def test_unresolved_suspicion_clips_to_horizon(self):
        trace = TraceRecorder()
        record_suspicion(trace, 1, 2, 8.0)  # never withdrawn
        stats = epoch_mistake_stats(trace, FaultPlan.none(), MEMBERS, horizon=10.0)
        assert stats.total_duration == pytest.approx(2.0)
        assert stats.unresolved == 1

    def test_rate_is_per_horizon_second(self):
        trace = TraceRecorder()
        record_suspicion(trace, 1, 2, 1.0, 2.0)
        record_suspicion(trace, 1, 2, 4.0, 5.0)
        stats = epoch_mistake_stats(trace, FaultPlan.none(), MEMBERS, horizon=10.0)
        assert stats.count == 2
        assert stats.rate == pytest.approx(0.2)
        assert stats.mean_duration == pytest.approx(1.0)

    def test_crash_only_plan_matches_legacy_down_at(self):
        plan = FaultPlan.of(crashes=[CrashFault(2, 5.0)])
        for t in (0.0, 4.999, 5.0, 7.5, 1e9):
            assert plan.down_at(t) == plan.crashed_by(t)
