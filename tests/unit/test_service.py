"""Unit tests for DetectorService internals (asyncio runtime)."""

import asyncio

import pytest

from repro.core.protocol import DetectorConfig
from repro.errors import ConfigurationError
from repro.runtime import DetectorService, MemoryHub, ServicePacing
from repro.sim.latency import ConstantLatency


def run(coro):
    return asyncio.run(coro)


def make_service(pid=1, n=3, f=1, hub=None, pacing=None):
    hub = hub if hub is not None else MemoryHub(latency=ConstantLatency(0.001))
    config = DetectorConfig.for_process(pid, range(1, n + 1), f)
    return DetectorService(
        config,
        hub.create_transport(pid),
        pacing=pacing if pacing is not None else ServicePacing(grace=0.01),
    )


class TestPacingValidation:
    def test_negative_grace_rejected(self):
        with pytest.raises(ConfigurationError):
            ServicePacing(grace=-0.1)

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            ServicePacing(idle=-0.1)

    def test_zero_retry_rejected(self):
        with pytest.raises(ConfigurationError):
            ServicePacing(retry=0.0)


class TestLifecycle:
    def test_double_start_is_idempotent(self):
        async def scenario():
            hub = MemoryHub(latency=ConstantLatency(0.001))
            services = [make_service(pid, hub=hub) for pid in (1, 2, 3)]
            for service in services:
                await service.start()
            first_task = services[0]._task
            await services[0].start()
            same = services[0]._task is first_task
            for service in services:
                await service.stop()
            return same

        assert run(scenario()) is True

    def test_stop_before_start_is_safe(self):
        async def scenario():
            service = make_service()
            await service.stop()
            return service.running

        assert run(scenario()) is False

    def test_running_property(self):
        async def scenario():
            hub = MemoryHub(latency=ConstantLatency(0.001))
            services = [make_service(pid, hub=hub) for pid in (1, 2, 3)]
            before = services[0].running
            for service in services:
                await service.start()
            during = services[0].running
            for service in services:
                await service.stop()
            after = services[0].running
            return before, during, after

        assert run(scenario()) == (False, True, False)


class TestWaitHelpers:
    def test_wait_for_returns_immediately_when_satisfied(self):
        async def scenario():
            service = make_service()
            # Predicate true on the empty suspect set: no queue involved.
            result = await service.wait_for(lambda s: len(s) == 0, timeout=0.1)
            return result, len(service._watchers)

        result, watcher_count = run(scenario())
        assert result == frozenset()
        assert watcher_count == 0

    def test_wait_for_cleans_up_watcher_on_timeout(self):
        async def scenario():
            service = make_service()
            try:
                await service.wait_for(lambda s: 99 in s, timeout=0.05)
            except TimeoutError:
                pass
            return len(service._watchers)

        assert run(scenario()) == 0

    def test_wait_until_cleared_immediate(self):
        async def scenario():
            service = make_service()
            return await service.wait_until_cleared(2, timeout=0.1)

        assert run(scenario()) == frozenset()


class TestWatchers:
    def test_watcher_receives_change_notifications(self):
        async def scenario():
            hub = MemoryHub(latency=ConstantLatency(0.0005))
            services = [make_service(pid, hub=hub) for pid in (1, 2, 3)]
            for service in services:
                await service.start()
            queue = services[0].watch()
            hub.crash(3)
            await services[2].stop()
            async with asyncio.timeout(10.0):
                suspects = await queue.get()
            for service in services[:2]:
                await service.stop()
            return suspects

        assert 3 in run(scenario())
