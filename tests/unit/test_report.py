"""Unit tests for experiment table rendering."""

import pytest

from repro.experiments.report import Table, fmt


class TestFmt:
    def test_none_is_dash(self):
        assert fmt(None) == "-"

    def test_float_precision(self):
        assert fmt(1.23456) == "1.235"
        assert fmt(1.2, precision=1) == "1.2"

    def test_bool_is_yes_no(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"

    def test_nan(self):
        assert fmt(float("nan")) == "nan"

    def test_strings_pass_through(self):
        assert fmt("x") == "x"


class TestTable:
    def make(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", None)
        return table

    def test_row_arity_checked(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = self.make()
        assert table.column("a") == [1, "x"]

    def test_unknown_column(self):
        with pytest.raises(ValueError):
            self.make().column("zzz")

    def test_render_contains_all_cells(self):
        text = self.make().render()
        assert "T" in text
        assert "2.500" in text
        assert "-" in text

    def test_render_markdown_shape(self):
        md = self.make().render_markdown()
        lines = md.splitlines()
        assert lines[2].startswith("| a | b |")
        assert lines[3].count("---") == 2

    def test_notes_rendered(self):
        table = self.make()
        table.add_note("hello note")
        assert "hello note" in table.render()
        assert "hello note" in table.render_markdown()
