"""Unit tests for topologies and the f-covering MANET construction."""

import random

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.sim.topology import (
    Topology,
    full_mesh,
    grid,
    manet_topology,
    random_geometric,
    ring,
    star,
)


class TestTopologyBasics:
    def test_neighbors_and_degree(self):
        topo = Topology([1, 2, 3], [(1, 2), (2, 3)])
        assert topo.neighbors(2) == frozenset({1, 3})
        assert topo.degree(1) == 1

    def test_unknown_node_raises(self):
        topo = Topology([1, 2], [(1, 2)])
        with pytest.raises(TopologyError):
            topo.neighbors(9)

    def test_self_loop_rejected(self):
        topo = Topology([1, 2])
        with pytest.raises(TopologyError):
            topo.add_edge(1, 1)

    def test_edge_to_unknown_node_rejected(self):
        topo = Topology([1, 2])
        with pytest.raises(TopologyError):
            topo.add_edge(1, 9)

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology([])

    def test_isolate_returns_former_neighborhood(self):
        topo = ring([1, 2, 3, 4])
        former = topo.isolate(1)
        assert former == frozenset({2, 4})
        assert topo.degree(1) == 0

    def test_connect_restores_edges(self):
        topo = ring([1, 2, 3, 4])
        former = topo.isolate(1)
        topo.connect(1, former)
        assert topo.neighbors(1) == frozenset({2, 4})

    def test_copy_is_deep_for_edges(self):
        topo = ring([1, 2, 3])
        clone = topo.copy()
        clone.remove_edge(1, 2)
        assert topo.has_edge(1, 2)

    def test_edges_are_undirected_and_unique(self):
        topo = full_mesh([1, 2, 3])
        assert len(list(topo.edges())) == 3


class TestDensityAndConnectivity:
    def test_range_density_is_min_degree_plus_one(self):
        # Definition 2: |range_i| = degree + 1.
        topo = star([1, 2, 3, 4])
        assert topo.range_density() == 2  # leaves have degree 1

    def test_full_mesh_connectivity(self):
        topo = full_mesh(range(1, 6))
        assert topo.node_connectivity() == 4
        assert topo.is_f_covering(3)
        assert not topo.is_f_covering(4)

    def test_ring_is_1_covering_only(self):
        topo = ring(range(1, 7))
        assert topo.node_connectivity() == 2
        assert topo.is_f_covering(1)
        assert not topo.is_f_covering(2)

    def test_is_connected(self):
        topo = Topology([1, 2, 3], [(1, 2)])
        assert not topo.is_connected()
        topo.add_edge(2, 3)
        assert topo.is_connected()

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            full_mesh([1, 2]).is_f_covering(-1)


class TestConstructors:
    def test_full_mesh_edge_count(self):
        topo = full_mesh(range(1, 11))
        assert len(list(topo.edges())) == 45

    def test_ring_needs_three_nodes(self):
        with pytest.raises(ConfigurationError):
            ring([1, 2])

    def test_grid_shape(self):
        topo = grid(3, 2)
        assert len(topo) == 6
        # corner degree 2, middle of short side degree 3
        assert topo.degree(1) == 2
        assert topo.degree(2) == 3

    def test_star_hub(self):
        topo = star(["hub", "a", "b"])
        assert topo.degree("hub") == 2
        assert not topo.has_edge("a", "b")

    def test_random_geometric_edges_respect_range(self):
        rng = random.Random(5)
        topo = random_geometric(range(1, 20), rng, area=100.0, transmission_range=30.0)
        for a, b in topo.edges():
            ax, ay = topo.positions[a]
            bx, by = topo.positions[b]
            assert ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5 <= 30.0


class TestManetConstruction:
    def test_density_exceeds_f_plus_one(self):
        # The paper's construction guarantees d > f + 1.
        rng = random.Random(11)
        topo = manet_topology(40, f=2, rng=rng)
        assert topo.range_density() > 3

    def test_min_neighbors_raises_density(self):
        rng = random.Random(11)
        topo = manet_topology(40, f=2, rng=rng, min_neighbors=8)
        assert topo.range_density() >= 9

    def test_all_nodes_have_positions(self):
        rng = random.Random(11)
        topo = manet_topology(25, f=1, rng=rng)
        assert set(topo.positions) == set(topo.ids())

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            manet_topology(3, f=2, rng=random.Random(1))

    def test_min_neighbors_below_f_plus_one_rejected(self):
        with pytest.raises(ConfigurationError):
            manet_topology(20, f=3, rng=random.Random(1), min_neighbors=2)

    def test_impossible_placement_raises(self):
        # A huge area with tiny range cannot give every node f+1 neighbors.
        with pytest.raises(TopologyError):
            manet_topology(
                30,
                f=1,
                rng=random.Random(1),
                area=100_000.0,
                transmission_range=10.0,
                max_attempts_per_node=50,
            )


class TestNeighborCaches:
    def test_sorted_neighbors_matches_sorted_frozenset(self):
        topo = full_mesh([1, 2, 3, 4])
        assert topo.sorted_neighbors(1) == tuple(sorted(topo.neighbors(1), key=repr))

    def test_sorted_neighbors_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            full_mesh([1, 2]).sorted_neighbors(9)

    def test_caches_invalidated_on_add_edge(self):
        topo = ring([1, 2, 3, 4])
        assert topo.sorted_neighbors(1) == (2, 4)
        assert topo.neighbors(1) == frozenset({2, 4})
        topo.add_edge(1, 3)
        assert topo.sorted_neighbors(1) == (2, 3, 4)
        assert topo.neighbors(1) == frozenset({2, 3, 4})
        assert topo.sorted_neighbors(3) == (1, 2, 4)

    def test_caches_invalidated_on_remove_edge(self):
        topo = full_mesh([1, 2, 3])
        assert topo.sorted_neighbors(1) == (2, 3)
        topo.remove_edge(1, 2)
        assert topo.sorted_neighbors(1) == (3,)
        assert topo.neighbors(2) == frozenset({3})

    def test_caches_invalidated_through_isolate_and_connect(self):
        topo = full_mesh([1, 2, 3, 4])
        former = topo.isolate(2)
        assert topo.neighbors(2) == frozenset()
        assert topo.sorted_neighbors(1) == (3, 4)
        topo.connect(2, former)
        assert topo.sorted_neighbors(2) == (1, 3, 4)
        assert topo.sorted_neighbors(1) == (2, 3, 4)
