"""Unit tests for the result-cache eviction policy."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.harness.cache import ResultCache


def fill(cache: ResultCache, count: int, *, size_pad: int = 0) -> list[str]:
    keys = []
    for index in range(count):
        key = f"{index:02x}" + "0" * 62
        cache.put(key, {"cell": index, "pad": "x" * size_pad})
        keys.append(key)
    return keys


def set_mtime(cache: ResultCache, key: str, mtime: float) -> None:
    path = cache._path(key)
    os.utime(path, (mtime, mtime))


class TestStats:
    def test_empty_cache(self, tmp_path):
        stats = ResultCache(tmp_path / "cache").stats()
        assert (stats.entries, stats.total_bytes) == (0, 0)

    def test_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = fill(cache, 3)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes == sum(
            cache._path(key).stat().st_size for key in keys
        )


class TestPruneByAge:
    def test_old_entries_dropped_fresh_kept(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        old, fresh = fill(cache, 2)
        set_mtime(cache, old, 1_000.0)
        set_mtime(cache, fresh, 9_000.0)
        report = cache.prune(max_age_seconds=500.0, now=9_100.0)
        assert (report.removed, report.kept) == (1, 1)
        assert cache.get(old) is None
        assert cache.get(fresh) == {"cell": 1, "pad": ""}

    def test_read_refreshes_mtime(self, tmp_path):
        """A get() keeps an entry alive under age pruning (LRU semantics)."""
        cache = ResultCache(tmp_path / "cache")
        (key,) = fill(cache, 1)
        set_mtime(cache, key, 1_000.0)
        assert cache.get(key) is not None  # refreshes mtime to ~now
        report = cache.prune(max_age_seconds=3600.0, now=2_000.0)
        assert report.removed == 0


class TestPruneBySize:
    def test_oldest_evicted_until_under_cap(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = fill(cache, 4, size_pad=100)
        for index, key in enumerate(keys):
            set_mtime(cache, key, 1_000.0 + index)
        entry_size = cache._path(keys[0]).stat().st_size
        report = cache.prune(max_total_bytes=2 * entry_size)
        assert report.removed == 2
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        assert cache.get(keys[2]) is not None
        assert cache.get(keys[3]) is not None
        assert cache.stats().total_bytes <= 2 * entry_size

    def test_zero_cap_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fill(cache, 3)
        report = cache.prune(max_total_bytes=0)
        assert report.removed == 3
        assert cache.stats().entries == 0
        # empty shard directories are swept too
        assert list((tmp_path / "cache").iterdir()) == []


class TestPruneValidation:
    def test_no_caps_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="prune needs"):
            ResultCache(tmp_path / "cache").prune()

    def test_negative_caps_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ConfigurationError):
            cache.prune(max_age_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            cache.prune(max_total_bytes=-1)

    def test_prune_on_missing_directory_is_a_noop(self, tmp_path):
        report = ResultCache(tmp_path / "never-created").prune(max_total_bytes=10)
        assert (report.removed, report.kept) == (0, 0)

    def test_foreign_files_survive(self, tmp_path):
        """Prune only touches shard entry files, not stray artifacts."""
        root = tmp_path / "cache"
        cache = ResultCache(root)
        fill(cache, 1)
        stray = root / "README.txt"
        stray.write_text("not an entry")
        cache.prune(max_total_bytes=0)
        assert stray.exists()


class TestCombinedPolicy:
    def test_age_then_size(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = fill(cache, 4, size_pad=50)
        # keys[0] ancient; the rest recent with distinct ages.
        set_mtime(cache, keys[0], 100.0)
        for index, key in enumerate(keys[1:], start=1):
            set_mtime(cache, key, 9_000.0 + index)
        entry_size = cache._path(keys[1]).stat().st_size
        report = cache.prune(
            max_age_seconds=5_000.0, max_total_bytes=2 * entry_size, now=10_000.0
        )
        # age drops keys[0]; size cap then drops the oldest survivor keys[1]
        assert report.removed == 2
        assert report.kept == 2
        assert json.loads(cache._path(keys[3]).read_text())["value"]["cell"] == 3
