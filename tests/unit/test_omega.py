"""Tests for the accusation-counter Omega elector."""

import pytest

from repro.core.omega import OmegaElector, make_leader_detector
from repro.core.protocol import DetectorConfig, QueryRoundOutcome
from repro.errors import ConfigurationError


def outcome_with_responders(responders, round_id=1):
    return QueryRoundOutcome(
        round_id=round_id,
        responders=tuple(responders),
        winners=frozenset(responders),
        newly_suspected=(),
        counter_after=round_id,
        suspects_after=frozenset(),
    )


def make_elector(n=4, f=1, pid=1):
    config = DetectorConfig.for_process(pid, range(1, n + 1), f)
    return OmegaElector(config)


class TestAccusations:
    def test_initial_leader_is_smallest_id(self):
        assert make_elector().leader() == 1

    def test_missing_a_round_accrues_an_accusation(self):
        elector = make_elector()
        elector.observe_round(outcome_with_responders([1, 2, 3]))
        assert elector.accusations()[4] == 1
        assert elector.accusations()[1] == 0

    def test_leader_shifts_away_from_accused_process(self):
        elector = make_elector()
        for round_id in range(1, 4):
            elector.observe_round(outcome_with_responders([2, 3, 4], round_id))
        assert elector.leader() == 2

    def test_ties_break_by_id(self):
        elector = make_elector()
        elector.observe_round(outcome_with_responders([1, 2, 3]))
        # 1, 2, 3 all have zero accusations: smallest id wins.
        assert elector.leader() == 1


class TestGossip:
    def test_payload_and_consume_round_trip(self):
        left = make_elector(pid=1)
        right = make_elector(pid=2)
        left.observe_round(outcome_with_responders([1, 2, 3]))
        right.consume(1, left.payload())
        assert right.accusations()[4] == 1

    def test_consume_takes_entrywise_max(self):
        elector = make_elector(pid=1)
        elector.observe_round(outcome_with_responders([1, 2, 3]))  # acc[4] = 1
        elector.consume(2, {"omega.accusations": ((4, 5), (3, 0))})
        accusations = elector.accusations()
        assert accusations[4] == 5
        assert accusations[3] == 0

    def test_unknown_processes_in_gossip_are_ignored(self):
        elector = make_elector(pid=1)
        elector.consume(2, {"omega.accusations": ((99, 7),)})
        assert 99 not in elector.accusations()

    def test_payload_without_key_is_ignored(self):
        elector = make_elector(pid=1)
        elector.consume(2, {"unrelated": 1})
        assert elector.accusations()[1] == 0


class TestFactory:
    def test_detector_and_elector_are_wired(self):
        detector, elector = make_leader_detector(1, [1, 2, 3], f=1)
        broadcast = detector.start_round()
        assert "omega.accusations" in broadcast.message.extra_payload()

    def test_single_process_is_rejected(self):
        with pytest.raises(ConfigurationError):
            make_leader_detector(1, [1], f=0)

    def test_convergence_through_piggyback(self):
        d1, e1 = make_leader_detector(1, [1, 2, 3], f=1)
        d2, e2 = make_leader_detector(2, [1, 2, 3], f=1)
        # p1 observes p3 missing a few rounds, then queries p2: the gossip
        # rides the query and p2 learns the accusations.
        for round_id in range(1, 4):
            e1.observe_round(outcome_with_responders([1, 2], round_id))
        broadcast = d1.start_round()
        d2.on_query(broadcast.message)
        assert e2.accusations()[3] == 3
        assert e1.leader() == e2.leader() == 1
